"""Thompson construction: regex AST → nondeterministic finite automaton.

Edges carry *symbolic* labels (:class:`Label`) instead of concrete device
names so that ``.`` wildcards and negated classes stay compact; the DFA layer
concretizes them against the topology's device alphabet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.automata.regex import (
    Alternate,
    AnySymbol,
    Concat,
    Epsilon,
    Regex,
    Star,
    Symbol,
    SymbolClass,
)
from repro.errors import RegexSyntaxError

__all__ = ["Label", "Nfa", "build_nfa"]


@dataclass(frozen=True)
class Label:
    """Symbolic edge label: a set (or co-set) of device names.

    ``negated=False, members=∅`` is never constructed; the wildcard is
    ``negated=True, members=∅`` ("anything not in the empty set").
    """

    members: FrozenSet[str]
    negated: bool

    @classmethod
    def any(cls) -> "Label":
        return cls(frozenset(), True)

    @classmethod
    def only(cls, names: FrozenSet[str]) -> "Label":
        return cls(names, False)

    @classmethod
    def excluding(cls, names: FrozenSet[str]) -> "Label":
        return cls(names, True)

    def accepts(self, device: str) -> bool:
        inside = device in self.members
        return not inside if self.negated else inside


class Nfa:
    """An NFA with one start state and one accept state per Thompson's
    construction.  States are integers; epsilon edges are kept separate."""

    def __init__(self) -> None:
        self.num_states = 0
        self.edges: List[List[Tuple[Label, int]]] = []
        self.epsilons: List[List[int]] = []
        self.start = -1
        self.accept = -1

    def new_state(self) -> int:
        self.edges.append([])
        self.epsilons.append([])
        self.num_states += 1
        return self.num_states - 1

    def add_edge(self, src: int, label: Label, dst: int) -> None:
        self.edges[src].append((label, dst))

    def add_epsilon(self, src: int, dst: int) -> None:
        self.epsilons[src].append(dst)

    # ------------------------------------------------------------------
    # Simulation helpers (used by the DFA layer and tests)
    # ------------------------------------------------------------------
    def epsilon_closure(self, states: Set[int]) -> FrozenSet[int]:
        stack = list(states)
        closure = set(states)
        while stack:
            state = stack.pop()
            for nxt in self.epsilons[state]:
                if nxt not in closure:
                    closure.add(nxt)
                    stack.append(nxt)
        return frozenset(closure)

    def step(self, states: FrozenSet[int], device: str) -> FrozenSet[int]:
        targets: Set[int] = set()
        for state in states:
            for label, dst in self.edges[state]:
                if label.accepts(device):
                    targets.add(dst)
        return self.epsilon_closure(targets)

    def matches(self, path: List[str]) -> bool:
        """Reference matcher used for cross-checking the DFA in tests."""
        current = self.epsilon_closure({self.start})
        for device in path:
            current = self.step(current, device)
            if not current:
                return False
        return self.accept in current

    def mentioned_devices(self) -> FrozenSet[str]:
        names: Set[str] = set()
        for edge_list in self.edges:
            for label, _dst in edge_list:
                names.update(label.members)
        return frozenset(names)


@dataclass
class _Fragment:
    start: int
    accept: int


def build_nfa(regex: Regex) -> Nfa:
    """Compile a regex AST into an NFA via Thompson's construction."""
    nfa = Nfa()

    def compile_node(node: Regex) -> _Fragment:
        if isinstance(node, Epsilon):
            s = nfa.new_state()
            a = nfa.new_state()
            nfa.add_epsilon(s, a)
            return _Fragment(s, a)
        if isinstance(node, Symbol):
            s = nfa.new_state()
            a = nfa.new_state()
            nfa.add_edge(s, Label.only(frozenset({node.name})), a)
            return _Fragment(s, a)
        if isinstance(node, AnySymbol):
            s = nfa.new_state()
            a = nfa.new_state()
            nfa.add_edge(s, Label.any(), a)
            return _Fragment(s, a)
        if isinstance(node, SymbolClass):
            s = nfa.new_state()
            a = nfa.new_state()
            if node.negated:
                nfa.add_edge(s, Label.excluding(node.members), a)
            else:
                nfa.add_edge(s, Label.only(node.members), a)
            return _Fragment(s, a)
        if isinstance(node, Concat):
            fragments = [compile_node(part) for part in node.parts]
            for left, right in zip(fragments, fragments[1:]):
                nfa.add_epsilon(left.accept, right.start)
            return _Fragment(fragments[0].start, fragments[-1].accept)
        if isinstance(node, Alternate):
            s = nfa.new_state()
            a = nfa.new_state()
            for option in node.options:
                fragment = compile_node(option)
                nfa.add_epsilon(s, fragment.start)
                nfa.add_epsilon(fragment.accept, a)
            return _Fragment(s, a)
        if isinstance(node, Star):
            inner = compile_node(node.inner)
            s = nfa.new_state()
            a = nfa.new_state()
            nfa.add_epsilon(s, inner.start)
            nfa.add_epsilon(s, a)
            nfa.add_epsilon(inner.accept, inner.start)
            nfa.add_epsilon(inner.accept, a)
            return _Fragment(s, a)
        raise RegexSyntaxError(f"cannot compile node {node!r}")

    fragment = compile_node(regex)
    nfa.start = fragment.start
    nfa.accept = fragment.accept
    return nfa
