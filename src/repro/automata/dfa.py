"""Deterministic automata over a concrete device alphabet.

Subset construction concretizes the NFA's symbolic labels against the set of
devices present in the topology; Hopcroft's algorithm minimizes the result
(the paper performs "state minimization ... to remove redundant nodes", §4.1,
citing [36] = Hopcroft 1971).

A :class:`Dfa` here is *complete*: every (state, device) pair has a
transition, with a designated dead state absorbing rejected paths.  The
planner walks the automaton during the product construction and simply never
enters the dead state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.automata.nfa import Nfa, build_nfa
from repro.automata.regex import Regex
from repro.errors import RegexSyntaxError

__all__ = ["Dfa", "compile_regex", "dfa_product", "dfa_union"]


class Dfa:
    """A complete DFA over a fixed device alphabet.

    Attributes
    ----------
    alphabet:
        Ordered tuple of device names.
    start:
        Start state id.
    accepting:
        Frozen set of accepting state ids.
    transitions:
        ``transitions[state][symbol_index]`` is the successor state.
    dead:
        The absorbing reject state (or ``None`` if the DFA accepts from
        everywhere — cannot happen for our path expressions but kept general).
    """

    def __init__(
        self,
        alphabet: Sequence[str],
        transitions: List[List[int]],
        start: int,
        accepting: FrozenSet[int],
    ) -> None:
        self.alphabet: Tuple[str, ...] = tuple(alphabet)
        self.symbol_index: Dict[str, int] = {
            name: i for i, name in enumerate(self.alphabet)
        }
        self.transitions = transitions
        self.start = start
        self.accepting = accepting
        self.dead = self._find_dead()

    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        return len(self.transitions)

    def _find_dead(self) -> Optional[int]:
        for state, row in enumerate(self.transitions):
            if state in self.accepting:
                continue
            if all(target == state for target in row):
                return state
        return None

    def step(self, state: int, device: str) -> int:
        """Successor of ``state`` on ``device`` (dead state if rejected)."""
        try:
            return self.transitions[state][self.symbol_index[device]]
        except KeyError:
            raise RegexSyntaxError(
                f"device {device!r} not in automaton alphabet"
            ) from None

    def is_dead(self, state: int) -> bool:
        return self.dead is not None and state == self.dead

    def accepts(self, path: Iterable[str]) -> bool:
        state = self.start
        for device in path:
            state = self.step(state, device)
            if self.is_dead(state):
                return False
        return state in self.accepting

    def live_states(self) -> FrozenSet[int]:
        """States that can still reach an accepting state."""
        reverse: Dict[int, Set[int]] = {s: set() for s in range(self.num_states)}
        for state, row in enumerate(self.transitions):
            for target in row:
                reverse[target].add(state)
        alive: Set[int] = set(self.accepting)
        stack = list(self.accepting)
        while stack:
            state = stack.pop()
            for pred in reverse[state]:
                if pred not in alive:
                    alive.add(pred)
                    stack.append(pred)
        return frozenset(alive)


# ----------------------------------------------------------------------
# Subset construction
# ----------------------------------------------------------------------
def _subset_construction(nfa: Nfa, alphabet: Sequence[str]) -> Dfa:
    start_set = nfa.epsilon_closure({nfa.start})
    index: Dict[FrozenSet[int], int] = {start_set: 0}
    order: List[FrozenSet[int]] = [start_set]
    transitions: List[List[int]] = []
    worklist = [start_set]
    while worklist:
        current = worklist.pop()
        row = [0] * len(alphabet)
        for i, device in enumerate(alphabet):
            target = nfa.step(current, device)
            state = index.get(target)
            if state is None:
                state = len(order)
                index[target] = state
                order.append(target)
                worklist.append(target)
            row[i] = state
        # Rows may be appended out of order relative to state ids: fix below.
        while len(transitions) <= index[current]:
            transitions.append([])
        transitions[index[current]] = row
    accepting = frozenset(
        state for subset, state in index.items() if nfa.accept in subset
    )
    return Dfa(alphabet, transitions, 0, accepting)


# ----------------------------------------------------------------------
# Hopcroft minimization
# ----------------------------------------------------------------------
def _minimize(dfa: Dfa) -> Dfa:
    n = dfa.num_states
    num_symbols = len(dfa.alphabet)
    if n <= 1:
        return dfa

    # Precompute inverse transitions.
    inverse: List[List[List[int]]] = [
        [[] for _ in range(num_symbols)] for _ in range(n)
    ]
    for state in range(n):
        for symbol in range(num_symbols):
            inverse[dfa.transitions[state][symbol]][symbol].append(state)

    accepting = set(dfa.accepting)
    non_accepting = set(range(n)) - accepting
    partition: List[Set[int]] = [block for block in (accepting, non_accepting) if block]
    in_block = [0] * n
    for block_id, block in enumerate(partition):
        for state in block:
            in_block[state] = block_id

    worklist: List[Tuple[int, int]] = [
        (block_id, symbol)
        for block_id in range(len(partition))
        for symbol in range(num_symbols)
    ]
    while worklist:
        block_id, symbol = worklist.pop()
        splitter = partition[block_id]
        # States with a transition on `symbol` into the splitter.
        movers: Set[int] = set()
        for state in splitter:
            movers.update(inverse[state][symbol])
        touched: Dict[int, Set[int]] = {}
        for state in movers:
            touched.setdefault(in_block[state], set()).add(state)
        for target_id, moved in touched.items():
            block = partition[target_id]
            if len(moved) == len(block):
                continue
            remainder = block - moved
            partition[target_id] = moved
            new_id = len(partition)
            partition.append(remainder)
            for state in remainder:
                in_block[state] = new_id
            for sym in range(num_symbols):
                worklist.append((new_id, sym))

    # Rebuild the DFA over blocks.
    new_start = in_block[dfa.start]
    new_accepting = frozenset(in_block[s] for s in dfa.accepting)
    new_transitions: List[List[int]] = [[0] * num_symbols for _ in partition]
    for block_id, block in enumerate(partition):
        representative = next(iter(block))
        for symbol in range(num_symbols):
            new_transitions[block_id][symbol] = in_block[
                dfa.transitions[representative][symbol]
            ]
    return Dfa(dfa.alphabet, new_transitions, new_start, new_accepting)


def compile_regex(regex: Regex, alphabet: Sequence[str]) -> Dfa:
    """Compile a path expression into a minimal complete DFA.

    ``alphabet`` must contain every device the expression names; extra
    devices are fine (they simply drive non-matching paths to the dead
    state or through wildcards).
    """
    nfa = build_nfa(regex)
    missing = nfa.mentioned_devices() - set(alphabet)
    if missing:
        raise RegexSyntaxError(
            f"expression names devices absent from the topology: {sorted(missing)}"
        )
    return _minimize(_subset_construction(nfa, alphabet))


# ----------------------------------------------------------------------
# Products (used by §4.3 compound invariants)
# ----------------------------------------------------------------------
def _binary_product(
    a: Dfa, b: Dfa, accept_rule
) -> Dfa:
    if a.alphabet != b.alphabet:
        raise RegexSyntaxError("DFA product requires identical alphabets")
    num_symbols = len(a.alphabet)
    index: Dict[Tuple[int, int], int] = {}
    order: List[Tuple[int, int]] = []

    def get(pair: Tuple[int, int]) -> int:
        state = index.get(pair)
        if state is None:
            state = len(order)
            index[pair] = state
            order.append(pair)
        return state

    start = get((a.start, b.start))
    transitions: List[List[int]] = []
    cursor = 0
    while cursor < len(order):
        sa, sb = order[cursor]
        row = [
            get((a.transitions[sa][symbol], b.transitions[sb][symbol]))
            for symbol in range(num_symbols)
        ]
        transitions.append(row)
        cursor += 1
    accepting = frozenset(
        state
        for (sa, sb), state in index.items()
        if accept_rule(sa in a.accepting, sb in b.accepting)
    )
    return _minimize(Dfa(a.alphabet, transitions, start, accepting))


def dfa_product(a: Dfa, b: Dfa) -> Dfa:
    """Intersection of two path languages."""
    return _binary_product(a, b, lambda x, y: x and y)


def dfa_union(a: Dfa, b: Dfa) -> Dfa:
    """Union of two path languages."""
    return _binary_product(a, b, lambda x, y: x or y)
