"""Regular expressions over the set of network devices.

Tulkun's invariant language specifies path patterns as regular expressions
whose alphabet symbols are device identifiers (§3, Figure 4).  This module
provides the AST, a textual parser, and convenience combinators.

Supported syntax (whitespace between tokens is optional where unambiguous)::

    S .* W .* D        waypoint W between S and D
    S D | S . D        alternation, "." matches any one device
    [A B]              any device in the class
    [^A B]             any device not in the class
    A{2,4}             bounded repetition
    A+  A?  A*         usual postfix operators

Device identifiers are ``[A-Za-z_][A-Za-z0-9_-]*`` tokens, so compact forms
like ``S.*D`` parse as expected for single-token device names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Sequence, Tuple, Union

from repro.errors import RegexSyntaxError

__all__ = [
    "Regex",
    "Epsilon",
    "Symbol",
    "AnySymbol",
    "SymbolClass",
    "Concat",
    "Alternate",
    "Star",
    "parse_regex",
    "concat",
    "alternate",
    "star",
    "plus",
    "optional",
    "literal_path",
    "EPSILON",
    "ANY",
]


class Regex:
    """Base class for regex AST nodes.  Nodes are immutable."""

    def devices(self) -> FrozenSet[str]:
        """All device names mentioned anywhere in the expression."""
        raise NotImplementedError


@dataclass(frozen=True)
class Epsilon(Regex):
    """Matches the empty path."""

    def devices(self) -> FrozenSet[str]:
        return frozenset()

    def __str__(self) -> str:
        return "()"


@dataclass(frozen=True)
class Symbol(Regex):
    """Matches exactly one named device."""

    name: str

    def devices(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class AnySymbol(Regex):
    """Matches any single device (the ``.`` wildcard)."""

    def devices(self) -> FrozenSet[str]:
        return frozenset()

    def __str__(self) -> str:
        return "."


@dataclass(frozen=True)
class SymbolClass(Regex):
    """Matches one device from (or outside) a finite set."""

    members: FrozenSet[str]
    negated: bool = False

    def devices(self) -> FrozenSet[str]:
        return self.members

    def __str__(self) -> str:
        inner = " ".join(sorted(self.members))
        return f"[^{inner}]" if self.negated else f"[{inner}]"


@dataclass(frozen=True)
class Concat(Regex):
    parts: Tuple[Regex, ...]

    def devices(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for part in self.parts:
            result |= part.devices()
        return result

    def __str__(self) -> str:
        return " ".join(_wrap(p) for p in self.parts)


@dataclass(frozen=True)
class Alternate(Regex):
    options: Tuple[Regex, ...]

    def devices(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for option in self.options:
            result |= option.devices()
        return result

    def __str__(self) -> str:
        return "|".join(_wrap(o) for o in self.options)


@dataclass(frozen=True)
class Star(Regex):
    inner: Regex

    def devices(self) -> FrozenSet[str]:
        return self.inner.devices()

    def __str__(self) -> str:
        return f"{_wrap(self.inner)}*"


def _wrap(node: Regex) -> str:
    text = str(node)
    if isinstance(node, (Concat, Alternate)):
        return f"({text})"
    return text


EPSILON = Epsilon()
ANY = AnySymbol()


# ----------------------------------------------------------------------
# Combinators (the programmatic way to build path expressions)
# ----------------------------------------------------------------------
def concat(*parts: Regex) -> Regex:
    """Sequence the given expressions, flattening nested concatenations."""
    flat: List[Regex] = []
    for part in parts:
        if isinstance(part, Epsilon):
            continue
        if isinstance(part, Concat):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if not flat:
        return EPSILON
    if len(flat) == 1:
        return flat[0]
    return Concat(tuple(flat))


def alternate(*options: Regex) -> Regex:
    """Union of the given expressions, flattening and deduplicating."""
    flat: List[Regex] = []
    for option in options:
        if isinstance(option, Alternate):
            candidates: Iterable[Regex] = option.options
        else:
            candidates = (option,)
        for candidate in candidates:
            if candidate not in flat:
                flat.append(candidate)
    if not flat:
        raise RegexSyntaxError("alternation of zero options")
    if len(flat) == 1:
        return flat[0]
    return Alternate(tuple(flat))


def star(inner: Regex) -> Regex:
    if isinstance(inner, (Star, Epsilon)):
        return inner if isinstance(inner, Star) else EPSILON
    return Star(inner)


def plus(inner: Regex) -> Regex:
    return concat(inner, star(inner))


def optional(inner: Regex) -> Regex:
    return alternate(inner, EPSILON)


def repeat(inner: Regex, lo: int, hi: int) -> Regex:
    """``inner{lo,hi}`` as explicit unrolling (hi must be finite)."""
    if lo < 0 or hi < lo:
        raise RegexSyntaxError(f"invalid repetition bounds {{{lo},{hi}}}")
    required = [inner] * lo
    optional_tail = [optional(inner)] * (hi - lo)
    return concat(*required, *optional_tail)


def literal_path(devices: Sequence[str]) -> Regex:
    """The regex matching exactly one concrete path."""
    return concat(*(Symbol(d) for d in devices))


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
_Token = Tuple[str, str]  # (kind, text)


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch in "()|.*+?":
            tokens.append((ch, ch))
            i += 1
            continue
        if ch == "[":
            j = text.find("]", i)
            if j < 0:
                raise RegexSyntaxError(f"unterminated class at position {i}")
            body = text[i + 1 : j].strip()
            negated = body.startswith("^")
            if negated:
                body = body[1:]
            members = tuple(part for part in body.replace(",", " ").split() if part)
            if not members:
                raise RegexSyntaxError(f"empty class at position {i}")
            tokens.append(("class", ("^" if negated else "") + " ".join(members)))
            i = j + 1
            continue
        if ch == "{":
            j = text.find("}", i)
            if j < 0:
                raise RegexSyntaxError(f"unterminated repetition at position {i}")
            tokens.append(("repeat", text[i + 1 : j]))
            i = j + 1
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] in "_-"):
                j += 1
            tokens.append(("name", text[i:j]))
            i = j
            continue
        raise RegexSyntaxError(f"unexpected character {ch!r} at position {i}")
    return tokens


class _Parser:
    """Recursive-descent parser for the grammar above."""

    def __init__(self, tokens: List[_Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Union[_Token, None]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self) -> _Token:
        token = self.peek()
        if token is None:
            raise RegexSyntaxError("unexpected end of expression")
        self.pos += 1
        return token

    def parse(self) -> Regex:
        expr = self.alternation()
        token = self.peek()
        if token is not None:
            raise RegexSyntaxError(f"unexpected trailing token {token[1]!r}")
        return expr

    def alternation(self) -> Regex:
        options = [self.concatenation()]
        while self.peek() is not None and self.peek()[0] == "|":
            self.take()
            options.append(self.concatenation())
        return alternate(*options) if len(options) > 1 else options[0]

    def concatenation(self) -> Regex:
        parts: List[Regex] = []
        while True:
            token = self.peek()
            if token is None or token[0] in ("|", ")"):
                break
            parts.append(self.postfix())
        if not parts:
            return EPSILON
        return concat(*parts)

    def postfix(self) -> Regex:
        node = self.atom()
        while True:
            token = self.peek()
            if token is None:
                return node
            kind = token[0]
            if kind == "*":
                self.take()
                node = star(node)
            elif kind == "+":
                self.take()
                node = plus(node)
            elif kind == "?":
                self.take()
                node = optional(node)
            elif kind == "repeat":
                self.take()
                node = self._apply_repeat(node, token[1])
            else:
                return node

    def _apply_repeat(self, node: Regex, spec: str) -> Regex:
        try:
            if "," in spec:
                lo_text, hi_text = spec.split(",", 1)
                lo = int(lo_text)
                hi = int(hi_text)
            else:
                lo = hi = int(spec)
        except ValueError as exc:
            raise RegexSyntaxError(f"malformed repetition {{{spec}}}") from exc
        return repeat(node, lo, hi)

    def atom(self) -> Regex:
        kind, text = self.take()
        if kind == "name":
            return Symbol(text)
        if kind == ".":
            return ANY
        if kind == "class":
            negated = text.startswith("^")
            members = frozenset((text[1:] if negated else text).split())
            return SymbolClass(members, negated)
        if kind == "(":
            inner = self.alternation()
            closing = self.take()
            if closing[0] != ")":
                raise RegexSyntaxError("expected ')'")
            return inner
        raise RegexSyntaxError(f"unexpected token {text!r}")


def parse_regex(text: str) -> Regex:
    """Parse a textual path expression into a :class:`Regex` AST."""
    tokens = _tokenize(text)
    if not tokens:
        raise RegexSyntaxError("empty expression")
    return _Parser(tokens).parse()
