"""Automata toolkit: device-alphabet regexes, NFAs and minimal DFAs.

The planner multiplies these automata with the network topology to build
DPVNets (§4.1 of the paper).
"""

from repro.automata.dfa import Dfa, compile_regex, dfa_product, dfa_union
from repro.automata.nfa import Label, Nfa, build_nfa
from repro.automata.regex import (
    ANY,
    EPSILON,
    Alternate,
    AnySymbol,
    Concat,
    Epsilon,
    Regex,
    Star,
    Symbol,
    SymbolClass,
    alternate,
    concat,
    literal_path,
    optional,
    parse_regex,
    plus,
    star,
)

__all__ = [
    "ANY",
    "EPSILON",
    "Alternate",
    "AnySymbol",
    "Concat",
    "Dfa",
    "Epsilon",
    "Label",
    "Nfa",
    "Regex",
    "Star",
    "Symbol",
    "SymbolClass",
    "alternate",
    "build_nfa",
    "compile_regex",
    "concat",
    "dfa_product",
    "dfa_union",
    "literal_path",
    "optional",
    "parse_regex",
    "plus",
    "star",
]
