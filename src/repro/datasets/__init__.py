"""Datasets: the Figure 10 registry, FIB synthesis and workload generators."""

from repro.datasets.registry import (
    DATASETS,
    BuiltDataset,
    DatasetSpec,
    build_dataset,
    dataset_names,
)
from repro.datasets.routing import (
    assign_prefixes,
    generate_fibs,
    inject_errors,
    split_prefix,
)
from repro.datasets.workloads import sample_fault_scenes

__all__ = [
    "DATASETS",
    "BuiltDataset",
    "DatasetSpec",
    "assign_prefixes",
    "build_dataset",
    "dataset_names",
    "generate_fibs",
    "inject_errors",
    "sample_fault_scenes",
    "split_prefix",
]
