"""The dataset registry: the thirteen datasets of Figure 10, scaled.

Each entry pairs a topology builder with FIB-synthesis parameters.  WAN/LAN
datasets follow the paper's names; the DC fabrics are scaled down (FT-48 →
FT-4/FT-8, NGDC → a 3-tier Clos) because pure-Python counting at 2880
devices is intractable — see DESIGN.md's substitution table.  The *relative*
characteristics the experiments depend on are preserved: pairwise-identical
topologies with different rule counts (AT1-1/AT1-2, AT2-1/AT2-2), small-
diameter DC fabrics, latency-dominated WANs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bdd.fields import HeaderLayout
from repro.bdd.predicate import PacketSpaceContext
from repro.baselines.base import ReachabilityQuery
from repro.core.invariant import Invariant, LengthFilter
from repro.core.library import reachability
from repro.dataplane.rule import Rule
from repro.datasets.routing import generate_fibs
from repro.errors import DatasetError
from repro.topology.generators import clos3, fattree
from repro.topology.graph import Topology
from repro.topology.zoo import WAN_BUILDERS

__all__ = ["DatasetSpec", "BuiltDataset", "DATASETS", "build_dataset", "dataset_names"]


@dataclass(frozen=True)
class DatasetSpec:
    """Registry entry: how to build one dataset."""

    name: str
    kind: str  # "WAN" | "LAN" | "DC"
    build_topology: Callable[[], Topology]
    rule_multiplier: int = 1
    note: str = ""


def _ft(k: int) -> Callable[[], Topology]:
    return lambda: fattree(k)


DATASETS: Dict[str, DatasetSpec] = {
    "INet2": DatasetSpec("INet2", "WAN", WAN_BUILDERS["INet2"]),
    "B4-13": DatasetSpec("B4-13", "WAN", WAN_BUILDERS["B4-13"]),
    "STFD": DatasetSpec("STFD", "LAN", WAN_BUILDERS["STFD"]),
    "AT1-1": DatasetSpec("AT1-1", "WAN", WAN_BUILDERS["AT1-1"]),
    "AT1-2": DatasetSpec(
        "AT1-2", "WAN", WAN_BUILDERS["AT1-2"], rule_multiplier=4,
        note="same topology as AT1-1, ~4x rules",
    ),
    "B4-18": DatasetSpec("B4-18", "WAN", WAN_BUILDERS["B4-18"]),
    "BTNA": DatasetSpec("BTNA", "WAN", WAN_BUILDERS["BTNA"]),
    "NTT": DatasetSpec("NTT", "WAN", WAN_BUILDERS["NTT"]),
    "AT2-1": DatasetSpec("AT2-1", "WAN", WAN_BUILDERS["AT2-1"]),
    "AT2-2": DatasetSpec(
        "AT2-2", "WAN", WAN_BUILDERS["AT2-2"], rule_multiplier=8,
        note="same topology as AT2-1, ~8x rules",
    ),
    "OTEG": DatasetSpec("OTEG", "WAN", WAN_BUILDERS["OTEG"]),
    "FT-4": DatasetSpec("FT-4", "DC", _ft(4), note="fattree, FT-48 stand-in"),
    "FT-8": DatasetSpec("FT-8", "DC", _ft(8), note="fattree, FT-48 stand-in"),
    "NGDC": DatasetSpec(
        "NGDC", "DC", lambda: clos3(2, 4, 2, 6),
        note="3-tier Clos standing in for the real DC",
    ),
}


def dataset_names() -> List[str]:
    return list(DATASETS)


@dataclass
class BuiltDataset:
    """A materialized dataset: topology + rules + the verification workload.

    ``queries`` drive the centralized baselines; ``invariants`` are the same
    requirements in Tulkun form (one reachability invariant per sampled
    pair).  Both cover the *same* pair sample so timing ratios are fair.
    """

    spec: DatasetSpec
    topology: Topology
    ctx: PacketSpaceContext
    rules_by_device: Dict[str, List[Rule]]
    queries: List[ReachabilityQuery]
    invariants: List[Invariant]
    pairs: List[Tuple[str, str]]

    @property
    def name(self) -> str:
        return self.spec.name

    def total_rules(self) -> int:
        return sum(len(rules) for rules in self.rules_by_device.values())

    def stats(self) -> Dict[str, object]:
        """The Figure 10 statistics row for this dataset."""
        return {
            "name": self.spec.name,
            "kind": self.spec.kind,
            "devices": self.topology.num_devices,
            "links": self.topology.num_links,
            "rules": self.total_rules(),
            "pairs": len(self.pairs),
            "note": self.spec.note,
        }


def _edge_devices(spec: DatasetSpec, topology: Topology) -> List[str]:
    """Devices that originate/receive traffic: prefix owners (ToRs for DC,
    every PoP for WAN)."""
    return sorted(topology.external_prefixes)


def build_dataset(
    name: str,
    pair_limit: Optional[int] = 24,
    max_extra_hops: int = 2,
    seed: int = 7,
    ctx: Optional[PacketSpaceContext] = None,
    rule_multiplier: Optional[int] = None,
) -> BuiltDataset:
    """Materialize a dataset.

    ``pair_limit`` caps the number of (ingress, destination) pairs the
    verification workload covers (the paper verifies all pairs on a testbed/
    Java stack; all-pairs in pure Python is reserved for the small datasets —
    pass ``None`` to force it).  Pairs are sampled deterministically.

    ``rule_multiplier`` overrides the registry's per-dataset rule scaling
    (each external prefix splits into that many sub-prefix rules) — the knob
    that moves the workload from latency-dominated to compute-dominated, as
    the real datasets' rule counts do.
    """
    spec = DATASETS.get(name)
    if spec is None:
        raise DatasetError(f"unknown dataset {name!r}; see dataset_names()")
    topology = spec.build_topology()
    if ctx is None:
        # Destination-prefix data planes: the compact layout keeps BDDs tiny.
        ctx = PacketSpaceContext(HeaderLayout.dst_only())
    multiplier = rule_multiplier if rule_multiplier is not None else spec.rule_multiplier
    rules = generate_fibs(topology, ctx, rule_multiplier=multiplier)

    edges = _edge_devices(spec, topology)
    all_pairs = [
        (src, dst) for src in edges for dst in edges if src != dst
    ]
    rng = random.Random(seed)
    if pair_limit is not None and len(all_pairs) > pair_limit:
        pairs = rng.sample(all_pairs, pair_limit)
    else:
        pairs = all_pairs

    queries: List[ReachabilityQuery] = []
    invariants: List[Invariant] = []
    for src, dst in pairs:
        prefix = topology.external_prefixes[dst][0]
        queries.append(ReachabilityQuery(src, dst, prefix, max_extra_hops))
        space = ctx.ip_prefix(prefix)
        if spec.kind == "DC":
            # All-ToR-pair shortest-path reachability (§9.3.1).
            inv = reachability(space, src, dst, max_extra_hops=0)
        else:
            inv = reachability(space, src, dst, max_extra_hops=max_extra_hops)
        invariants.append(inv)
    return BuiltDataset(
        spec=spec,
        topology=topology,
        ctx=ctx,
        rules_by_device=rules,
        queries=queries,
        invariants=invariants,
        pairs=pairs,
    )
