"""FIB synthesis: destination-prefix shortest-path routing with ECMP.

The paper's datasets pair real/synthetic topologies with forwarding tables
(Fig. 10).  We synthesize the tables the way the networks' routing protocols
would: every externally-owned prefix is announced from its owner device, and
every other device installs a longest-prefix rule pointing at its ECMP set
of shortest-path next hops.  A rule multiplier splits each prefix into
sub-prefixes with identical behaviour, reproducing the rule-count scaling of
the AT1-2/AT2-2 dataset variants (same topology, ~3-12× more rules).
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.bdd.fields import int_to_ip, ip_to_int
from repro.bdd.predicate import PacketSpaceContext, Predicate
from repro.dataplane.action import Action, GroupType
from repro.dataplane.rule import Rule
from repro.errors import DatasetError
from repro.topology.graph import Topology

__all__ = ["assign_prefixes", "generate_fibs", "split_prefix"]


def assign_prefixes(topology: Topology, base_octet: int = 10) -> None:
    """Give every device one /24 external prefix if none are attached yet
    (WAN datasets: every PoP originates routes)."""
    if topology.external_prefixes:
        return
    for index, dev in enumerate(topology.devices):
        prefix = f"{base_octet}.{index // 256}.{index % 256}.0/24"
        topology.attach_prefix(dev, prefix)


def split_prefix(prefix: str, ways: int) -> List[str]:
    """Split a CIDR prefix into ``ways`` equal sub-prefixes (ways must be a
    power of two)."""
    if ways <= 1:
        return [prefix]
    if ways & (ways - 1):
        raise DatasetError("prefix split factor must be a power of two")
    base_text, _, length_text = prefix.partition("/")
    base = ip_to_int(base_text)
    length = int(length_text)
    extra_bits = ways.bit_length() - 1
    if length + extra_bits > 32:
        raise DatasetError(f"cannot split {prefix} {ways} ways")
    step = 1 << (32 - length - extra_bits)
    return [
        f"{int_to_ip(base + i * step)}/{length + extra_bits}"
        for i in range(ways)
    ]


def generate_fibs(
    topology: Topology,
    ctx: PacketSpaceContext,
    rule_multiplier: int = 1,
    ecmp: bool = True,
    default_drop: bool = True,
) -> Dict[str, List[Rule]]:
    """Synthesize per-device rules implementing shortest-path routing toward
    every external prefix.

    Returns rules per device (not installed anywhere); rule priority encodes
    prefix length so longest-prefix-match emerges from the priority order.
    """
    assign_prefixes(topology)
    rules: Dict[str, List[Rule]] = {dev: [] for dev in topology.devices}
    group_type = GroupType.ANY if ecmp else GroupType.ALL

    for owner, prefixes in sorted(topology.external_prefixes.items()):
        distances = topology.hop_distances_to(owner)
        for prefix in prefixes:
            for sub in split_prefix(prefix, rule_multiplier):
                match = ctx.ip_prefix(sub)
                priority = int(sub.partition("/")[2])
                rules[owner].append(Rule(match, Action.deliver(), priority))
                for dev in topology.devices:
                    if dev == owner or dev not in distances:
                        continue
                    next_hops = [
                        neighbor
                        for neighbor in topology.neighbors(dev)
                        if distances.get(neighbor, 1 << 30) == distances[dev] - 1
                    ]
                    if not next_hops:
                        continue
                    action = Action.forward(next_hops, group_type)
                    rules[dev].append(Rule(match, action, priority))

    if default_drop:
        for dev in topology.devices:
            rules[dev].append(Rule(ctx.universe, Action.drop(), priority=-1))
    return rules


def inject_errors(
    topology: Topology,
    rules: Mapping[str, List[Rule]],
    ctx: PacketSpaceContext,
    count: int,
    seed: int,
) -> List[Tuple[str, str]]:
    """Corrupt ``count`` random forwarding rules in place (blackholes and
    mis-forwardings), as §9.3.1's error injection.  Returns descriptions of
    the injected errors for assertion in tests."""
    rng = random.Random(seed)
    injected: List[Tuple[str, str]] = []
    devices = [dev for dev, dev_rules in rules.items() if len(dev_rules) > 1]
    for _ in range(count):
        dev = rng.choice(devices)
        dev_rules = rules[dev]
        index = rng.randrange(len(dev_rules))
        victim = dev_rules[index]
        if victim.action.is_drop:
            continue
        if rng.random() < 0.5 or not topology.neighbors(dev):
            new_action = Action.drop()
            kind = "blackhole"
        else:
            wrong = rng.choice(topology.neighbors(dev))
            new_action = Action.forward_all([wrong])
            kind = f"misforward->{wrong}"
        dev_rules[index] = Rule(victim.match, new_action, victim.priority)
        injected.append((dev, kind))
    return injected
