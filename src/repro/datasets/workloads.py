"""Workload generators for the §9.3 experiments.

Burst workloads are the datasets' full rule sets; incremental workloads come
from :func:`repro.sim.runner.random_update_intents`; this module adds the
fault-scene sampler used by §9.3.4 (50 scenes of ≤3 link failures, shaped
after the Microsoft WAN failure statistics the paper cites: single-link
failures dominate, triple failures are rare).
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.topology.graph import Topology

__all__ = ["sample_fault_scenes"]

# Rough shape of [95]'s failure-size distribution: most scenes lose one
# link, few lose three.
_SIZE_WEIGHTS = {1: 0.70, 2: 0.22, 3: 0.08}


def sample_fault_scenes(
    topology: Topology,
    count: int,
    seed: int,
    max_failures: int = 3,
    require_connected: bool = True,
) -> List[Tuple[Tuple[str, str], ...]]:
    """Sample ``count`` distinct fault scenes of ≤ ``max_failures`` links.

    With ``require_connected`` (the default) scenes that disconnect the
    topology are re-drawn — the paper's recount experiments measure
    verification of the *surviving* paths, not partition detection.
    """
    rng = random.Random(seed)
    links = sorted(topology.link_set())
    sizes = [s for s in sorted(_SIZE_WEIGHTS) if s <= max_failures]
    weights = [_SIZE_WEIGHTS[s] for s in sizes]
    scenes: List[Tuple[Tuple[str, str], ...]] = []
    seen = set()
    attempts = 0
    while len(scenes) < count and attempts < count * 50:
        attempts += 1
        size = rng.choices(sizes, weights=weights)[0]
        if size > len(links):
            continue
        scene = tuple(sorted(rng.sample(links, size)))
        if scene in seen:
            continue
        if require_connected and not topology.without_links(scene).is_connected():
            continue
        seen.add(scene)
        scenes.append(scene)
    return scenes
