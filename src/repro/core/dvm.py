"""DVM protocol messages (§5).

Distributed Verification Messaging is the vector-protocol-inspired wire
format on-device verifiers use to exchange counting results.  Messages flow
along DPVNet links in the reverse direction (child device → parent device),
so no loop prevention is needed.

The UPDATE message principle (§5.2): the union of withdrawn predicates must
equal the union of the predicates of the incoming counting results.  The
constructor enforces it, turning protocol bugs into immediate failures
instead of silent divergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.bdd.predicate import Predicate
from repro.bdd.serialize import serialize_predicate
from repro.core.counting import CountSet
from repro.errors import ProtocolError

__all__ = ["UpdateMessage", "SubscribeMessage", "DvmMessage", "wire_size"]


@dataclass(frozen=True)
class UpdateMessage:
    """Counting-result transfer along one DPVNet link, child to parent.

    Attributes
    ----------
    intended_link:
        ``(parent_node_id, child_node_id)`` — the DPVNet link this result
        propagates (oppositely) along.  The receiving device dispatches on
        it (§8: "an UPDATE message is dispatched based on the intended link
        field").
    withdrawn:
        Union of the predicates whose previous results are obsolete.
    results:
        Disjoint ``(predicate, count set)`` entries; their union must equal
        ``withdrawn``.
    """

    intended_link: Tuple[int, int]
    withdrawn: Predicate
    results: Tuple[Tuple[Predicate, CountSet], ...]

    def __post_init__(self) -> None:
        covered = self.withdrawn.ctx.union(pred for pred, _cs in self.results)
        if covered != self.withdrawn:
            raise ProtocolError(
                "UPDATE principle violated: withdrawn predicates must equal "
                "the union of incoming counting results"
            )

    def wire_size(self) -> int:
        """Approximate encoded size in bytes (BDD bytes + 8 per count).

        Serializing the BDDs dominates the cost, and every message is sized
        at least twice (sender and receiver accounting), so the result is
        memoized — messages are immutable.
        """
        cached = self.__dict__.get("_wire_size")
        if cached is not None:
            return cached
        size = 16  # link ids + header
        size += len(serialize_predicate(self.withdrawn))
        for pred, cs in self.results:
            size += len(serialize_predicate(pred))
            size += 8 * sum(len(vec) for vec in cs) + 4
        self.__dict__["_wire_size"] = size
        return size


@dataclass(frozen=True)
class SubscribeMessage:
    """Packet-transformation subscription (§5.2).

    When a device transforms packets in ``pred_from`` into ``pred_to``
    before forwarding, it subscribes to its downstream neighbor's counting
    results for ``pred_to`` instead of ``pred_from``.
    """

    intended_link: Tuple[int, int]
    pred_from: Predicate
    pred_to: Predicate

    def wire_size(self) -> int:
        cached = self.__dict__.get("_wire_size")
        if cached is None:
            cached = (
                16
                + len(serialize_predicate(self.pred_from))
                + len(serialize_predicate(self.pred_to))
            )
            self.__dict__["_wire_size"] = cached
        return cached


DvmMessage = object  # UpdateMessage | SubscribeMessage


def wire_size(message) -> int:
    return message.wire_size()
