"""Ready-made invariant constructors: every row of Table 1.

Each function returns an :class:`~repro.core.invariant.Invariant` built from
the same specification the paper gives, so examples and tests can say
``reachability(space, "S", "D")`` instead of spelling regexes out.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from repro.automata.regex import parse_regex
from repro.bdd.predicate import Predicate
from repro.core.counting import CountExp
from repro.core.invariant import (
    And,
    Atom,
    EndKind,
    FaultSpec,
    Invariant,
    LengthFilter,
    MatchKind,
    Not,
    Or,
    PathExpr,
)

__all__ = [
    "reachability",
    "isolation",
    "loop_freeness",
    "blackhole_freeness",
    "waypoint_reachability",
    "bounded_length_reachability",
    "different_ingress_reachability",
    "all_shortest_path_availability",
    "non_redundant_reachability",
    "multicast",
    "anycast",
    "subset_behavior",
]


def _exist(path: PathExpr, op: str, n: int, end: EndKind = EndKind.DELIVERED) -> Atom:
    return Atom(path, MatchKind.EXIST, CountExp(op, n), end)


def reachability(
    space: Predicate,
    ingress: str,
    destination: str,
    fault_spec: Optional[FaultSpec] = None,
    loop_free: bool = True,
    max_extra_hops: Optional[int] = None,
) -> Invariant:
    """Row 1: ``(P, [S], (exist >= 1, S.*D))``.

    ``max_extra_hops`` adds the paper's practical ``<= shortest + k`` length
    filter (§9.2 uses k=2).
    """
    filters: Tuple[LengthFilter, ...] = ()
    if max_extra_hops is not None:
        filters = (LengthFilter("<=", "shortest", max_extra_hops),)
    path = PathExpr(
        parse_regex(f"{ingress} .* {destination}"),
        filters,
        simple_only=loop_free,
    )
    return Invariant(
        space,
        (ingress,),
        _exist(path, ">=", 1),
        fault_spec,
        name=f"reach_{ingress}_{destination}",
    )


def isolation(space: Predicate, ingress: str, destination: str) -> Invariant:
    """Row 2: ``(P, [S], (exist == 0, S.*D))``."""
    path = PathExpr(parse_regex(f"{ingress} .* {destination}"), simple_only=True)
    return Invariant(
        space, (ingress,), _exist(path, "==", 0),
        name=f"isolate_{ingress}_{destination}",
    )


def loop_freeness(space: Predicate, ingress: str, max_hops: int) -> Invariant:
    """Row 3: no trace visits any device twice.

    The paper encodes this as a (large) regex; we use the equivalent and far
    cheaper formulation: zero traces may *end* (delivered or dropped) on a
    non-simple path — operationally, every copy's fate is reached within the
    simple-path DPVNet, so a copy that loops never produces a counted end and
    reveals itself as a missing delivery.  Here we check the direct variant:
    at least one delivery along a simple path, and no copy left uncounted, by
    requiring every trace end to lie on a simple path of bounded length.
    """
    path = PathExpr(
        parse_regex(f"{ingress} .*"),
        (LengthFilter("<=", max_hops),),
        simple_only=True,
    )
    # Every universe must see >= 1 trace end within the simple bounded DAG;
    # a looping copy contributes nothing anywhere, so counts drop below 1.
    delivered = _exist(path, ">=", 1, EndKind.DELIVERED)
    dropped = _exist(path, ">=", 1, EndKind.DROPPED)
    return Invariant(
        space, (ingress,), Or((delivered, dropped)),
        name=f"loopfree_{ingress}",
    )


def blackhole_freeness(space: Predicate, ingress: str, max_hops: int) -> Invariant:
    """Row 4: ``(P, [S], (exist == 0, .* and not S.*D))`` — no copy may be
    dropped inside the network.  Expressed as "zero dropped trace ends along
    any (bounded simple) path"."""
    path = PathExpr(
        parse_regex(f"{ingress} .*"),
        (LengthFilter("<=", max_hops),),
        simple_only=True,
    )
    return Invariant(
        space, (ingress,), _exist(path, "==", 0, EndKind.DROPPED),
        name=f"blackholefree_{ingress}",
    )


def waypoint_reachability(
    space: Predicate, ingress: str, waypoint: str, destination: str,
    loop_free: bool = True,
) -> Invariant:
    """Row 5: ``(P, [S], (exist >= 1, S.*W.*D))``."""
    path = PathExpr(
        parse_regex(f"{ingress} .* {waypoint} .* {destination}"),
        simple_only=loop_free,
    )
    return Invariant(
        space, (ingress,), _exist(path, ">=", 1),
        name=f"waypoint_{ingress}_{waypoint}_{destination}",
    )


def bounded_length_reachability(
    space: Predicate, ingress: str, destination: str, max_hops: int
) -> Invariant:
    """Row 6: ``(P, [S], (exist >= 1, SD|S.D|S..D))`` — reachability within a
    hop budget, expressed with a length filter instead of regex unrolling."""
    path = PathExpr(
        parse_regex(f"{ingress} .* {destination}"),
        (LengthFilter("<=", max_hops),),
        simple_only=True,
    )
    return Invariant(
        space, (ingress,), _exist(path, ">=", 1),
        name=f"bounded_{ingress}_{destination}_{max_hops}",
    )


def different_ingress_reachability(
    space: Predicate, ingresses: Sequence[str], destination: str
) -> Invariant:
    """Row 7: ``(P, [X, Y], (exist >= 1, X.*D|Y.*D))`` — packets entering at
    any listed ingress must reach the destination."""
    options = "|".join(f"{ingress} .* {destination}" for ingress in ingresses)
    path = PathExpr(parse_regex(options), simple_only=True)
    return Invariant(
        space, tuple(ingresses), _exist(path, ">=", 1),
        name=f"multi_ingress_{destination}",
    )


def all_shortest_path_availability(
    space: Predicate, ingress: str, destination: str
) -> Invariant:
    """Row 8 (RCDC): ``(P, [S], (equal, (S.*D, (== shortest))))`` — every
    shortest path must be available; verified by local contracts."""
    path = PathExpr(
        parse_regex(f"{ingress} .* {destination}"),
        (LengthFilter("==", "shortest"),),
        simple_only=True,
    )
    return Invariant(
        space, (ingress,), Atom(path, MatchKind.EQUAL),
        name=f"all_shortest_{ingress}_{destination}",
    )


def non_redundant_reachability(
    space: Predicate, ingress: str, destination: str
) -> Invariant:
    """Row 9 (new in Tulkun): exactly one copy delivered — catches both
    blackholes and redundant delivery."""
    path = PathExpr(parse_regex(f"{ingress} .* {destination}"), simple_only=True)
    return Invariant(
        space, (ingress,), _exist(path, "==", 1),
        name=f"nonredundant_{ingress}_{destination}",
    )


def multicast(
    space: Predicate, ingress: str, destinations: Sequence[str]
) -> Invariant:
    """Row 10 (new in Tulkun): at least one copy to *every* destination."""
    atoms = [
        _exist(PathExpr(parse_regex(f"{ingress} .* {dest}"), simple_only=True), ">=", 1)
        for dest in destinations
    ]
    behavior = And(tuple(atoms)) if len(atoms) > 1 else atoms[0]
    return Invariant(
        space, (ingress,), behavior,
        name=f"multicast_{ingress}_{'_'.join(destinations)}",
    )


def anycast(
    space: Predicate, ingress: str, destinations: Sequence[str]
) -> Invariant:
    """Row 11 (new in Tulkun): exactly one destination receives the packet —
    in every universe, one of the destinations counts 1 and the rest 0."""
    if len(destinations) < 2:
        raise ValueError("anycast needs at least two candidate destinations")
    atoms = [
        _exist(PathExpr(parse_regex(f"{ingress} .* {dest}"), simple_only=True), "==", 1)
        for dest in destinations
    ]
    zero_atoms = [
        _exist(PathExpr(parse_regex(f"{ingress} .* {dest}"), simple_only=True), "==", 0)
        for dest in destinations
    ]
    options = []
    for chosen in range(len(destinations)):
        parts = [
            atoms[i] if i == chosen else zero_atoms[i]
            for i in range(len(destinations))
        ]
        options.append(And(tuple(parts)))
    return Invariant(
        space, (ingress,), Or(tuple(options)),
        name=f"anycast_{ingress}_{'_'.join(destinations)}",
    )


def subset_behavior(
    space: Predicate, ingress: str, path: PathExpr, max_hops: int
) -> Invariant:
    """The ``subset`` syntax sugar (§3): every universe's trace set is a
    non-empty subset of the paths matching ``path``: at least one matching
    delivery, zero trace ends (delivered or dropped) off the pattern.

    The off-pattern half is approximated by "no drops within the bounded
    simple DAG", the same operational reading used for blackhole-freeness.
    """
    any_path = PathExpr(
        parse_regex(f"{ingress} .*"),
        (LengthFilter("<=", max_hops),),
        simple_only=True,
    )
    return Invariant(
        space,
        (ingress,),
        And((_exist(path, ">=", 1), _exist(any_path, "==", 0, EndKind.DROPPED))),
        name=f"subset_{ingress}",
    )
