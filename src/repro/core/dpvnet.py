"""DPVNet: the DAG of all valid paths (§4.1).

A DPVNet compactly represents every path in the topology that matches the
invariant's path expression(s).  Nodes map many-to-one onto devices; each
node also remembers, per behavior atom, whether a trace *ending* at it is
accepted by that atom's regex (the count-vector acceptance used by the
counting algorithm).

Two constructions are provided:

* :func:`build_product_dpvnet` — the paper's automaton × topology product,
  minimized, and unrolled by a depth bound when the product has cycles
  (wildcard expressions like ``S.*D`` admit arbitrarily long paths; the
  unrolling bound comes from the invariant's length filters, defaulting to
  the device count).
* :func:`build_enumeration_dpvnet` — explicit simple-path enumeration with
  suffix sharing, used for ``loop_free`` behaviors and symbolic length
  filters (``== shortest`` etc.), where path-dependent constraints make the
  plain product unsound.  The paper leans on the same observation to keep
  DPVNets small: operators want limited-hop paths, and there are few.

Both produce identical counting semantics; the test suite cross-checks them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.automata.dfa import Dfa
from repro.errors import PlannerError
from repro.topology.graph import Topology

__all__ = ["DpvNode", "DpvNet", "build_product_dpvnet", "build_enumeration_dpvnet"]


@dataclass
class DpvNode:
    """One node of a DPVNet.

    ``accept`` has one boolean per behavior atom: True when a trace ending at
    this node matches that atom's path expression (including its length
    filters).
    """

    node_id: int
    dev: str
    accept: Tuple[bool, ...]
    children: List[int] = field(default_factory=list)
    parents: List[int] = field(default_factory=list)
    label: str = ""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DpvNode({self.label or self.node_id}, dev={self.dev})"


class DpvNet:
    """The valid-path DAG plus per-ingress source nodes."""

    def __init__(
        self,
        nodes: Dict[int, DpvNode],
        sources: Dict[str, Optional[int]],
        arity: int,
    ) -> None:
        self.nodes = nodes
        self.sources = sources
        self.arity = arity
        # dev -> [nodes] grouping, built lazily on first nodes_of_device
        # (the planner asks per device, per invariant — the node table is
        # immutable once constructed).
        self._nodes_by_dev: Optional[Dict[str, List[DpvNode]]] = None
        # child (node -> dev -> child id); devices are unique among children
        # because both constructions are deterministic per device step.
        self.child_by_dev: Dict[int, Dict[str, int]] = {}
        for node in nodes.values():
            mapping: Dict[str, int] = {}
            for child_id in node.children:
                child = nodes[child_id]
                if child.dev in mapping:
                    raise PlannerError(
                        f"node {node.node_id} has two children on device "
                        f"{child.dev!r}; construction is not deterministic"
                    )
                mapping[child.dev] = child_id
            self.child_by_dev[node.node_id] = mapping
        # Optional fault-scene labels on edges: (parent, child) -> scene ids.
        # ``None`` means the edge is valid in every scene.
        self.edge_scenes: Optional[Dict[Tuple[int, int], FrozenSet[int]]] = None
        self._assign_labels()

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return sum(len(node.children) for node in self.nodes.values())

    def node(self, node_id: int) -> DpvNode:
        return self.nodes[node_id]

    def devices(self) -> Set[str]:
        return {node.dev for node in self.nodes.values()}

    def nodes_of_device(self, dev: str) -> List[DpvNode]:
        by_dev = self._nodes_by_dev
        if by_dev is None:
            by_dev = self._nodes_by_dev = {}
            for node in self.nodes.values():
                by_dev.setdefault(node.dev, []).append(node)
        return list(by_dev.get(dev, ()))

    def reverse_topological_order(self) -> List[int]:
        """Children before parents — the traversal order of Algorithm 1."""
        order: List[int] = []
        state: Dict[int, int] = {}  # 0 unseen, 1 in progress, 2 done

        def visit(node_id: int) -> None:
            stack = [(node_id, False)]
            while stack:
                nid, expanded = stack.pop()
                if expanded:
                    state[nid] = 2
                    order.append(nid)
                    continue
                mark = state.get(nid, 0)
                if mark == 2:
                    continue
                if mark == 1:
                    raise PlannerError("DPVNet contains a cycle")
                state[nid] = 1
                stack.append((nid, True))
                for child in self.nodes[nid].children:
                    if state.get(child, 0) == 0:
                        stack.append((child, False))
                    elif state.get(child) == 1:
                        raise PlannerError("DPVNet contains a cycle")
        for nid in self.nodes:
            if state.get(nid, 0) == 0:
                visit(nid)
        return order

    def enumerate_paths(self, max_paths: int = 100000) -> List[Tuple[str, ...]]:
        """All device paths from sources to atom-accepting nodes.

        Exponential in general; exists for tests and small demos.
        """
        paths: List[Tuple[str, ...]] = []

        def walk(node_id: int, prefix: Tuple[str, ...]) -> None:
            if len(paths) >= max_paths:
                return
            node = self.nodes[node_id]
            here = prefix + (node.dev,)
            if any(node.accept):
                paths.append(here)
            for child in node.children:
                walk(child, here)

        for source in self.sources.values():
            if source is not None:
                walk(source, ())
        return paths

    def _assign_labels(self) -> None:
        counters: Dict[str, int] = {}
        for node_id in sorted(self.nodes):
            node = self.nodes[node_id]
            counters[node.dev] = counters.get(node.dev, 0) + 1
            node.label = f"{node.dev}{counters[node.dev]}"

    def stats(self) -> Dict[str, int]:
        return {
            "nodes": self.num_nodes,
            "edges": self.num_edges,
            "devices": len(self.devices()),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DpvNet(nodes={self.num_nodes}, edges={self.num_edges})"


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _prune_and_build(
    raw_nodes: Dict[int, Tuple[str, Tuple[bool, ...]]],
    raw_edges: Dict[int, List[int]],
    raw_sources: Dict[str, Optional[int]],
    arity: int,
) -> DpvNet:
    """Drop nodes that cannot reach an accepting node or be reached from a
    source, then materialize the DpvNet."""
    # Backward reachability from accepting nodes.
    reverse: Dict[int, List[int]] = {nid: [] for nid in raw_nodes}
    for src, targets in raw_edges.items():
        for dst in targets:
            reverse[dst].append(src)
    useful: Set[int] = {nid for nid, (_dev, accept) in raw_nodes.items() if any(accept)}
    stack = list(useful)
    while stack:
        nid = stack.pop()
        for pred in reverse[nid]:
            if pred not in useful:
                useful.add(pred)
                stack.append(pred)
    # Forward reachability from sources.
    reachable: Set[int] = set()
    stack = [nid for nid in raw_sources.values() if nid is not None and nid in useful]
    for nid in stack:
        reachable.add(nid)
    while stack:
        nid = stack.pop()
        for child in raw_edges.get(nid, ()):
            if child in useful and child not in reachable:
                reachable.add(child)
                stack.append(child)
    keep = useful & reachable

    nodes: Dict[int, DpvNode] = {}
    for nid in keep:
        dev, accept = raw_nodes[nid]
        nodes[nid] = DpvNode(nid, dev, accept)
    for nid in keep:
        for child in raw_edges.get(nid, ()):
            if child in keep:
                nodes[nid].children.append(child)
                nodes[child].parents.append(nid)
    sources = {
        ingress: (nid if nid in keep else None)
        for ingress, nid in raw_sources.items()
    }
    return DpvNet(nodes, sources, arity)


def _suffix_merge(net: DpvNet) -> DpvNet:
    """Merge nodes with identical device, acceptance and child structure.

    This is the "state minimization to remove redundant nodes" step of §4.1
    applied directly on the DAG (Myhill–Nerode on the finite path language).
    Iterates bottom-up until a fixpoint.
    """
    order = net.reverse_topological_order()
    canonical: Dict[Tuple, int] = {}
    replacement: Dict[int, int] = {}
    for nid in order:
        node = net.nodes[nid]
        children = tuple(
            sorted(replacement.get(child, child) for child in node.children)
        )
        key = (node.dev, node.accept, children)
        existing = canonical.get(key)
        if existing is None:
            canonical[key] = nid
            replacement[nid] = nid
        else:
            replacement[nid] = existing

    raw_nodes: Dict[int, Tuple[str, Tuple[bool, ...]]] = {}
    raw_edges: Dict[int, List[int]] = {}
    for nid in set(replacement.values()):
        node = net.nodes[nid]
        raw_nodes[nid] = (node.dev, node.accept)
        children = sorted({replacement[child] for child in node.children})
        raw_edges[nid] = children
    raw_sources = {
        ingress: (replacement[nid] if nid is not None else None)
        for ingress, nid in net.sources.items()
    }
    return _prune_and_build(raw_nodes, raw_edges, raw_sources, net.arity)


# ----------------------------------------------------------------------
# Product construction
# ----------------------------------------------------------------------
def build_product_dpvnet(
    topology: Topology,
    dfas: Sequence[Dfa],
    ingresses: Sequence[str],
    max_hops: Optional[int] = None,
) -> DpvNet:
    """Multiply the behavior automata with the topology (§4.1).

    ``dfas`` holds one complete DFA per behavior atom (all over the same
    alphabet, which must contain every topology device).  The combined state
    is the tuple of per-atom states; a combined state is dead when every
    component is dead.

    If the reachable product contains a cycle, the graph is unrolled by hop
    count up to ``max_hops`` (default: number of devices), which bounds path
    length exactly like a concrete length filter would.
    """
    if not dfas:
        raise PlannerError("need at least one automaton")
    for ingress in ingresses:
        if not topology.has_device(ingress):
            raise PlannerError(f"ingress {ingress!r} not in topology")
    arity = len(dfas)

    def step(states: Tuple[int, ...], dev: str) -> Tuple[int, ...]:
        return tuple(dfa.step(state, dev) for dfa, state in zip(dfas, states))

    def all_dead(states: Tuple[int, ...]) -> bool:
        return all(dfa.is_dead(state) for dfa, state in zip(dfas, states))

    def acceptance(states: Tuple[int, ...]) -> Tuple[bool, ...]:
        return tuple(state in dfa.accepting for dfa, state in zip(dfas, states))

    start_states = tuple(dfa.start for dfa in dfas)

    # First pass: plain (dev, states) product.
    index: Dict[Tuple[str, Tuple[int, ...]], int] = {}
    raw_nodes: Dict[int, Tuple[str, Tuple[bool, ...]]] = {}
    raw_edges: Dict[int, List[int]] = {}

    def get_node(dev: str, states: Tuple[int, ...]) -> int:
        key = (dev, states)
        nid = index.get(key)
        if nid is None:
            nid = len(index)
            index[key] = nid
            raw_nodes[nid] = (dev, acceptance(states))
            raw_edges[nid] = []
        return nid

    raw_sources: Dict[str, Optional[int]] = {}
    worklist: List[Tuple[str, Tuple[int, ...]]] = []
    for ingress in ingresses:
        states = step(start_states, ingress)
        if all_dead(states):
            raw_sources[ingress] = None
            continue
        nid = get_node(ingress, states)
        raw_sources[ingress] = nid
        worklist.append((ingress, states))
    visited: Set[Tuple[str, Tuple[int, ...]]] = set(worklist)
    while worklist:
        dev, states = worklist.pop()
        nid = index[(dev, states)]
        for neighbor in topology.neighbors(dev):
            nxt = step(states, neighbor)
            if all_dead(nxt):
                continue
            child = get_node(neighbor, nxt)
            if child not in raw_edges[nid]:
                raw_edges[nid].append(child)
            if (neighbor, nxt) not in visited:
                visited.add((neighbor, nxt))
                worklist.append((neighbor, nxt))

    if _is_acyclic(raw_nodes, raw_edges):
        net = _prune_and_build(raw_nodes, raw_edges, raw_sources, arity)
        return _suffix_merge(net)

    # Cyclic product: unroll by depth.
    bound = max_hops if max_hops is not None else topology.num_devices
    uindex: Dict[Tuple[str, Tuple[int, ...], int], int] = {}
    unodes: Dict[int, Tuple[str, Tuple[bool, ...]]] = {}
    uedges: Dict[int, List[int]] = {}

    def uget(dev: str, states: Tuple[int, ...], depth: int) -> int:
        key = (dev, states, depth)
        nid = uindex.get(key)
        if nid is None:
            nid = len(uindex)
            uindex[key] = nid
            unodes[nid] = (dev, acceptance(states))
            uedges[nid] = []
        return nid

    usources: Dict[str, Optional[int]] = {}
    uworklist: List[Tuple[str, Tuple[int, ...], int]] = []
    for ingress in ingresses:
        states = step(start_states, ingress)
        if all_dead(states):
            usources[ingress] = None
            continue
        usources[ingress] = uget(ingress, states, 0)
        uworklist.append((ingress, states, 0))
    useen = set(uworklist)
    while uworklist:
        dev, states, depth = uworklist.pop()
        if depth >= bound:
            continue
        nid = uindex[(dev, states, depth)]
        for neighbor in topology.neighbors(dev):
            nxt = step(states, neighbor)
            if all_dead(nxt):
                continue
            child = uget(neighbor, nxt, depth + 1)
            if child not in uedges[nid]:
                uedges[nid].append(child)
            key = (neighbor, nxt, depth + 1)
            if key not in useen:
                useen.add(key)
                uworklist.append(key)
    net = _prune_and_build(unodes, uedges, usources, arity)
    return _suffix_merge(net)


def _is_acyclic(
    raw_nodes: Dict[int, Tuple[str, Tuple[bool, ...]]],
    raw_edges: Dict[int, List[int]],
) -> bool:
    state: Dict[int, int] = {}
    for start in raw_nodes:
        if state.get(start, 0):
            continue
        stack: List[Tuple[int, bool]] = [(start, False)]
        while stack:
            nid, expanded = stack.pop()
            if expanded:
                state[nid] = 2
                continue
            mark = state.get(nid, 0)
            if mark == 2:
                continue
            if mark == 1:
                continue
            state[nid] = 1
            stack.append((nid, True))
            for child in raw_edges.get(nid, ()):
                child_mark = state.get(child, 0)
                if child_mark == 1:
                    return False
                if child_mark == 0:
                    stack.append((child, False))
    return True


# ----------------------------------------------------------------------
# Simple-path enumeration construction
# ----------------------------------------------------------------------
def build_enumeration_dpvnet(
    topology: Topology,
    dfas: Sequence[Dfa],
    ingresses: Sequence[str],
    accept_path,
    max_hops: int,
    simple_only: bool = True,
) -> DpvNet:
    """Enumerate (simple) matching paths and build the suffix-shared DAG.

    ``accept_path(atom_index, ingress, path) -> bool`` refines automaton
    acceptance with path-dependent checks (length filters, including the
    symbolic ``shortest`` ones).  ``max_hops`` bounds the search depth in
    links.
    """
    if not dfas:
        raise PlannerError("need at least one automaton")
    arity = len(dfas)
    start_states = tuple(dfa.start for dfa in dfas)

    def step(states: Tuple[int, ...], dev: str) -> Tuple[int, ...]:
        return tuple(dfa.step(state, dev) for dfa, state in zip(dfas, states))

    def all_dead(states: Tuple[int, ...]) -> bool:
        return all(dfa.is_dead(state) for dfa, state in zip(dfas, states))

    # Trie of explored prefixes.  Node 0 is a virtual pre-ingress root.
    trie_children: List[Dict[str, int]] = [{}]
    trie_dev: List[Optional[str]] = [None]
    trie_accept: List[List[bool]] = [[False] * arity]
    raw_sources: Dict[str, Optional[int]] = {ingress: None for ingress in ingresses}

    def trie_get(parent: int, dev: str) -> int:
        child = trie_children[parent].get(dev)
        if child is None:
            child = len(trie_children)
            trie_children[parent][dev] = child
            trie_children.append({})
            trie_dev.append(dev)
            trie_accept.append([False] * arity)
        return child

    for ingress in ingresses:
        if not topology.has_device(ingress):
            raise PlannerError(f"ingress {ingress!r} not in topology")
        states = step(start_states, ingress)
        if all_dead(states):
            continue
        root = trie_get(0, ingress)
        raw_sources[ingress] = root
        stack: List[Tuple[int, str, Tuple[int, ...], Tuple[str, ...]]] = [
            (root, ingress, states, (ingress,))
        ]
        while stack:
            tnode, dev, cur_states, path = stack.pop()
            for i, (dfa, state) in enumerate(zip(dfas, cur_states)):
                if state in dfa.accepting and accept_path(i, ingress, path):
                    trie_accept[tnode][i] = True
            if len(path) - 1 >= max_hops:
                continue
            for neighbor in topology.neighbors(dev):
                if simple_only and neighbor in path:
                    continue
                nxt = step(cur_states, neighbor)
                if all_dead(nxt):
                    continue
                child = trie_get(tnode, neighbor)
                stack.append((child, neighbor, nxt, path + (neighbor,)))

    raw_nodes: Dict[int, Tuple[str, Tuple[bool, ...]]] = {}
    raw_edges: Dict[int, List[int]] = {}
    for nid in range(1, len(trie_children)):
        raw_nodes[nid] = (trie_dev[nid], tuple(trie_accept[nid]))
        raw_edges[nid] = sorted(trie_children[nid].values())
    net = _prune_and_build(raw_nodes, raw_edges, raw_sources, arity)
    return _suffix_merge(net)
