"""Predicate-keyed maps: disjoint (packet set → value) partitions.

CIBIn, LocCIB and CIBOut (§5.1) are all maps from *disjoint* packet-space
predicates to counting results.  :class:`PredMap` maintains that disjointness
invariant under lookups, regional reassignment and diffing, and is the one
data structure the DVM implementation leans on.
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, Iterable, Iterator, List, Optional, Tuple, TypeVar

from repro.bdd.predicate import PacketSpaceContext, Predicate

__all__ = ["PredMap"]

V = TypeVar("V")


class PredMap(Generic[V]):
    """A partition of (a subset of) packet space into valued regions.

    Entries are pairwise-disjoint ``(Predicate, value)`` pairs.  Regions with
    equal values are merged opportunistically so the map stays minimal —
    mirroring how the paper's devices "merge entries with the same count
    value" before sending (§5.2 step 3).
    """

    def __init__(self, ctx) -> None:
        # ``ctx`` is any *space*: a PacketSpaceContext for BDD-backed maps or
        # an AtomIndex for atom-backed ones.  Only ``.empty`` and ``.union``
        # are used, and keys are whichever region type the space produces.
        self.ctx = ctx
        # Keyed by value when hashable for cheap merging; we keep a list of
        # (pred, value) and merge on write.
        self._entries: List[Tuple[Predicate, V]] = []
        self._domain: Optional[Predicate] = None

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def entries(self) -> List[Tuple[Predicate, V]]:
        return list(self._entries)

    def domain(self) -> Predicate:
        """Union of all keyed regions (cached; writes invalidate)."""
        if self._domain is None:
            self._domain = self.ctx.union(
                pred for pred, _value in self._entries
            )
        return self._domain

    def lookup(self, region: Predicate) -> List[Tuple[Predicate, V]]:
        """Split ``region`` along entry boundaries.

        Returns disjoint ``(piece, value)`` pairs covering the part of
        ``region`` that the map covers; uncovered leftovers are not returned
        (callers that need them use :meth:`lookup_with_default`).
        """
        pieces: List[Tuple[Predicate, V]] = []
        remaining = region
        for pred, value in self._entries:
            if remaining.is_empty:
                break
            piece = remaining & pred
            if not piece.is_empty:
                pieces.append((piece, value))
                remaining = remaining - pred
        return pieces

    def lookup_with_default(
        self, region: Predicate, default: V
    ) -> List[Tuple[Predicate, V]]:
        """Like :meth:`lookup` but the uncovered remainder maps to
        ``default``."""
        pieces = self.lookup(region)
        covered = self.ctx.union(piece for piece, _value in pieces)
        leftover = region - covered
        if not leftover.is_empty:
            pieces.append((leftover, default))
        return pieces

    def value_at(self, region: Predicate) -> Optional[V]:
        """Value of a region entirely inside one entry, else ``None``."""
        for pred, value in self._entries:
            if pred.covers(region):
                return value
        return None

    # ------------------------------------------------------------------
    # Packed-mask fast paths (atom-backed maps only)
    # ------------------------------------------------------------------
    # The fused verifier kernels work on raw leaf-slot bitmasks and only
    # wrap masks back into AtomSets at storage boundaries.  These twins
    # mirror lookup/lookup_with_default/assign bit for bit: same entry
    # iteration order, same piece order, same merge semantics — which is
    # what keeps wire bytes identical to the generic path.

    def lookup_masks(self, region_mask: int) -> List[Tuple[int, V]]:
        """:meth:`lookup` over a raw bitmask: ``(piece_mask, value)`` pairs."""
        pieces: List[Tuple[int, V]] = []
        remaining = region_mask
        for aset, value in self._entries:
            if not remaining:
                break
            piece = remaining & aset.mask()
            if piece:
                pieces.append((piece, value))
                remaining &= ~piece
        return pieces

    def lookup_masks_with_default(
        self, region_mask: int, default: V
    ) -> List[Tuple[int, V]]:
        """:meth:`lookup_with_default` over a raw bitmask."""
        pieces = self.lookup_masks(region_mask)
        covered = 0
        for mask, _value in pieces:
            covered |= mask
        leftover = region_mask & ~covered
        if leftover:
            pieces.append((leftover, default))
        return pieces

    def assign_masks(self, pieces: Iterable[Tuple[int, V]]) -> None:
        """:meth:`assign` over raw bitmasks (``ctx`` must be an AtomIndex).

        Masks are wrapped into tracked AtomSets here — entries must stay
        live sets so :meth:`AtomIndex.compact` sees (and preserves) the
        boundaries this map distinguishes."""
        from_mask = self.ctx.from_mask
        self.assign((from_mask(mask), value) for mask, value in pieces)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Tuple[Predicate, V]]:
        return iter(self._entries)

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------
    def assign(self, pieces: Iterable[Tuple[Predicate, V]]) -> None:
        """Overwrite the regions of ``pieces`` with their new values.

        Existing entries are carved down so disjointness is preserved; new
        pieces with values equal to an adjacent surviving region are merged.
        """
        new_pieces = [(pred, value) for pred, value in pieces if not pred.is_empty]
        if not new_pieces:
            return
        overwritten = self.ctx.union(pred for pred, _value in new_pieces)
        survivors: List[Tuple[Predicate, V]] = []
        for pred, value in self._entries:
            kept = pred - overwritten
            if not kept.is_empty:
                survivors.append((kept, value))
        survivors.extend(new_pieces)
        self._entries = self._merge(survivors)
        self._domain = None

    def remove(self, region: Predicate) -> None:
        """Delete ``region`` from the map's domain."""
        if region.is_empty:
            return
        survivors: List[Tuple[Predicate, V]] = []
        for pred, value in self._entries:
            kept = pred - region
            if not kept.is_empty:
                survivors.append((kept, value))
        self._entries = survivors
        self._domain = None

    def clear(self) -> None:
        self._entries = []
        self._domain = None

    def _merge(self, entries: List[Tuple[Predicate, V]]) -> List[Tuple[Predicate, V]]:
        merged: Dict[object, Predicate] = {}
        values: Dict[object, V] = {}
        order: List[object] = []
        for pred, value in entries:
            try:
                key: object = value
                hash(key)
            except TypeError:
                key = id(value)
            if key in merged:
                merged[key] = merged[key] | pred
            else:
                merged[key] = pred
                values[key] = value
                order.append(key)
        return [(merged[key], values[key]) for key in order]

    # ------------------------------------------------------------------
    # Diffing
    # ------------------------------------------------------------------
    def changed_region(self, other: "PredMap[V]") -> Predicate:
        """Packet space where this map's value differs from ``other``'s
        (missing-in-one counts as different)."""
        changed = self.ctx.empty
        all_domain = self.domain() | other.domain()
        remaining = all_domain
        for pred, value in self._entries:
            for other_pred, other_value in other._entries:  # noqa: SLF001
                piece = pred & other_pred
                if not piece.is_empty and value != other_value:
                    changed = changed | piece
            remaining = remaining - pred
        # Regions covered by exactly one map are changes too.
        only_self = self.domain() - other.domain()
        only_other = other.domain() - self.domain()
        return changed | only_self | only_other

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PredMap({len(self._entries)} regions)"
