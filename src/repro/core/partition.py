"""Divide-and-conquer verification: the §7 "one-big-switch" abstraction.

For networks with a huge number of valid paths — or for incremental
deployment where one verifier instance serves a whole partition — the paper
proposes dividing the network into partitions, abstracting each as one big
switch, building the DPVNet on the abstract network, and performing intra-/
inter-partition verification.

This module implements that pipeline:

1. :func:`partition_by_bfs` — a simple balanced partitioner (operators
   would normally supply pods/areas).
2. :class:`BigSwitchAbstraction` — the abstract topology (one device per
   partition) plus the *intra-partition verification* step: for each
   partition, a nested planner run checks which neighbor partitions the
   packet space can actually cross to, producing the abstract data plane.
3. :func:`verify_partitioned` — reachability verification on the abstract
   network; sound and complete for partition-level reachability when
   partitions are internally connected.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.bdd.predicate import PacketSpaceContext, Predicate
from repro.core.counting import CountExp
from repro.core.invariant import Atom, Invariant, LengthFilter, MatchKind, PathExpr
from repro.core.planner import Planner
from repro.core.result import VerificationResult, Violation
from repro.dataplane.action import Action
from repro.dataplane.device import DevicePlane
from repro.dataplane.rule import Rule
from repro.errors import PlannerError
from repro.topology.graph import Topology

__all__ = ["partition_by_bfs", "BigSwitchAbstraction", "verify_partitioned"]


def partition_by_bfs(topology: Topology, num_partitions: int) -> Dict[str, str]:
    """Assign devices to ``num_partitions`` clusters by balanced BFS growth.

    Returns device → partition-name.  Deterministic.
    """
    if num_partitions < 1:
        raise PlannerError("need at least one partition")
    devices = topology.devices
    seeds = devices[:: max(1, len(devices) // num_partitions)][:num_partitions]
    assignment: Dict[str, str] = {}
    frontiers: List[List[str]] = []
    for index, seed in enumerate(seeds):
        name = f"part{index}"
        assignment[seed] = name
        frontiers.append([seed])
    changed = True
    while changed:
        changed = False
        for index, frontier in enumerate(frontiers):
            name = f"part{index}"
            next_frontier: List[str] = []
            for dev in frontier:
                for neighbor in topology.neighbors(dev):
                    if neighbor not in assignment:
                        assignment[neighbor] = name
                        next_frontier.append(neighbor)
                        changed = True
            frontiers[index] = next_frontier
    # Unreached devices (disconnected graphs) land in part0.
    for dev in devices:
        assignment.setdefault(dev, "part0")
    return assignment


class BigSwitchAbstraction:
    """One-big-switch view of a partitioned network."""

    def __init__(
        self,
        topology: Topology,
        ctx: PacketSpaceContext,
        assignment: Mapping[str, str],
    ) -> None:
        self.topology = topology
        self.ctx = ctx
        self.assignment = dict(assignment)
        missing = set(topology.devices) - set(self.assignment)
        if missing:
            raise PlannerError(f"devices without a partition: {sorted(missing)}")
        self.partitions: Dict[str, List[str]] = {}
        for dev, part in sorted(self.assignment.items()):
            self.partitions.setdefault(part, []).append(dev)
        self._abstract = self._build_abstract_topology()

    # ------------------------------------------------------------------
    def _build_abstract_topology(self) -> Topology:
        abstract = Topology(f"{self.topology.name}_abstract")
        for part in self.partitions:
            abstract.add_device(part)
        for link in self.topology.links():
            pa = self.assignment[link.a]
            pb = self.assignment[link.b]
            if pa != pb and not abstract.has_link(pa, pb):
                abstract.add_link(pa, pb, link.latency)
        return abstract

    @property
    def abstract_topology(self) -> Topology:
        return self._abstract

    def border_devices(self, part: str, toward: str) -> List[str]:
        """Devices of ``part`` with a link into partition ``toward``."""
        result = []
        for dev in self.partitions[part]:
            for neighbor in self.topology.neighbors(dev):
                if self.assignment[neighbor] == toward:
                    result.append(dev)
                    break
        return result

    # ------------------------------------------------------------------
    # Intra-partition verification → abstract data plane
    # ------------------------------------------------------------------
    def _sub_topology(self, part: str) -> Topology:
        members = set(self.partitions[part])
        sub = Topology(part)
        for dev in members:
            sub.add_device(dev)
        for link in self.topology.links():
            if link.a in members and link.b in members:
                sub.add_link(link.a, link.b, link.latency)
        return sub

    def _crosses(
        self,
        part: str,
        planes: Mapping[str, DevicePlane],
        space: Predicate,
        entries: Sequence[str],
        toward: str,
    ) -> bool:
        """Intra-partition check: can ``space`` get from every entry border
        of ``part`` to some device that forwards it into ``toward``?

        Runs a nested reachability verification inside the partition with a
        virtual egress standing for the neighbor partition.
        """
        sub = self._sub_topology(part)
        egress_name = f"virt_egress_{toward}"
        borders = self.border_devices(part, toward)
        if not borders:
            return False
        extended = sub.with_virtual_device(egress_name, borders)
        # Planes restricted to the partition; border devices get their rules
        # rewritten so next hops inside `toward` become the virtual egress.
        sub_planes: Dict[str, DevicePlane] = {}
        toward_members = set(self.partitions[toward])
        members = set(self.partitions[part])
        for dev in members:
            plane = planes.get(dev)
            clone = DevicePlane(dev, self.ctx)
            if plane is None:
                sub_planes[dev] = clone
                continue
            for rule in plane.rules:
                group = []
                for hop in rule.action.group:
                    if hop in toward_members:
                        if egress_name not in group:
                            group.append(egress_name)
                    elif hop in members or hop == "@ext":
                        group.append(hop)
                    # hops into *other* partitions vanish inside this view
                if group:
                    action = Action(
                        tuple(sorted(group)), rule.action.group_type,
                        rule.action.transform,
                    )
                else:
                    action = Action.drop()
                clone.install_many([Rule(rule.match, action, rule.priority)])
            sub_planes[dev] = clone
        egress_plane = DevicePlane(egress_name, self.ctx)
        egress_plane.install_many([Rule(self.ctx.universe, Action.deliver(), 0)])
        sub_planes[egress_name] = egress_plane

        planner = Planner(extended, self.ctx)
        for entry in entries:
            # Bound the intra-partition search: unbounded simple-path
            # enumeration is exponential on dense partitions.
            invariant = Invariant(
                space, (entry,),
                Atom(
                    PathExpr.parse(
                        f"{entry} .* {egress_name}",
                        (LengthFilter("<=", "shortest", 2),),
                        simple_only=True,
                    ),
                    MatchKind.EXIST, CountExp(">=", 1),
                ),
                name=f"{part}_{entry}_to_{toward}",
            )
            if not planner.verify(invariant, sub_planes).holds:
                return False
        return True

    def abstract_planes(
        self,
        planes: Mapping[str, DevicePlane],
        space: Predicate,
        ingress: str,
        destination: str,
    ) -> Dict[str, DevicePlane]:
        """The abstract data plane for one reachability question.

        Partition P forwards ``space`` to neighbor partition Q iff the
        intra-partition verification shows the space crossing P toward Q
        from P's relevant entry points (the ingress device for the source
        partition, the borders otherwise).  The destination partition
        delivers iff the space reaches the destination device inside it.
        """
        source_part = self.assignment[ingress]
        dest_part = self.assignment[destination]
        abstract_planes: Dict[str, DevicePlane] = {}
        for part in self.partitions:
            plane = DevicePlane(part, self.ctx)
            group: List[str] = []
            for neighbor_part in self._abstract.neighbors(part):
                if part == source_part:
                    entries = [ingress]
                else:
                    entries = self._entry_borders(part)
                if not entries:
                    continue
                if self._crosses(part, planes, space, entries, neighbor_part):
                    group.append(neighbor_part)
            delivers = False
            if part == dest_part:
                entries = (
                    [ingress] if part == source_part else self._entry_borders(part)
                )
                delivers = self._reaches_inside(
                    part, planes, space, entries, destination
                )
            if delivers:
                group.append("@ext")
            if group:
                plane.install_many(
                    [Rule(space, Action.forward_all(group), 1)]
                )
            abstract_planes[part] = plane
        return abstract_planes

    def _entry_borders(self, part: str) -> List[str]:
        """All devices of ``part`` with a link out of the partition."""
        entries: List[str] = []
        for dev in self.partitions[part]:
            for neighbor in self.topology.neighbors(dev):
                if self.assignment[neighbor] != part:
                    entries.append(dev)
                    break
        return entries

    def _reaches_inside(
        self,
        part: str,
        planes: Mapping[str, DevicePlane],
        space: Predicate,
        entries: Sequence[str],
        destination: str,
    ) -> bool:
        sub = self._sub_topology(part)
        members = set(self.partitions[part])
        sub_planes: Dict[str, DevicePlane] = {}
        for dev in members:
            plane = planes.get(dev)
            clone = DevicePlane(dev, self.ctx)
            if plane is not None:
                for rule in plane.rules:
                    group = tuple(
                        hop for hop in rule.action.group
                        if hop in members or hop == "@ext"
                    )
                    action = (
                        Action(group, rule.action.group_type, rule.action.transform)
                        if group else Action.drop()
                    )
                    clone.install_many([Rule(rule.match, action, rule.priority)])
            sub_planes[dev] = clone
        planner = Planner(sub, self.ctx)
        for entry in entries:
            if entry == destination:
                continue
            invariant = Invariant(
                space, (entry,),
                Atom(
                    PathExpr.parse(
                        f"{entry} .* {destination}",
                        (LengthFilter("<=", "shortest", 2),),
                        simple_only=True,
                    ),
                    MatchKind.EXIST, CountExp(">=", 1),
                ),
                name=f"{part}_{entry}_to_{destination}",
            )
            if not planner.verify(invariant, sub_planes).holds:
                return False
        return True


def verify_partitioned(
    topology: Topology,
    ctx: PacketSpaceContext,
    planes: Mapping[str, DevicePlane],
    space: Predicate,
    ingress: str,
    destination: str,
    num_partitions: int = 2,
    assignment: Optional[Mapping[str, str]] = None,
) -> VerificationResult:
    """Divide-and-conquer reachability: intra-partition nested verification
    plus inter-partition verification on the one-big-switch abstraction."""
    if assignment is None:
        assignment = partition_by_bfs(topology, num_partitions)
    abstraction = BigSwitchAbstraction(topology, ctx, assignment)
    abstract_planes = abstraction.abstract_planes(
        planes, space, ingress, destination
    )
    source_part = assignment[ingress]
    dest_part = assignment[destination]
    planner = Planner(abstraction.abstract_topology, ctx)
    if source_part == dest_part:
        holds = abstraction._reaches_inside(  # noqa: SLF001
            source_part, planes, space, [ingress], destination
        )
        violations = [] if holds else [
            Violation(ingress, space, message="intra-partition reachability failed")
        ]
        return VerificationResult(
            invariant_name=f"partitioned_{ingress}_{destination}",
            holds=holds,
            violations=violations,
        )
    invariant = Invariant(
        space, (source_part,),
        Atom(
            PathExpr.parse(f"{source_part} .* {dest_part}", simple_only=True),
            MatchKind.EXIST, CountExp(">=", 1),
        ),
        name=f"partitioned_{ingress}_{destination}",
    )
    return planner.verify(invariant, abstract_planes)
