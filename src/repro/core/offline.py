"""Algorithm 1: reverse-topological counting on a DPVNet (§4.2).

This is the *centralized reference implementation* of the counting problem —
the same mathematics the distributed DVM protocol computes incrementally.
The planner uses it for one-shot verification, the test suite uses it as the
oracle the protocol must converge to, and the simulator's devices reuse its
per-node kernel.

Packet transformations are handled by carrying the (possibly rewritten)
packet space down the recursion and mapping child partitions back through
the transform's pre-image.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.bdd.predicate import Predicate
from repro.core.counting import (
    CountSet,
    canonical,
    cross_sum,
    singleton,
    union,
    zero_vec,
)
from repro.core.dpvnet import DpvNet
from repro.core.invariant import Atom, EndKind
from repro.dataplane.action import EXTERNAL, Action, GroupType
from repro.dataplane.device import DevicePlane

__all__ = ["count_node", "count_sources", "node_base_vector", "merge_pieces"]

Pieces = List[Tuple[Predicate, CountSet]]


def merge_pieces(pieces: Pieces) -> Pieces:
    """Union regions with identical count sets (the paper presents S1's
    final mapping as [(P2∪P4, 1), (P3, [0, 1])], i.e. merged)."""
    merged: List[Tuple[Predicate, CountSet]] = []
    index = {}
    for pred, cs in pieces:
        i = index.get(cs)
        if i is None:
            index[cs] = len(merged)
            merged.append((pred, cs))
        else:
            merged[i] = (merged[i][0] | pred, cs)
    return merged


def node_base_vector(
    accept: Tuple[bool, ...], atoms: Sequence[Atom], end: EndKind
) -> Tuple[int, ...]:
    """Count-vector contribution of a trace ending at a node with the given
    acceptance flags, by the given end kind (delivery vs drop)."""
    return tuple(
        1 if flag and atom.end_kind is end else 0
        for flag, atom in zip(accept, atoms)
    )


def count_node(
    net: DpvNet,
    planes: Mapping[str, DevicePlane],
    atoms: Sequence[Atom],
    node_id: int,
    pred: Predicate,
    memo: Optional[Dict[Tuple[int, int], Pieces]] = None,
    live_children: Optional[Mapping[int, Sequence[int]]] = None,
) -> Pieces:
    """Count set of ``pred`` at DPVNet node ``node_id``.

    Returns a disjoint partition of ``pred`` with the per-piece count set:
    how many copies (per atom) reach an accepted trace end from this node, in
    each universe.

    ``live_children`` optionally restricts each node's outgoing edges (the
    fault-scene recount, §6); default is all edges.
    """
    if memo is None:
        memo = {}
    arity = net.arity
    ctx = pred.ctx
    key = (node_id, pred.node)
    cached = memo.get(key)
    if cached is not None:
        return cached

    node = net.node(node_id)
    children_ids = (
        live_children[node_id] if live_children is not None else node.children
    )
    child_of_dev = {net.node(cid).dev: cid for cid in children_ids}
    plane = planes.get(node.dev)
    pieces: Pieces = []
    if plane is None:
        pieces = [(pred, singleton(zero_vec(arity)))]
        memo[key] = pieces
        return pieces

    for piece, action in plane.fwd(pred):
        pieces.extend(
            _count_action(
                net, planes, atoms, node_id, piece, action, child_of_dev, memo,
                live_children,
            )
        )
    memo[key] = pieces
    return pieces


def _count_action(
    net: DpvNet,
    planes: Mapping[str, DevicePlane],
    atoms: Sequence[Atom],
    node_id: int,
    piece: Predicate,
    action: Action,
    child_of_dev: Mapping[str, int],
    memo: Dict[Tuple[int, int], Pieces],
    live_children: Optional[Mapping[int, Sequence[int]]],
) -> Pieces:
    arity = net.arity
    node = net.node(node_id)
    ctx = piece.ctx

    if action.is_drop:
        base = node_base_vector(node.accept, atoms, EndKind.DROPPED)
        return [(piece, singleton(base))]

    transform = action.transform
    deliver_vec = node_base_vector(node.accept, atoms, EndKind.DELIVERED)

    def child_pieces(member: str, region: Predicate) -> Pieces:
        """Count set partition contributed by forwarding ``region`` to one
        group member, mapped back into this node's packet frame."""
        if member == EXTERNAL:
            return [(region, singleton(deliver_vec))]
        child_id = child_of_dev.get(member)
        if child_id is None:
            # Copy leaves the DPVNet: it can never complete a valid path.
            return [(region, singleton(zero_vec(arity)))]
        downstream_region = transform.apply(region) if transform else region
        parts = count_node(
            net, planes, atoms, child_id, downstream_region, memo, live_children
        )
        if transform is None:
            return parts
        mapped: Pieces = []
        for sub, cs in parts:
            back = transform.preimage(sub) & region
            if not back.is_empty:
                mapped.append((back, cs))
        return mapped

    if action.group_type is GroupType.ANY:
        # ⊕ across members, refined so every sub-region gets the union of
        # its members' possible fates (Equation (2)).
        parts: Pieces = [(piece, ())]
        for member in action.group:
            refined: Pieces = []
            for region, cs in parts:
                for sub, cs_member in child_pieces(member, region):
                    refined.append((sub, union(cs, cs_member)))
            parts = refined
        return parts

    # ALL-type (Equation (1)): ⊗ across members; delivery via EXTERNAL is one
    # more factor, contributing the acceptance vector to every universe.
    parts = [(piece, singleton(zero_vec(arity)))]
    for member in action.group:
        refined = []
        for region, cs in parts:
            for sub, cs_member in child_pieces(member, region):
                refined.append((sub, cross_sum(cs, cs_member)))
        parts = refined
    return parts


def count_sources(
    net: DpvNet,
    planes: Mapping[str, DevicePlane],
    atoms: Sequence[Atom],
    packet_space: Predicate,
    live_children: Optional[Mapping[int, Sequence[int]]] = None,
) -> Dict[str, Pieces]:
    """Final counting results per ingress (the mappings at S1 in Fig. 2c).

    Ingresses with no valid path (source pruned away) map the whole packet
    space to the all-zero count.
    """
    results: Dict[str, Pieces] = {}
    memo: Dict[Tuple[int, int], Pieces] = {}
    for ingress, source in net.sources.items():
        if source is None:
            results[ingress] = [
                (packet_space, singleton(zero_vec(net.arity)))
            ]
            continue
        results[ingress] = merge_pieces(
            count_node(net, planes, atoms, source, packet_space, memo, live_children)
        )
    return results
