"""Compiled per-invariant check kernels.

The generic verdict path walks the behavior tree once per count vector,
re-deriving each atom's component index by a linear scan — per piece, per
recompute.  The same trick the BDD engine uses for its apply kernels
applies here: compile the (immutable) behavior tree once per verifier into
a specialized closure chain with the component indexes and comparison ops
pre-bound, and memoize the verdict of whole count *sets* so steady-state
recomputations (same counts, shifted regions) skip evaluation entirely.

Used by both predicate-index modes — the kernel is representation-
independent, so verdicts stay byte-identical to the tree walk.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence, Tuple

from repro.core.counting import CountSet, CountVec
from repro.core.invariant import And, Atom, Behavior, Not, Or, component_index
from repro.errors import SpecificationError

__all__ = ["BehaviorKernel", "compile_behavior"]


def compile_behavior(
    behavior: Behavior, atoms: Sequence[Atom]
) -> Callable[[CountVec], bool]:
    """Compile a behavior tree into a single ``vec -> bool`` closure.

    Component indexes are resolved at compile time (the per-call linear
    scan of :func:`~repro.core.invariant.component_index` disappears) and
    each count comparison specializes to its operator, mirroring
    :func:`~repro.core.invariant.evaluate_behavior` exactly.
    """
    if isinstance(behavior, Atom):
        if behavior.count_exp is None:
            raise SpecificationError(f"atom {behavior} has no count expression")
        i = component_index(atoms, behavior)
        op = behavior.count_exp.op
        bound = behavior.count_exp.bound
        if op == "==":
            return lambda vec: vec[i] == bound
        if op == ">=":
            return lambda vec: vec[i] >= bound
        if op == ">":
            return lambda vec: vec[i] > bound
        if op == "<=":
            return lambda vec: vec[i] <= bound
        return lambda vec: vec[i] < bound
    if isinstance(behavior, Not):
        inner = compile_behavior(behavior.inner, atoms)
        return lambda vec: not inner(vec)
    if isinstance(behavior, And):
        parts = tuple(compile_behavior(p, atoms) for p in behavior.parts)
        if len(parts) == 2:
            a, b = parts
            return lambda vec: a(vec) and b(vec)
        return lambda vec: all(p(vec) for p in parts)
    if isinstance(behavior, Or):
        parts = tuple(compile_behavior(p, atoms) for p in behavior.parts)
        if len(parts) == 2:
            a, b = parts
            return lambda vec: a(vec) or b(vec)
        return lambda vec: any(p(vec) for p in parts)
    raise SpecificationError(f"unknown behavior node {behavior!r}")


class BehaviorKernel:
    """One invariant's compiled check plus a count-set verdict memo.

    ``bad_of`` returns the violating vectors of a count set in the set's
    own (canonical) order — byte-identical to filtering with
    :func:`~repro.core.invariant.evaluate_behavior` — and memoizes by the
    count set itself (canonical tuples hash cheaply and the distinct sets a
    device ever sees is small), so unchanged counts are never re-evaluated
    on incremental updates.
    """

    __slots__ = ("holds", "_bad_memo")

    def __init__(self, behavior: Behavior, atoms: Sequence[Atom]) -> None:
        self.holds = compile_behavior(behavior, atoms)
        self._bad_memo: Dict[CountSet, Tuple[CountVec, ...]] = {}

    def bad_of(self, cs: CountSet) -> Tuple[CountVec, ...]:
        bad = self._bad_memo.get(cs)
        if bad is None:
            holds = self.holds
            bad = tuple(vec for vec in cs if not holds(vec))
            self._bad_memo[cs] = bad
        return bad
