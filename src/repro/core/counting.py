"""Count-set algebra (§4.2, Equations (1) and (2)).

A *count vector* has one component per ``(match_op, path_exp)`` atom of the
invariant (one component for simple invariants; §4.3 compound invariants use
several).  A *count set* is the deduplicated set of count vectors the network
can realize across universes: ANY-type actions make it grow (⊕, set union),
ALL-type actions combine copies (⊗, cross-product sum).

The module also implements Proposition 1's *minimal counting information*
reduction, which shrinks what a node must send upstream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Sequence, Tuple

__all__ = [
    "CountVec",
    "CountSet",
    "zero_vec",
    "unit_vec",
    "singleton",
    "cross_sum",
    "union",
    "CountExp",
    "minimal_info",
    "make_reduce_kernel",
]

CountVec = Tuple[int, ...]
# Canonical representation: sorted tuple of distinct vectors.
CountSet = Tuple[CountVec, ...]


def zero_vec(arity: int) -> CountVec:
    return (0,) * arity


def unit_vec(arity: int, component: int) -> CountVec:
    vec = [0] * arity
    vec[component] = 1
    return tuple(vec)


def vec_add(a: CountVec, b: CountVec) -> CountVec:
    return tuple(x + y for x, y in zip(a, b))


def singleton(vec: CountVec) -> CountSet:
    return (vec,)


def canonical(vectors: Iterable[CountVec]) -> CountSet:
    return tuple(sorted(set(vectors)))


def cross_sum(a: CountSet, b: CountSet) -> CountSet:
    """⊗: every universe of ``a`` combines with every universe of ``b``.

    Models an ALL-type split: copies travel both ways, the per-universe
    totals add.
    """
    return canonical(vec_add(x, y) for x in a for y in b)


def union(a: CountSet, b: CountSet) -> CountSet:
    """⊕: the universes of ``a`` and ``b`` are alternative fates."""
    return canonical((*a, *b))


def cross_sum_many(sets: Sequence[CountSet], arity: int) -> CountSet:
    result = singleton(zero_vec(arity))
    for cs in sets:
        result = cross_sum(result, cs)
    return result


def union_many(sets: Sequence[CountSet]) -> CountSet:
    merged: List[CountVec] = []
    for cs in sets:
        merged.extend(cs)
    return canonical(merged)


@dataclass(frozen=True)
class CountExp:
    """A count predicate ``op N`` from the language's ``exist`` operator."""

    op: str  # one of '==', '>=', '>', '<=', '<'
    bound: int

    _OPS = {
        "==": lambda count, bound: count == bound,
        ">=": lambda count, bound: count >= bound,
        ">": lambda count, bound: count > bound,
        "<=": lambda count, bound: count <= bound,
        "<": lambda count, bound: count < bound,
    }

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise ValueError(f"unknown count operator {self.op!r}")
        if self.bound < 0:
            raise ValueError("count bound must be non-negative")

    def holds(self, count: int) -> bool:
        return self._OPS[self.op](count, self.bound)

    def __str__(self) -> str:
        return f"exist {self.op} {self.bound}"


def minimal_info(counts: Sequence[int], exp: CountExp) -> Tuple[int, ...]:
    """Proposition 1: the minimal subset of a (scalar) count set a node must
    propagate upstream for the source to verify ``exp`` correctly.

    * ``>= N`` / ``> N``: the minimum (⊗ is monotone, so upstream sums only
      grow; the minimum bounds every universe from below).
    * ``<= N`` / ``< N``: the maximum, symmetrically.
    * ``== N``: the two smallest distinct values — two distinct values prove
      a violation regardless of what gets added upstream, one value is the
      exact count.
    """
    if not counts:
        return ()
    distinct = sorted(set(counts))
    if exp.op in (">=", ">"):
        return (distinct[0],)
    if exp.op in ("<=", "<"):
        return (distinct[-1],)
    return tuple(distinct[: min(len(distinct), 2)])


def reduce_countset(cs: CountSet, exps: Sequence[CountExp | None]) -> CountSet:
    """Apply Proposition 1 componentwise to a vector count set.

    Components whose expression is ``None`` (e.g. the invariant combines
    atoms with negation, where the reduction is unsound) are left intact;
    the reduction keeps, for each component, the vectors whose component
    value survives the scalar reduction.  For arity-1 sets this degenerates
    to Proposition 1 exactly.
    """
    if not cs:
        return cs
    arity = len(cs[0])
    if all(exp is None for exp in exps):
        return cs
    if arity == 1 and exps[0] is not None:
        keep = set(minimal_info([vec[0] for vec in cs], exps[0]))
        return canonical(vec for vec in cs if vec[0] in keep)
    # For multi-atom invariants the joint distribution matters (§4.3), so we
    # only drop a vector when every component is redundant under its own
    # reduction — a conservative, always-sound filter.
    keep_per_component: List[set] = []
    for i, exp in enumerate(exps):
        values = [vec[i] for vec in cs]
        if exp is None:
            keep_per_component.append(set(values))
        else:
            keep_per_component.append(set(minimal_info(values, exp)))
    return canonical(
        vec
        for vec in cs
        if any(vec[i] in keep_per_component[i] for i in range(arity))
    )


def make_reduce_kernel(exps: Sequence[CountExp | None]):
    """A memoized Proposition-1 reducer specialized to one invariant.

    ``reduce_countset`` is deterministic in ``(cs, exps)`` and ``exps`` is
    fixed per device task, so the fused verifier path binds it once and
    memoizes by count set — announcement-side reductions of unchanged
    counts become dict hits.  All-``None`` expressions compile to the
    identity (no memo, no call overhead).
    """
    exps = tuple(exps)
    if all(exp is None for exp in exps):
        return lambda cs: cs
    memo: dict = {}

    def reduce_(cs: CountSet) -> CountSet:
        out = memo.get(cs)
        if out is None:
            out = memo[cs] = reduce_countset(cs, exps)
        return out

    return reduce_
