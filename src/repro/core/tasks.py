"""On-device counting task descriptors (§2.2.2, "Counting decomposition and
distribution").

The planner compiles a DPVNet into one :class:`DeviceTask` per device: the
DPVNet nodes hosted on that device, each node's upstream/downstream neighbor
lists (with the devices those neighbors live on — that is where DVM messages
go), the invariant atoms and the packet space.  This is exactly the payload
the paper's planner ships to on-device verifiers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.bdd.predicate import Predicate
from repro.core.counting import CountExp
from repro.core.invariant import Atom, Behavior

__all__ = ["NodeTask", "DeviceTask", "TaskSet"]


@dataclass(frozen=True)
class NeighborRef:
    """A DPVNet neighbor: node id + hosting device."""

    node_id: int
    dev: str


@dataclass
class NodeTask:
    """Counting task for one DPVNet node.

    ``edge_scenes`` optionally labels each downstream edge with the fault
    scenes in which it is part of a valid path (§6); ``None`` = all scenes.
    """

    node_id: int
    label: str
    dev: str
    accept: Tuple[bool, ...]
    downstream: List[NeighborRef] = field(default_factory=list)
    upstream: List[NeighborRef] = field(default_factory=list)
    is_source_for: Optional[str] = None  # ingress name if this is its source
    edge_scenes: Dict[int, FrozenSet[int]] = field(default_factory=dict)
    # Per-atom scene-restricted acceptance: atom index -> scene ids in which
    # a trace ending here matches.  Atoms absent from the dict accept in all
    # scenes (plain, non-fault-tolerant DPVNets).
    accept_scenes: Dict[int, FrozenSet[int]] = field(default_factory=dict)
    # scene id -> effective acceptance vector; the verifier asks on every
    # counted piece and the inputs are immutable after planning.
    _accept_memo: Dict[int, Tuple[bool, ...]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def accept_in_scene(self, scene: Optional[int]) -> Tuple[bool, ...]:
        """Effective acceptance vector for the given fault scene (scene
        ``None`` means the base no-failure scene 0)."""
        if not self.accept_scenes:
            return self.accept
        sid = 0 if scene is None else scene
        vec = self._accept_memo.get(sid)
        if vec is None:
            vec = self._accept_memo[sid] = tuple(
                flag
                and (i not in self.accept_scenes or sid in self.accept_scenes[i])
                for i, flag in enumerate(self.accept)
            )
        return vec

    def downstream_devices(self) -> List[str]:
        return [ref.dev for ref in self.downstream]


@dataclass
class DeviceTask:
    """Everything one device needs to run its share of the verification."""

    dev: str
    invariant_name: str
    packet_space: Predicate
    atoms: Tuple[Atom, ...]
    behavior: Behavior
    nodes: List[NodeTask] = field(default_factory=list)
    # Proposition 1 reduction parameters, one per atom (None = send full).
    reduction_exps: Tuple[Optional[CountExp], ...] = ()

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def rebind(self, packet_space: Predicate) -> "DeviceTask":
        """A copy of this task whose packet space lives in another context.

        Everything except the packet-space predicate is context-free (node
        ids, atoms, behavior trees, count expressions), so shipping a task
        to a worker process is: pickle the task with the predicate stripped,
        move the predicate as BDD bytes, then ``rebind`` on arrival.
        """
        return DeviceTask(
            dev=self.dev,
            invariant_name=self.invariant_name,
            packet_space=packet_space,
            atoms=self.atoms,
            behavior=self.behavior,
            nodes=self.nodes,
            reduction_exps=self.reduction_exps,
        )


@dataclass
class TaskSet:
    """The full decomposition of one invariant."""

    invariant_name: str
    tasks: Dict[str, DeviceTask]
    # (node_id -> hosting device), for message routing in the simulator.
    node_home: Dict[int, str]
    source_nodes: Dict[str, Optional[int]]  # ingress -> source node id
    arity: int

    def devices(self) -> List[str]:
        return sorted(self.tasks)

    def total_nodes(self) -> int:
        return sum(task.num_nodes for task in self.tasks.values())
