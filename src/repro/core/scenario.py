"""Scenario families and the fault-event independence relation.

The scenario explorer (:mod:`repro.explore`) model-checks *families* of
fault scenarios instead of replaying one hand-picked schedule.  A family is
a set of :class:`FaultElement`\\ s — a link that may fail (and recover), a
device that may crash (and restart), a device that undergoes a maintenance
drain or a full rolling upgrade — plus a cap on how many elements may be
active in one scenario.  Each element contributes a totally ordered *chain*
of :class:`ScenarioStep`\\ s (``link_down`` before ``link_up``, ``crash``
before ``restart``, …); one concrete scenario is an interleaving of the
chains of some subset of elements, exactly the per-channel-FIFO /
cross-channel-arbitrary delivery model of §5.

Partial-order reduction rests on an *independence relation* between steps:
two steps commute when the (device, invariant) verification flows they
touch are disjoint — the protocol-orderings commutativity results (DVM
batch deliveries on disjoint flows reach the same fixpoint in any order)
then prove the interleavings equivalent, so the explorer only needs one
representative per equivalence class.  :class:`IndependenceRelation`
computes the flow footprints from the topology and the planner's task sets;
``tests/test_explore_differential.py`` is the correctness backstop that
exhaustive and pruned exploration reach identical verdict-outcome sets.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "FaultElement",
    "IndependenceRelation",
    "ScenarioFamily",
    "ScenarioStep",
    "STEP_OPS",
    "interleavings",
]

# The scenario-step vocabulary; replayable via ``repro.sim.scenario``.
STEP_OPS = (
    "link_down",
    "link_up",
    "crash",
    "restart",
    "drain",
    "restore",
)


@dataclass(frozen=True, order=True)
class ScenarioStep:
    """One atomic fault action, applied at a quiescence point."""

    op: str
    args: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.op not in STEP_OPS:
            raise ValueError(f"unknown scenario op {self.op!r}")

    @property
    def element_key(self) -> Tuple[str, Tuple[str, ...]]:
        """The fault element this step belongs to: paired steps (a link's
        down/up, a device's crash/restart, a drain's drain/restore) share a
        key and therefore never commute with each other."""
        if self.op in ("link_down", "link_up"):
            return ("link", self.args)
        if self.op in ("crash", "restart"):
            return ("device", self.args)
        return ("drain", self.args)

    def to_json(self) -> List:
        return [self.op, list(self.args)]

    @classmethod
    def from_json(cls, data: Sequence) -> "ScenarioStep":
        op, args = data
        return cls(str(op), tuple(str(a) for a in args))

    def describe(self) -> str:
        return f"{self.op}({','.join(self.args)})"


@dataclass(frozen=True)
class FaultElement:
    """One independent source of faults in a family.

    ``kind``:

    * ``"link"`` — the link ``target=(a, b)`` fails; with ``recover`` it
      comes back up later in the scenario.
    * ``"device"`` — the device ``target=(dev,)`` crashes (verifier RAM
      lost); with ``recover`` it restarts and resyncs.
    * ``"drain"`` — maintenance drain: the device's FIB is withdrawn rule
      by rule; with ``recover`` the rules are reinstalled.
    * ``"upgrade"`` — a full rolling-upgrade window: drain → crash →
      restart → restore (``recover`` is implied; the chain is the window).
    """

    kind: str
    target: Tuple[str, ...]
    recover: bool = True

    def __post_init__(self) -> None:
        if self.kind not in ("link", "device", "drain", "upgrade"):
            raise ValueError(f"unknown fault-element kind {self.kind!r}")
        want = 2 if self.kind == "link" else 1
        if len(self.target) != want:
            raise ValueError(
                f"{self.kind} element takes {want} target(s), "
                f"got {self.target!r}"
            )

    def steps(self) -> Tuple[ScenarioStep, ...]:
        """The element's totally ordered event chain."""
        if self.kind == "link":
            chain = [ScenarioStep("link_down", self.target)]
            if self.recover:
                chain.append(ScenarioStep("link_up", self.target))
        elif self.kind == "device":
            chain = [ScenarioStep("crash", self.target)]
            if self.recover:
                chain.append(ScenarioStep("restart", self.target))
        elif self.kind == "drain":
            chain = [ScenarioStep("drain", self.target)]
            if self.recover:
                chain.append(ScenarioStep("restore", self.target))
        else:  # upgrade: the full maintenance window
            chain = [
                ScenarioStep("drain", self.target),
                ScenarioStep("crash", self.target),
                ScenarioStep("restart", self.target),
                ScenarioStep("restore", self.target),
            ]
        return tuple(chain)

    def to_json(self) -> Dict:
        return {
            "kind": self.kind,
            "target": list(self.target),
            "recover": self.recover,
        }

    def describe(self) -> str:
        suffix = "" if self.recover or self.kind == "upgrade" else "!"
        return f"{self.kind}:{'-'.join(self.target)}{suffix}"


class IndependenceRelation:
    """Commutativity of scenario steps, at (device, invariant) granularity.

    A step's *footprint* is the set of verification flows it can disturb:
    the devices whose handlers run synchronously when the step is applied
    (link endpoints; a crashed/drained device plus, for crash/restart, its
    reacting neighbors) crossed with the invariants that station a verifier
    task on any of those devices.  Two steps of different elements are
    independent iff their footprints are disjoint — everything downstream
    of the local handlers travels as DVM batches, whose delivery order the
    commutativity results prove irrelevant on disjoint flows.
    """

    def __init__(self, topology, task_sets: Sequence) -> None:
        self._topology = topology
        # invariant name -> devices hosting one of its verifier tasks.
        self._inv_devices: Dict[str, FrozenSet[str]] = {
            ts.invariant_name: frozenset(ts.tasks.keys()) for ts in task_sets
        }
        self._footprints: Dict[ScenarioStep, FrozenSet[Tuple[str, str]]] = {}

    def touched_devices(self, step: ScenarioStep) -> FrozenSet[str]:
        """Devices whose local handlers the step triggers."""
        if step.op in ("link_down", "link_up"):
            return frozenset(step.args)
        dev = step.args[0]
        if step.op in ("crash", "restart"):
            # Neighbors observe the adjacency change and resync.
            return frozenset((dev, *self._topology.neighbors(dev)))
        return frozenset((dev,))  # drain/restore: a local FIB rewrite

    def footprint(self, step: ScenarioStep) -> FrozenSet[Tuple[str, str]]:
        """The (device, invariant) flows the step touches."""
        cached = self._footprints.get(step)
        if cached is None:
            devices = self.touched_devices(step)
            cached = frozenset(
                (dev, inv)
                for dev in devices
                for inv, homes in self._inv_devices.items()
                if dev in homes
            )
            self._footprints[step] = cached
        return cached

    def independent(self, a: ScenarioStep, b: ScenarioStep) -> bool:
        if a.element_key == b.element_key:
            return False  # chain order is semantic (down before up, …)
        return not (self.footprint(a) & self.footprint(b))


@dataclass(frozen=True)
class ScenarioFamily:
    """A whole space of fault scenarios to model-check.

    Scenarios are drawn by (1) choosing a subset of at most ``max_faults``
    elements (the empty subset — the fault-free baseline — is always
    included) and (2) interleaving the chains of the chosen elements in
    every cross-chain order (per-chain order fixed).
    """

    elements: Tuple[FaultElement, ...]
    max_faults: int = 2

    def __post_init__(self) -> None:
        if self.max_faults < 1:
            raise ValueError("max_faults must be >= 1")
        if len(set(self.elements)) != len(self.elements):
            raise ValueError("duplicate fault elements in family")

    def subsets(self) -> Iterator[Tuple[FaultElement, ...]]:
        """All element subsets up to ``max_faults``, smallest first; the
        element order inside a subset fixes the POR canonical order."""
        limit = min(self.max_faults, len(self.elements))
        for size in range(0, limit + 1):
            yield from itertools.combinations(self.elements, size)

    def exhaustive_scenarios(self) -> int:
        """|family| without any pruning: Σ_subsets multinomial(chains)."""
        total = 0
        for subset in self.subsets():
            lengths = [len(element.steps()) for element in subset]
            count = math.factorial(sum(lengths))
            for n in lengths:
                count //= math.factorial(n)
            total += count
        return total

    def to_json(self) -> Dict:
        return {
            "elements": [element.to_json() for element in self.elements],
            "max_faults": self.max_faults,
        }

    def describe(self) -> str:
        parts = ", ".join(element.describe() for element in self.elements)
        return f"{{{parts}}} ≤{self.max_faults} concurrent"


def interleavings(
    chains: Sequence[Sequence[ScenarioStep]],
    relation: Optional[IndependenceRelation] = None,
) -> Iterator[Tuple[ScenarioStep, ...]]:
    """All interleavings of the chains; with ``relation``, only canonical
    representatives (partial-order reduction).

    The canonical form: a sequence is emitted only if no adjacent pair
    (f, e) has f and e independent with e's chain index below f's — any
    such pair could be swapped without changing the outcome, so exactly
    the swap-sorted representative of each Mazurkiewicz trace class (its
    lexicographically least member always qualifies) survives.  Without a
    relation this degenerates to plain exhaustive enumeration.
    """

    def extend(
        positions: List[int], prefix: List[ScenarioStep], last_chain: int
    ) -> Iterator[Tuple[ScenarioStep, ...]]:
        if all(pos == len(chain) for pos, chain in zip(positions, chains)):
            yield tuple(prefix)
            return
        for index, chain in enumerate(chains):
            pos = positions[index]
            if pos >= len(chain):
                continue
            step = chain[pos]
            if (
                relation is not None
                and prefix
                and index < last_chain
                and relation.independent(prefix[-1], step)
            ):
                # Non-canonical: the previous step commutes with this one
                # and comes from a later chain — the swapped ordering is
                # (or leads to) an equivalent, already-explored scenario.
                continue
            positions[index] = pos + 1
            prefix.append(step)
            yield from extend(positions, prefix, index)
            prefix.pop()
            positions[index] = pos

    yield from extend([0] * len(chains), [], -1)
