"""The declarative invariant specification language (§3, Figure 3).

A concrete textual syntax for the paper's abstract grammar.  Example::

    invariant waypoint {
        packet_space: dst_ip = 10.0.0.0/23;
        ingress: S;
        behavior: exist >= 1 on (S .* W .* D) with loop_free;
        fault_scenes: any 2;
    }

    invariant no_port80_to_E {
        packet_space: dst_ip = 10.0.1.0/24 and dst_port = 80;
        ingress: S;
        behavior: exist == 0 on (S .* E);
    }

Grammar sketch::

    file          := invariant*
    invariant     := "invariant" NAME "{" field* "}"
    field         := "packet_space" ":" space_expr ";"
                   | "ingress" ":" NAME ("," NAME)* ";"
                   | "behavior" ":" behavior ";"
                   | "fault_scenes" ":" scenes ";"
    space_expr    := space_or
    space_or      := space_and ("or" space_and)*
    space_and     := space_atom ("and" space_atom)*
    space_atom    := "not" space_atom | "(" space_expr ")"
                   | FIELD "=" value | FIELD "!=" value
                   | FIELD "in" INT ".." INT | "any"
    value         := CIDR | IPv4 | INT
    behavior      := b_or
    b_or          := b_and ("or" b_and)*
    b_and         := b_unary ("and" b_unary)*
    b_unary       := "not" b_unary | "(" behavior ")" | atom
    atom          := ("exist" CMP INT | "equal") "on" "(" REGEX ")"
                     ("with" modifier ("," modifier)*)?
    modifier      := "loop_free" | "dropped" | CMP length
    length        := INT | "shortest" ("+" INT)?
    scenes        := "any" INT | scene ("," scene)*
    scene         := "{" pair* "}"        pair := "(" NAME "," NAME ")"
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence, Tuple

from repro.automata.regex import parse_regex
from repro.bdd.fields import ip_to_int
from repro.bdd.predicate import PacketSpaceContext, Predicate
from repro.core.counting import CountExp
from repro.core.invariant import (
    And,
    Atom,
    Behavior,
    EndKind,
    FaultSpec,
    Invariant,
    LengthFilter,
    MatchKind,
    Not,
    Or,
    PathExpr,
)
from repro.errors import SpecificationError

__all__ = ["parse_invariants", "parse_packet_space"]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|\#[^\n]*)
  | (?P<cidr>\d+\.\d+\.\d+\.\d+/\d+)
  | (?P<ip>\d+\.\d+\.\d+\.\d+)
  | (?P<int>\d+)
  | (?P<name>[A-Za-z_][A-Za-z0-9_\-]*)
  | (?P<op><=|>=|==|!=|=|<|>|\.\.|\+)
  | (?P<punct>[{}();:,.*|\[\]^?])
    """,
    re.VERBOSE,
)

Token = Tuple[str, str]


def _tokenize(text: str) -> List[Token]:
    tokens: List[Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise SpecificationError(
                f"unexpected character {text[pos]!r} at offset {pos}"
            )
        pos = match.end()
        kind = match.lastgroup or ""
        if kind == "ws":
            continue
        tokens.append((kind, match.group()))
    return tokens


class _Parser:
    def __init__(self, tokens: List[Token], ctx: PacketSpaceContext) -> None:
        self.tokens = tokens
        self.pos = 0
        self.ctx = ctx

    # ------------------------------------------------------------------
    def peek(self) -> Optional[Token]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self, expect_text: Optional[str] = None) -> Token:
        token = self.peek()
        if token is None:
            raise SpecificationError("unexpected end of specification")
        if expect_text is not None and token[1] != expect_text:
            raise SpecificationError(
                f"expected {expect_text!r}, found {token[1]!r}"
            )
        self.pos += 1
        return token

    def at(self, text: str) -> bool:
        token = self.peek()
        return token is not None and token[1] == text

    # ------------------------------------------------------------------
    def parse_file(self) -> List[Invariant]:
        invariants: List[Invariant] = []
        while self.peek() is not None:
            invariants.append(self.parse_invariant())
        return invariants

    def parse_invariant(self) -> Invariant:
        self.take("invariant")
        name = self.take()[1]
        self.take("{")
        space: Optional[Predicate] = None
        ingress: Tuple[str, ...] = ()
        behavior: Optional[Behavior] = None
        fault_spec: Optional[FaultSpec] = None
        while not self.at("}"):
            field = self.take()[1]
            self.take(":")
            if field == "packet_space":
                space = self.parse_space_or()
            elif field == "ingress":
                names = [self.take()[1]]
                while self.at(","):
                    self.take(",")
                    names.append(self.take()[1])
                ingress = tuple(names)
            elif field == "behavior":
                behavior = self.parse_behavior_or()
            elif field == "fault_scenes":
                fault_spec = self.parse_scenes()
            else:
                raise SpecificationError(f"unknown invariant field {field!r}")
            self.take(";")
        self.take("}")
        if space is None:
            raise SpecificationError(f"invariant {name!r} missing packet_space")
        if not ingress:
            raise SpecificationError(f"invariant {name!r} missing ingress")
        if behavior is None:
            raise SpecificationError(f"invariant {name!r} missing behavior")
        return Invariant(space, ingress, behavior, fault_spec, name=name)

    # ------------------------------------------------------------------
    # Packet space expressions
    # ------------------------------------------------------------------
    def parse_space_or(self) -> Predicate:
        left = self.parse_space_and()
        while self.at("or"):
            self.take("or")
            left = left | self.parse_space_and()
        return left

    def parse_space_and(self) -> Predicate:
        left = self.parse_space_atom()
        while self.at("and"):
            self.take("and")
            left = left & self.parse_space_atom()
        return left

    def parse_space_atom(self) -> Predicate:
        if self.at("not"):
            self.take("not")
            return ~self.parse_space_atom()
        if self.at("("):
            self.take("(")
            inner = self.parse_space_or()
            self.take(")")
            return inner
        if self.at("any"):
            self.take("any")
            return self.ctx.universe
        kind, field_name = self.take()
        if kind != "name":
            raise SpecificationError(f"expected header field, found {field_name!r}")
        op_kind, op = self.take()
        if op == "in":
            lo = int(self.take()[1])
            self.take("..")
            hi = int(self.take()[1])
            return self.ctx.range_(field_name, lo, hi)
        if op not in ("=", "!="):
            raise SpecificationError(f"unexpected operator {op!r} in packet space")
        value_kind, value_text = self.take()
        if value_kind == "cidr":
            base, _, length = value_text.partition("/")
            pred = self.ctx.prefix(field_name, base, int(length))
        elif value_kind == "ip":
            pred = self.ctx.value(field_name, ip_to_int(value_text))
        elif value_kind == "int":
            pred = self.ctx.value(field_name, int(value_text))
        else:
            raise SpecificationError(f"bad value {value_text!r} in packet space")
        return ~pred if op == "!=" else pred

    # ------------------------------------------------------------------
    # Behaviors
    # ------------------------------------------------------------------
    def parse_behavior_or(self) -> Behavior:
        parts = [self.parse_behavior_and()]
        while self.at("or"):
            self.take("or")
            parts.append(self.parse_behavior_and())
        return Or(tuple(parts)) if len(parts) > 1 else parts[0]

    def parse_behavior_and(self) -> Behavior:
        parts = [self.parse_behavior_unary()]
        while self.at("and"):
            self.take("and")
            parts.append(self.parse_behavior_unary())
        return And(tuple(parts)) if len(parts) > 1 else parts[0]

    def parse_behavior_unary(self) -> Behavior:
        if self.at("not"):
            self.take("not")
            return Not(self.parse_behavior_unary())
        if self.at("("):
            # Lookahead: "(" may open a parenthesized behavior or an atom's
            # regex; an atom always starts with exist/equal, so parens here
            # mean grouping.
            self.take("(")
            inner = self.parse_behavior_or()
            self.take(")")
            return inner
        return self.parse_atom()

    def parse_atom(self) -> Atom:
        kind_token = self.take()
        if kind_token[1] == "exist":
            op = self.take()[1]
            if op not in ("==", ">=", ">", "<=", "<"):
                raise SpecificationError(f"bad count operator {op!r}")
            bound = int(self.take()[1])
            count_exp: Optional[CountExp] = CountExp(op, bound)
            kind = MatchKind.EXIST
        elif kind_token[1] == "equal":
            count_exp = None
            kind = MatchKind.EQUAL
        else:
            raise SpecificationError(
                f"expected 'exist' or 'equal', found {kind_token[1]!r}"
            )
        self.take("on")
        regex_text = self._take_regex()
        filters: List[LengthFilter] = []
        simple = False
        end = EndKind.DELIVERED
        if self.at("with"):
            self.take("with")
            while True:
                simple_, end_, filt = self._parse_modifier()
                simple = simple or simple_
                if end_ is not None:
                    end = end_
                if filt is not None:
                    filters.append(filt)
                if self.at(","):
                    self.take(",")
                    continue
                break
        path = PathExpr(parse_regex(regex_text), tuple(filters), simple)
        return Atom(path, kind, count_exp, end)

    def _take_regex(self) -> str:
        """Consume a parenthesized regex verbatim (tokens back to text)."""
        self.take("(")
        depth = 1
        parts: List[str] = []
        while depth:
            token = self.take()
            if token[1] == "(":
                depth += 1
            elif token[1] == ")":
                depth -= 1
                if depth == 0:
                    break
            parts.append(token[1])
        return " ".join(parts)

    def _parse_modifier(
        self,
    ) -> Tuple[bool, Optional[EndKind], Optional[LengthFilter]]:
        token = self.peek()
        if token is None:
            raise SpecificationError("dangling 'with'")
        if token[1] == "loop_free":
            self.take()
            return True, None, None
        if token[1] == "dropped":
            self.take()
            return False, EndKind.DROPPED, None
        if token[1] == "delivered":
            self.take()
            return False, EndKind.DELIVERED, None
        op = self.take()[1]
        if op not in ("<=", "<", "==", ">=", ">"):
            raise SpecificationError(f"unknown behavior modifier {op!r}")
        base_token = self.take()
        if base_token[1] == "shortest":
            offset = 0
            if self.at("+"):
                self.take("+")
                offset = int(self.take()[1])
            return False, None, LengthFilter(op, "shortest", offset)
        return False, None, LengthFilter(op, int(base_token[1]))

    # ------------------------------------------------------------------
    # Fault scenes
    # ------------------------------------------------------------------
    def parse_scenes(self) -> FaultSpec:
        if self.at("any"):
            self.take("any")
            return FaultSpec.up_to(int(self.take()[1]))
        scenes: List[List[Tuple[str, str]]] = []
        while True:
            self.take("{")
            scene: List[Tuple[str, str]] = []
            while self.at("("):
                self.take("(")
                a = self.take()[1]
                self.take(",")
                b = self.take()[1]
                self.take(")")
                scene.append((a, b))
            self.take("}")
            scenes.append(scene)
            if self.at(","):
                self.take(",")
                continue
            break
        return FaultSpec.explicit(scenes)


def parse_invariants(ctx: PacketSpaceContext, text: str) -> List[Invariant]:
    """Parse a specification file into invariants."""
    return _Parser(_tokenize(text), ctx).parse_file()


def parse_packet_space(ctx: PacketSpaceContext, text: str) -> Predicate:
    """Parse just a packet-space expression, e.g.
    ``"dst_ip = 10.0.0.0/23 and dst_port != 80"``."""
    parser = _Parser(_tokenize(text), ctx)
    pred = parser.parse_space_or()
    trailing = parser.peek()
    if trailing is not None:
        raise SpecificationError(
            f"trailing tokens after packet space: {trailing[1]!r}"
        )
    return pred
