"""Tulkun core: invariants, planner, DPVNet, counting, DVM, verifiers."""

from repro.core.analysis import gate_devices, gate_nodes, path_count
from repro.core.atomindex import AtomIndex, AtomSet
from repro.core.counting import CountExp, CountSet, CountVec, cross_sum, union
from repro.core.dpvnet import DpvNet, DpvNode, build_enumeration_dpvnet, build_product_dpvnet
from repro.core.dvm import SubscribeMessage, UpdateMessage
from repro.core.invariant import (
    And,
    Atom,
    Behavior,
    EndKind,
    FaultSpec,
    Invariant,
    LengthFilter,
    MatchKind,
    Not,
    Or,
    PathExpr,
)
from repro.core.multipath import (
    used_paths,
    verify_disjointness,
    verify_route_symmetry,
)
from repro.core.offline import count_node, count_sources
from repro.core.partition import (
    BigSwitchAbstraction,
    partition_by_bfs,
    verify_partitioned,
)
from repro.core.planner import Planner
from repro.core.predmap import PredMap
from repro.core.result import VerificationResult, Violation
from repro.core.tasks import DeviceTask, NodeTask, TaskSet
from repro.core.verifier import OnDeviceVerifier
from repro.core.wire import decode_message, encode_message

__all__ = [
    "And",
    "AtomIndex",
    "AtomSet",
    "BigSwitchAbstraction",
    "Atom",
    "Behavior",
    "CountExp",
    "CountSet",
    "CountVec",
    "DeviceTask",
    "DpvNet",
    "DpvNode",
    "EndKind",
    "FaultSpec",
    "Invariant",
    "LengthFilter",
    "MatchKind",
    "NodeTask",
    "Not",
    "OnDeviceVerifier",
    "Or",
    "PathExpr",
    "Planner",
    "PredMap",
    "SubscribeMessage",
    "TaskSet",
    "UpdateMessage",
    "VerificationResult",
    "Violation",
    "build_enumeration_dpvnet",
    "build_product_dpvnet",
    "count_node",
    "count_sources",
    "cross_sum",
    "decode_message",
    "encode_message",
    "gate_devices",
    "gate_nodes",
    "partition_by_bfs",
    "path_count",
    "union",
    "used_paths",
    "verify_disjointness",
    "verify_partitioned",
    "verify_route_symmetry",
]
