"""Invariant fault tolerance with minimal planner involvement (§6).

The planner precomputes one *fault-tolerant DPVNet* representing the union of
the valid paths of every operator-specified fault scene, labels nodes/edges
with the scenes they belong to, and ships the labeled tasks once.  When a
scene happens, on-device verifiers flood the failure (simulated by the
runner), switch to the scene's labels and recount — the planner is never
contacted unless the scene was not pre-specified or has no valid path.

Implementation of the Proposition 2 algorithm:

* no symbolic length filter → the fault-tolerant DPVNet *is* the base DPVNet
  (valid paths only shrink when links fail); verifiers just zero counts over
  failed links.
* symbolic filters (``== shortest`` …) → scenes are traversed in ascending
  order of failure count; a scene whose failed links are untouched by the
  previously computed paths, or whose symbolic-filter values match an
  already-traversed subset scene, reuses that scene's paths (filtered by
  link liveness); otherwise a fresh bounded search runs.  All labeled paths
  are merged into one suffix-shared DAG.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.dpvnet import DpvNet, DpvNode
from repro.core.invariant import FaultSpec, Invariant
from repro.core.planner import Planner
from repro.errors import PlannerError
from repro.topology.graph import Topology, canonical_link

__all__ = ["FaultScene", "FaultPlan", "compute_fault_plan", "enumerate_scenes"]

Link = Tuple[str, str]
LabeledPath = Tuple[str, Tuple[str, ...], Tuple[bool, ...]]  # ingress, path, accept


@dataclass(frozen=True)
class FaultScene:
    """One fault scene: a set of failed links.  Scene 0 is always 'no
    failure'."""

    scene_id: int
    failed_links: FrozenSet[Link]


@dataclass
class FaultPlan:
    """The precomputed fault-tolerant DPVNet and its scene index."""

    invariant_name: str
    net: DpvNet
    scenes: List[FaultScene]
    intolerable: List[FaultScene] = field(default_factory=list)

    def scene_for(self, failed_links: Sequence[Link]) -> Optional[FaultScene]:
        """Look up the precomputed scene matching a set of failures, or
        ``None`` (the §6 "unspecified fault scene" case — verifiers would
        report it to the planner)."""
        key = frozenset(canonical_link(a, b) for a, b in failed_links)
        for scene in self.scenes:
            if scene.failed_links == key:
                return scene
        return None


def enumerate_scenes(
    topology: Topology,
    spec: FaultSpec,
    max_scenes: Optional[int] = None,
) -> List[FrozenSet[Link]]:
    """Expand a :class:`FaultSpec` into concrete scenes, ascending by the
    number of failed links; the empty scene comes first.

    ``max_scenes`` optionally truncates ``any_k`` expansion (large topologies
    have combinatorially many scenes; the paper samples 50 in §9.3.4)."""
    scenes: List[FrozenSet[Link]] = [frozenset()]
    if spec.any_k is not None:
        links = sorted(topology.link_set())
        for size in range(1, spec.any_k + 1):
            for combo in itertools.combinations(links, size):
                scenes.append(frozenset(combo))
                if max_scenes is not None and len(scenes) > max_scenes:
                    return scenes
    else:
        explicit = sorted(spec.scenes, key=lambda scene: (len(scene), sorted(scene)))
        for scene in explicit:
            normalized = frozenset(canonical_link(a, b) for a, b in scene)
            if normalized and normalized not in scenes:
                scenes.append(normalized)
    return scenes


def _enumerate_labeled_paths(
    planner: Planner,
    invariant: Invariant,
    topology: Topology,
) -> List[LabeledPath]:
    """All valid (ingress, path, acceptance) triples in ``topology``.

    Built from the enumeration DPVNet so exactly the planner's semantics
    (length filters, loop_free, multi-atom acceptance) apply.
    """
    scene_planner = Planner(topology, planner.ctx)
    net = scene_planner.build_dpvnet(invariant, topology)
    labeled: List[LabeledPath] = []
    for ingress, source in net.sources.items():
        if source is None:
            continue

        def walk(node_id: int, prefix: Tuple[str, ...]) -> None:
            node = net.node(node_id)
            here = prefix + (node.dev,)
            if any(node.accept):
                labeled.append((ingress, here, node.accept))
            for child in node.children:
                walk(child, here)

        walk(source, ())
    return labeled


def _filter_signature(
    topology: Topology, invariant: Invariant
) -> Tuple:
    """Concrete values of every symbolic length filter: the shortest-hop
    distances from each ingress to every device (the quantities ``shortest``
    resolves to)."""
    signature = []
    for ingress in invariant.ingress_set:
        distances = []
        for dev in topology.devices:
            distances.append((dev, topology.shortest_hops(ingress, dev)))
        signature.append((ingress, tuple(distances)))
    return tuple(signature)


def compute_fault_plan(
    planner: Planner,
    invariant: Invariant,
    max_scenes: Optional[int] = None,
) -> FaultPlan:
    """Run the §6 precomputation and return the labeled DPVNet + scene
    table."""
    if invariant.fault_spec is None:
        raise PlannerError("invariant has no fault_scenes field")
    topology = planner.topology
    scene_links = enumerate_scenes(topology, invariant.fault_spec, max_scenes)
    scenes = [FaultScene(i, links) for i, links in enumerate(scene_links)]

    atoms = invariant.atoms()
    symbolic = any(atom.path.has_symbolic_filter() for atom in atoms)

    if not symbolic:
        # Proposition 2, easy half: valid paths only shrink under failures,
        # so the base DPVNet covers every scene; verifiers zero counts over
        # failed links with no re-planning at all.
        net = planner.build_dpvnet(invariant)
        intolerable = _find_intolerable(net, scenes, invariant)
        return FaultPlan(invariant.name, net, scenes, intolerable)

    # Symbolic filters: per-scene path sets with the reuse rules.
    base_paths = _enumerate_labeled_paths(planner, invariant, topology)
    base_signature = _filter_signature(topology, invariant)
    path_scenes: Dict[LabeledPath, Set[int]] = {p: {0} for p in base_paths}
    computed: List[Tuple[FrozenSet[Link], Tuple, List[LabeledPath]]] = [
        (frozenset(), base_signature, base_paths)
    ]
    intolerable: List[FaultScene] = []

    def links_of(path: Tuple[str, ...]) -> Set[Link]:
        return {canonical_link(a, b) for a, b in zip(path, path[1:])}

    for scene in scenes[1:]:
        failed = scene.failed_links
        topo_f = topology.without_links(failed)
        signature = _filter_signature(topo_f, invariant)

        base_uses_failed = any(
            links_of(path) & failed for _ing, path, _acc in base_paths
        )
        if not base_uses_failed and signature == base_signature:
            # R(G, Ψ) untouched by this scene: same valid paths.
            scene_paths = base_paths
        else:
            reused: Optional[List[LabeledPath]] = None
            # Maximal previously-traversed subset scene with equal filter
            # values: its surviving paths are exactly this scene's paths.
            for prev_failed, prev_signature, prev_paths in sorted(
                computed, key=lambda item: -len(item[0])
            ):
                if prev_failed <= failed and prev_signature == signature:
                    reused = [
                        labeled
                        for labeled in prev_paths
                        if not (links_of(labeled[1]) & failed)
                    ]
                    break
            if reused is not None:
                scene_paths = reused
            else:
                scene_paths = _enumerate_labeled_paths(planner, invariant, topo_f)
        computed.append((failed, signature, scene_paths))
        if not scene_paths:
            intolerable.append(scene)
            continue
        for labeled in scene_paths:
            path_scenes.setdefault(labeled, set()).add(scene.scene_id)

    net = _merge_labeled_paths(path_scenes, invariant, len(atoms))
    return FaultPlan(invariant.name, net, scenes, intolerable)


def _find_intolerable(
    net: DpvNet, scenes: List[FaultScene], invariant: Invariant
) -> List[FaultScene]:
    """Scenes under which some ingress loses every valid path (checked on
    the DAG with failed edges removed)."""
    intolerable: List[FaultScene] = []
    for scene in scenes[1:]:
        ok = True
        for ingress, source in net.sources.items():
            if source is None:
                continue
            if not _can_accept(net, source, scene.failed_links):
                ok = False
                break
        if not ok:
            intolerable.append(scene)
    return intolerable


def _can_accept(net: DpvNet, source: int, failed: FrozenSet[Link]) -> bool:
    stack = [source]
    seen = {source}
    while stack:
        nid = stack.pop()
        node = net.node(nid)
        if any(node.accept):
            return True
        for child in node.children:
            link = canonical_link(node.dev, net.node(child).dev)
            if link in failed or child in seen:
                continue
            seen.add(child)
            stack.append(child)
    return False


def _merge_labeled_paths(
    path_scenes: Mapping[LabeledPath, Set[int]],
    invariant: Invariant,
    arity: int,
) -> DpvNet:
    """Merge scene-labeled paths into one suffix-shared DAG.

    Edge labels = scenes of the paths crossing the edge; acceptance labels =
    scenes of the paths *ending* at the node (kept per atom).  Suffix merging
    keys on the labels so per-scene counting stays exact.
    """
    # Build a per-ingress prefix trie carrying labels.
    trie_children: List[Dict[str, int]] = [{}]
    trie_dev: List[Optional[str]] = [None]
    trie_accept: List[List[FrozenSet[int]]] = [[frozenset()] * arity]
    trie_edge_scenes: List[Dict[int, Set[int]]] = [{}]
    roots: Dict[str, Optional[int]] = {
        ingress: None for ingress in invariant.ingress_set
    }

    def trie_get(parent: int, dev: str) -> int:
        child = trie_children[parent].get(dev)
        if child is None:
            child = len(trie_children)
            trie_children[parent][dev] = child
            trie_children.append({})
            trie_dev.append(dev)
            trie_accept.append([frozenset()] * arity)
            trie_edge_scenes.append({})
        return child

    for (ingress, path, accept), scenes in sorted(path_scenes.items()):
        node = trie_get(0, path[0])
        if roots.get(ingress) is None:
            roots[ingress] = node
        for dev in path[1:]:
            child = trie_get(node, dev)
            existing = trie_edge_scenes[node].get(child, set())
            trie_edge_scenes[node][child] = existing | set(scenes)
            node = child
        for i, flag in enumerate(accept):
            if flag:
                trie_accept[node][i] = trie_accept[node][i] | frozenset(scenes)

    # Bottom-up suffix merge with labels in the signature.
    order = _postorder(trie_children)
    canonical: Dict[Tuple, int] = {}
    replacement: Dict[int, int] = {}
    for tid in order:
        children_sig = tuple(
            sorted(
                (replacement[child], frozenset(trie_edge_scenes[tid].get(child, ())))
                for child in trie_children[tid].values()
            )
        )
        key = (trie_dev[tid], tuple(trie_accept[tid]), children_sig)
        existing = canonical.get(key)
        if existing is None:
            canonical[key] = tid
            replacement[tid] = tid
        else:
            replacement[tid] = existing

    keep = sorted(set(replacement[tid] for tid in order if trie_dev[tid] is not None))
    nodes: Dict[int, DpvNode] = {}
    edge_scenes: Dict[Tuple[int, int], FrozenSet[int]] = {}
    accept_scenes: Dict[Tuple[int, int], FrozenSet[int]] = {}
    for tid in keep:
        accept_vec = tuple(bool(s) for s in trie_accept[tid])
        nodes[tid] = DpvNode(tid, trie_dev[tid], accept_vec)
        for i, scene_set in enumerate(trie_accept[tid]):
            if scene_set:
                accept_scenes[(tid, i)] = frozenset(scene_set)
    for tid in keep:
        merged_children: Dict[int, Set[int]] = {}
        for child, scene_set in trie_edge_scenes[tid].items():
            target = replacement[child]
            merged_children.setdefault(target, set()).update(scene_set)
        for target, scene_set in sorted(merged_children.items()):
            nodes[tid].children.append(target)
            nodes[target].parents.append(tid)
            edge_scenes[(tid, target)] = frozenset(scene_set)

    sources = {
        ingress: (replacement[root] if root is not None else None)
        for ingress, root in roots.items()
    }
    net = DpvNet(nodes, sources, arity)
    net.edge_scenes = edge_scenes
    net.accept_scenes = accept_scenes  # type: ignore[attr-defined]
    return net


def _postorder(trie_children: List[Dict[str, int]]) -> List[int]:
    order: List[int] = []
    stack: List[Tuple[int, bool]] = [(0, False)]
    seen: Set[int] = set()
    while stack:
        tid, expanded = stack.pop()
        if expanded:
            order.append(tid)
            continue
        if tid in seen:
            continue
        seen.add(tid)
        stack.append((tid, True))
        for child in trie_children[tid].values():
            stack.append((child, False))
    return order
