"""Planner-side analyses from the §7 discussion.

*Local verification of invariants with exist operators.*  The paper proves
that ``equal`` invariants need no counting communication, and observes that
the same can hold for ``exist`` invariants at nodes whose device is a *cut*
of the network — every valid path passes through them, so their local count
determines the global verdict.  :func:`gate_nodes` computes exactly those
nodes on a DPVNet (by path counting), and :func:`gate_devices` lifts the
property to devices; a deployment could skip upstream propagation beyond
them.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.core.dpvnet import DpvNet

__all__ = ["gate_nodes", "gate_devices", "path_count"]


def path_count(net: DpvNet) -> int:
    """Number of source→accepting paths in the DPVNet (exact, big ints)."""
    down = _paths_down(net)
    return sum(
        down[source]
        for source in net.sources.values()
        if source is not None
    )


def _paths_down(net: DpvNet) -> Dict[int, int]:
    """paths_down[u]: number of paths from u to any accepting node
    (counting u itself when accepting)."""
    down: Dict[int, int] = {}
    for nid in net.reverse_topological_order():
        node = net.node(nid)
        total = 1 if any(node.accept) else 0
        for child in node.children:
            total += down[child]
        down[nid] = total
    return down


def _paths_up(net: DpvNet) -> Dict[int, int]:
    """paths_up[u]: number of source→u paths."""
    up: Dict[int, int] = {nid: 0 for nid in net.nodes}
    for source in net.sources.values():
        if source is not None:
            up[source] += 1
    for nid in reversed(net.reverse_topological_order()):
        for child in net.node(nid).children:
            up[child] += up[nid]
    return up


def gate_nodes(net: DpvNet) -> Set[int]:
    """Nodes through which *every* valid path passes.

    For an ``exist`` invariant, such a node's counting result equals the
    source's up to the (fixed) upstream prefix structure: its device can
    verify locally, and its minimal counting information toward upstream
    neighbors is effectively empty (§7).
    """
    total = path_count(net)
    if total == 0:
        return set()
    down = _paths_down(net)
    up = _paths_up(net)
    gates: Set[int] = set()
    for nid, node in net.nodes.items():
        # Paths through nid = (source→nid paths) × (nid→accept paths);
        # acceptance *at* nid terminates those paths, already in down[nid].
        through = up[nid] * down[nid]
        if through == total:
            gates.add(nid)
    return gates


def gate_devices(net: DpvNet) -> List[str]:
    """Devices all of whose DPVNet presence is on every valid path — the
    paper's example: device A in the Figure 2a network."""
    gates = gate_nodes(net)
    by_dev: Dict[str, List[int]] = {}
    for nid, node in net.nodes.items():
        by_dev.setdefault(node.dev, []).append(nid)
    result = []
    for dev, nids in sorted(by_dev.items()):
        if len(nids) == 1 and nids[0] in gates:
            result.append(dev)
    return result
