"""Multi-path invariants: the §7 "Multi-path comparison" extension.

The core language covers "single-path" invariants — one packet space whose
traces must match a pattern.  §7 sketches the extension for invariants that
*compare the traces of two packet spaces* (route symmetry, node-/link-
disjointness): build a DPVNet per packet space, let verifiers collect the
actual complete paths, and run a user-defined comparison operator on the
collected path sets.

This module implements that design offline (the collection step is the
planner walking each DPVNet against the data plane):

* :func:`used_paths` — the set of complete paths packets of a space may
  actually take (union over universes), computed region-wise along the
  DPVNet so packet transformations are handled;
* comparison operators: :func:`route_symmetric`,
  :func:`node_disjoint`, :func:`link_disjoint`;
* :func:`verify_route_symmetry` / :func:`verify_disjointness` — end-to-end
  checks returning :class:`~repro.core.result.VerificationResult`.
"""

from __future__ import annotations

from typing import FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from repro.bdd.predicate import Predicate
from repro.core.counting import CountExp
from repro.core.invariant import Atom, Invariant, MatchKind, PathExpr
from repro.core.planner import Planner
from repro.core.result import VerificationResult, Violation
from repro.dataplane.action import EXTERNAL
from repro.dataplane.device import DevicePlane

__all__ = [
    "used_paths",
    "route_symmetric",
    "node_disjoint",
    "link_disjoint",
    "verify_route_symmetry",
    "verify_disjointness",
]

Path = Tuple[str, ...]


def used_paths(
    planner: Planner,
    planes: Mapping[str, DevicePlane],
    space: Predicate,
    ingress: str,
    path: PathExpr,
) -> FrozenSet[Path]:
    """All complete paths some packet of ``space`` may take (any universe).

    A DPVNet path is *used* when every device along it forwards a non-empty
    sub-region of the (transform-adjusted) packet space to the next hop, and
    the final device delivers it.  ALL- and ANY-type groups both contribute:
    "may take in some universe" is a union over both kinds of branching.
    """
    invariant = Invariant(
        space, (ingress,),
        Atom(path, MatchKind.EXIST, CountExp(">=", 1)),
        name=f"paths_{ingress}",
    )
    net = planner.build_dpvnet(invariant)
    source = net.sources.get(ingress)
    if source is None:
        return frozenset()
    used: Set[Path] = set()

    def walk(node_id: int, region: Predicate, prefix: Path) -> None:
        if region.is_empty:
            return
        node = net.node(node_id)
        here = prefix + (node.dev,)
        plane = planes.get(node.dev)
        if plane is None:
            return
        for piece, action in plane.fwd(region):
            if piece.is_empty:
                continue
            if any(node.accept) and EXTERNAL in action.group:
                used.add(here)
            for member in action.internal_next_hops():
                child_id = net.child_by_dev[node_id].get(member)
                if child_id is None:
                    continue
                downstream = (
                    action.transform.apply(piece)
                    if action.transform else piece
                )
                walk(child_id, downstream, here)

    walk(source, space, ())
    return frozenset(used)


# ----------------------------------------------------------------------
# Comparison operators
# ----------------------------------------------------------------------
def route_symmetric(
    forward: FrozenSet[Path], backward: FrozenSet[Path]
) -> List[str]:
    """Middlebox-traversal symmetry: every A→B path, reversed, must be a
    used B→A path (and vice versa).  Returns human-readable mismatches."""
    problems: List[str] = []
    reversed_backward = {tuple(reversed(p)) for p in backward}
    for p in sorted(forward):
        if p not in reversed_backward:
            problems.append(f"forward path {list(p)} has no reverse twin")
    reversed_forward = {tuple(reversed(p)) for p in forward}
    for p in sorted(backward):
        if p not in reversed_forward:
            problems.append(f"backward path {list(p)} has no forward twin")
    return problems


def node_disjoint(
    first: FrozenSet[Path], second: FrozenSet[Path]
) -> List[str]:
    """1+1 protection style: the interior devices of the two path sets must
    not overlap (endpoints excluded)."""
    interior_first = {dev for p in first for dev in p[1:-1]}
    interior_second = {dev for p in second for dev in p[1:-1]}
    shared = sorted(interior_first & interior_second)
    if shared:
        return [f"paths share interior devices: {shared}"]
    return []


def link_disjoint(
    first: FrozenSet[Path], second: FrozenSet[Path]
) -> List[str]:
    """The two path sets must not traverse any common link."""
    def links(paths: FrozenSet[Path]) -> Set[Tuple[str, str]]:
        found: Set[Tuple[str, str]] = set()
        for p in paths:
            for a, b in zip(p, p[1:]):
                found.add((a, b) if a <= b else (b, a))
        return found

    shared = sorted(links(first) & links(second))
    if shared:
        return [f"paths share links: {shared}"]
    return []


# ----------------------------------------------------------------------
# End-to-end checks
# ----------------------------------------------------------------------
def verify_route_symmetry(
    planner: Planner,
    planes: Mapping[str, DevicePlane],
    space_fwd: Predicate,
    space_bwd: Predicate,
    endpoint_a: str,
    endpoint_b: str,
    max_extra_hops: int = 2,
) -> VerificationResult:
    """A↔B route symmetry over two packet spaces (forward/return traffic)."""
    from repro.core.invariant import LengthFilter

    filters = (LengthFilter("<=", "shortest", max_extra_hops),)
    fwd_paths = used_paths(
        planner, planes, space_fwd, endpoint_a,
        PathExpr.parse(f"{endpoint_a} .* {endpoint_b}", filters, True),
    )
    bwd_paths = used_paths(
        planner, planes, space_bwd, endpoint_b,
        PathExpr.parse(f"{endpoint_b} .* {endpoint_a}", filters, True),
    )
    problems = route_symmetric(fwd_paths, bwd_paths)
    violations = [
        Violation(endpoint_a, space_fwd, message=problem)
        for problem in problems
    ]
    return VerificationResult(
        invariant_name=f"route_symmetry_{endpoint_a}_{endpoint_b}",
        holds=not violations,
        violations=violations,
    )


def verify_disjointness(
    planner: Planner,
    planes: Mapping[str, DevicePlane],
    space_first: Predicate,
    space_second: Predicate,
    ingress: str,
    destination: str,
    mode: str = "node",
    max_extra_hops: int = 2,
) -> VerificationResult:
    """Node-/link-disjointness of the paths used by two packet spaces from
    the same ingress to the same destination (1+1 protection checking)."""
    from repro.core.invariant import LengthFilter

    if mode not in ("node", "link"):
        raise ValueError("mode must be 'node' or 'link'")
    filters = (LengthFilter("<=", "shortest", max_extra_hops),)
    expr = PathExpr.parse(f"{ingress} .* {destination}", filters, True)
    first = used_paths(planner, planes, space_first, ingress, expr)
    second = used_paths(planner, planes, space_second, ingress, expr)
    compare = node_disjoint if mode == "node" else link_disjoint
    problems = compare(first, second)
    if not first or not second:
        problems.append("one of the packet spaces uses no path at all")
    violations = [
        Violation(ingress, space_first, message=problem) for problem in problems
    ]
    return VerificationResult(
        invariant_name=f"{mode}_disjoint_{ingress}_{destination}",
        holds=not violations,
        violations=violations,
    )
