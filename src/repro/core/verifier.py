"""On-device verifiers (§5, §8).

An :class:`OnDeviceVerifier` executes the counting tasks the planner assigned
to one device.  It is a pure event-driven state machine: every handler takes
an event (a DVM message, a LEC delta from the local data plane, a link state
change, a fault-scene activation) and returns the list of DVM messages to
send, each addressed to a neighbor device.  The discrete-event simulator —
or, in a real deployment, a TCP agent — moves the messages.

State per DPVNet node (§5.1):

* ``CIBIn(v)`` — latest counting results received from downstream neighbor
  ``v``, a disjoint predicate → count-set map.
* ``LocCIB`` — this node's own latest counts.  Causality is implicit: every
  recomputation rebuilds the affected region from the CIBIn tables, which is
  the paper's inverse-⊗/⊕-then-reapply update expressed without storing the
  causality tuples.
* ``CIBOut`` — what upstream neighbors currently believe (after
  Proposition 1 minimal-information reduction); used to suppress no-op
  UPDATEs, so only changed results travel.

Region representation (``predicate_index``): with ``"atoms"`` (the default)
all CIB tables, interests and region bookkeeping hold :class:`AtomSet`s from
the context's shared :class:`~repro.core.atomindex.AtomIndex`, so the hot
path's splits/diffs/unions are integer-set operations.  With ``"bdd"`` they
hold raw :class:`Predicate`s (the seed behaviour).  Either way the *wire* is
identical: messages, verdicts and violations always carry canonical BDD
predicates, converted at the handler boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.bdd.predicate import PacketSpaceContext, Predicate
from repro.core.counting import (
    CountSet,
    cross_sum,
    make_reduce_kernel,
    singleton,
    union,
    zero_vec,
)
from repro.core.dvm import SubscribeMessage, UpdateMessage
from repro.core.invariant import EndKind, MatchKind
from repro.core.kernels import BehaviorKernel
from repro.core.offline import node_base_vector
from repro.core.predmap import PredMap
from repro.core.result import Violation
from repro.core.tasks import DeviceTask, NodeTask
from repro.dataplane.action import EXTERNAL, Action, GroupType
from repro.dataplane.device import DevicePlane
from repro.dataplane.lec import LecDelta
from repro.errors import ProtocolError

__all__ = ["OnDeviceVerifier", "Outgoing"]

Outgoing = Tuple[str, object]  # (destination device, DVM message)


@dataclass
class _NodeState:
    # Regions below are AtomSets in "atoms" mode, Predicates in "bdd" mode.
    cib_in: Dict[int, PredMap] = field(default_factory=dict)
    loc_cib: Optional[PredMap] = None
    cib_out: Optional[PredMap] = None
    interest: Optional[object] = None
    subscribed: Dict[int, object] = field(default_factory=dict)


@dataclass
class _Stats:
    updates_received: int = 0
    updates_sent: int = 0
    subscribes_received: int = 0
    subscribes_sent: int = 0
    bytes_received: int = 0
    bytes_sent: int = 0
    recomputations: int = 0


class OnDeviceVerifier:
    """The verification agent of one device for one invariant."""

    def __init__(
        self,
        task: DeviceTask,
        plane: DevicePlane,
        predicate_index: str = "atoms",
        tracer=None,
        invariant: Optional[str] = None,
    ) -> None:
        self.task = task
        self.plane = plane
        # Optional telemetry sink (repro.telemetry.Tracer) and the invariant
        # name used to attribute verdict events.  Both default off so the
        # parallel workers (which construct verifiers directly) are
        # unaffected.
        self.tracer = tracer
        self.invariant = invariant
        self.ctx: PacketSpaceContext = task.packet_space.ctx
        self.arity = len(task.atoms)
        self.is_local_check = task.atoms[0].kind is MatchKind.EQUAL
        if predicate_index not in ("atoms", "bdd"):
            raise ValueError(
                f"unknown predicate index {predicate_index!r} "
                "(expected 'atoms' or 'bdd')"
            )
        # ``equal``-operator local contracts never touch region algebra, so
        # they stay on the raw-BDD path and build no index.
        if self.is_local_check:
            predicate_index = "bdd"
        self.predicate_index = predicate_index
        self._use_atoms = predicate_index == "atoms"
        self._index = self.ctx.atom_index() if self._use_atoms else None
        # The *space* a PredMap partitions: AtomIndex or PacketSpaceContext
        # (both expose ``.empty`` / ``.union`` over their region type).
        self._space = self._index if self._use_atoms else self.ctx

        self.nodes: Dict[int, NodeTask] = {n.node_id: n for n in task.nodes}
        self._child_by_dev: Dict[int, Dict[str, int]] = {
            nid: {ref.dev: ref.node_id for ref in node.downstream}
            for nid, node in self.nodes.items()
        }
        self._child_dev: Dict[int, Dict[int, str]] = {
            nid: {ref.node_id: ref.dev for ref in node.downstream}
            for nid, node in self.nodes.items()
        }
        self.state: Dict[int, _NodeState] = {}
        for nid in self.nodes:
            st = _NodeState()
            st.loc_cib = PredMap(self._space)
            st.cib_out = PredMap(self._space)
            st.interest = self._to_region(task.packet_space)
            self.state[nid] = st

        # Per-node memo of the forwarding split of ``interest``, keyed on
        # (FIB epoch, interest) so rule updates and subscribe-driven interest
        # growth both invalidate it.  In atoms mode the cached value is a
        # pair of parallel (mask, action) arrays — the table the fused
        # LEC+count kernel bulk-intersects against.
        self._fwd_split_cache: Dict[int, Tuple[Tuple[int, object], object]] = {}

        # Compiled per-invariant kernels (see repro.core.kernels): the
        # behavior check as one closure with pre-bound component indexes +
        # a count-set verdict memo, and a memoized Proposition-1 reducer.
        # Both are representation-independent, so bdd mode shares them.
        self._behavior_kernel = (
            None if self.is_local_check
            else BehaviorKernel(task.behavior, task.atoms)
        )
        self._reduce = make_reduce_kernel(task.reduction_exps)
        self._zero_cs = singleton(zero_vec(self.arity))
        # (accept vector, end kind) -> base count vector; accept_in_scene
        # and node_base_vector are pure in these, recomputed per piece on
        # the generic path.
        self._base_vec_memo: Dict[Tuple[Tuple[bool, ...], EndKind], tuple] = {}

        self.dead_neighbors: Set[str] = set()
        self.active_scene: Optional[int] = None
        # Per-ingress verdict at source nodes hosted here.
        self.verdicts: Dict[str, Tuple[bool, List[Violation]]] = {}
        self.local_violations: List[Violation] = []
        self.stats = _Stats()

    # ------------------------------------------------------------------
    # Region representation boundaries
    # ------------------------------------------------------------------
    def _to_region(self, pred: Predicate):
        """Wire/boundary Predicate → internal region representation."""
        if self._use_atoms:
            return self._index.atomize(pred)
        return pred

    def _to_pred(self, region) -> Predicate:
        """Internal region → canonical Predicate (for wire and verdicts)."""
        if self._use_atoms:
            return self._index.to_predicate(region)
        return region

    def _fwd(self, region):
        """LEC split of a region, in the region's own representation."""
        if self._use_atoms:
            return self.plane.fwd_atoms(region)
        return self.plane.fwd(region)

    def _interest_fwd(self, node_id: int):
        """Memoized LEC split of a node's interest.

        ``_preimage_region`` and ``_region_toward`` re-split the (mostly
        static) interest on every link/update event; the split only changes
        when the FIB changes (plane epoch) or the interest itself grows.
        """
        st = self.state[node_id]
        key = (self.plane.epoch, st.interest)
        cached = self._fwd_split_cache.get(node_id)
        if cached is not None and cached[0] == key:
            return cached[1]
        split = self._fwd(st.interest)
        self._fwd_split_cache[node_id] = (key, split)
        return split

    def _interest_split_masks(self, node_id: int):
        """Atoms-mode twin of :meth:`_interest_fwd`: the LEC split of the
        node's interest as parallel ``(masks, actions)`` arrays.

        This is the table the fused LEC+count kernel bulk-intersects
        against.  Pieces appear in LEC-table entry order with the uncovered
        remainder mapped to drop — exactly the order ``action_of_atoms``
        yields, so everything downstream stays byte-identical.  Cached on
        (FIB epoch, resolved interest mask): any split or merge that touches
        the interest changes its resolved mask and misses the cache.
        """
        st = self.state[node_id]
        index = self._index
        # atom_entries() may atomize rules on first use (refining the
        # forest), so force it BEFORE snapshotting the interest mask.
        entries = self.plane.lec_table().atom_entries(index)
        interest_mask = st.interest.mask()
        key = (self.plane.epoch, interest_mask)
        cached = self._fwd_split_cache.get(node_id)
        if cached is not None and cached[0] == key:
            return cached[1]
        masks: List[int] = []
        actions: List[Action] = []
        remaining = interest_mask
        for lec_aset, action in entries:
            if not remaining:
                break
            piece = remaining & lec_aset.mask()
            if piece:
                masks.append(piece)
                actions.append(action)
                remaining &= ~piece
        if remaining:
            masks.append(remaining)
            actions.append(Action.drop())
        split = (masks, actions)
        self._fwd_split_cache[node_id] = (key, split)
        return split

    def _transform_apply(self, transform, region):
        if self._use_atoms:
            return self._index.transform_image(transform, region)
        return transform.apply(region)

    def _transform_preimage(self, transform, region):
        if self._use_atoms:
            return self._index.transform_preimage(transform, region)
        return transform.preimage(region)

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def initialize(self) -> List[Outgoing]:
        """Compute initial LEC + CIB state and announce it (§9.4's
        "initialization phase")."""
        self.plane.lec_table()  # force the LEC build
        if self.is_local_check:
            self._run_local_checks()
            return []
        outgoing: List[Outgoing] = []
        for nid in self.nodes:
            outgoing.extend(self._recompute(nid, self.state[nid].interest))
        self.ctx.mgr.maybe_collect()
        return outgoing

    def handle_update(self, message: UpdateMessage) -> List[Outgoing]:
        """§5.2 UPDATE handling: steps 1-3 (a batch of one)."""
        return self.handle_batch([message])

    def handle_batch(self, messages: Sequence[object]) -> List[Outgoing]:
        """Process a batch of queued DVM messages with one recomputation per
        affected node.

        Step 1 (CIBIn maintenance) runs per message, then the affected
        regions are unioned and steps 2+3 run once per node.  Because
        recomputation rebuilds LocCIB from the CIBIn tables, the fixpoint is
        identical to processing the messages one at a time — this is the
        batched round primitive the parallel backend's workers execute.
        """
        outgoing: List[Outgoing] = []
        regions: Dict[int, object] = {}
        for message in messages:
            if isinstance(message, SubscribeMessage):
                outgoing.extend(self.handle_subscribe(message))
                continue
            if not isinstance(message, UpdateMessage):
                raise ProtocolError(f"unknown message type {type(message)}")
            self.stats.updates_received += 1
            self.stats.bytes_received += message.wire_size()
            parent_id, child_id = message.intended_link
            if parent_id not in self.nodes:
                raise ProtocolError(
                    f"device {self.task.dev} received UPDATE for foreign "
                    f"node {parent_id}"
                )
            st = self.state[parent_id]
            cib = st.cib_in.get(child_id)
            if cib is None:
                cib = PredMap(self._space)
                st.cib_in[child_id] = cib
            withdrawn = self._to_region(message.withdrawn)
            cib.remove(withdrawn)
            cib.assign(
                [(self._to_region(pred), cs) for pred, cs in message.results]
            )
            affected = self._preimage_region(parent_id, child_id, withdrawn)
            prev = regions.get(parent_id)
            regions[parent_id] = affected if prev is None else prev | affected
        for nid in sorted(regions):
            outgoing.extend(self._recompute(nid, regions[nid]))
        # End-of-event safe point: every live packet set is back inside a
        # Predicate or an index-tracked AtomSet (state tables or the outgoing
        # messages), so the engine may compact its node table here.
        self.ctx.mgr.maybe_collect()
        return outgoing

    def handle_subscribe(self, message: SubscribeMessage) -> List[Outgoing]:
        """A parent subscribed to transformed-predicate results (§5.2)."""
        self.stats.subscribes_received += 1
        _parent_id, child_id = message.intended_link
        node = self.nodes.get(child_id)
        if node is None:
            raise ProtocolError(
                f"device {self.task.dev} received SUBSCRIBE for foreign node "
                f"{child_id}"
            )
        st = self.state[child_id]
        outgoing: List[Outgoing] = []
        pred_to = self._to_region(message.pred_to)
        new_region = pred_to - st.interest
        if not new_region.is_empty:
            st.interest = st.interest | pred_to
            outgoing.extend(self._recompute(child_id, new_region))
        # Re-announce current results over the subscribed region so the
        # subscriber converges regardless of message ordering.
        outgoing.extend(self._announce_region(child_id, pred_to, force=True))
        return outgoing

    def handle_lec_deltas(self, deltas: Sequence[LecDelta]) -> List[Outgoing]:
        """Internal rule-update event (§5.2 "Internal event handling")."""
        if not deltas:
            return []
        if self.is_local_check:
            self._run_local_checks()
            return []
        # Union in region representation: in atoms mode the delta predicates
        # were just atomized by the LEC update (seeded cache), so this is
        # pure set algebra instead of a BDD OR-chain.
        changed = self._to_region(deltas[0].predicate)
        for delta in deltas[1:]:
            changed = changed | self._to_region(delta.predicate)
        outgoing: List[Outgoing] = []
        for nid in self.nodes:
            region = changed & self.state[nid].interest
            outgoing.extend(self._recompute(nid, region))
        self.ctx.mgr.maybe_collect()
        return outgoing

    def handle_link_change(self, neighbor: str, is_up: bool) -> List[Outgoing]:
        """Adjacent link failure/recovery: zero (restore) the counts of
        predicates forwarded over that link (§6, concrete-filter case)."""
        if is_up:
            self.dead_neighbors.discard(neighbor)
        else:
            self.dead_neighbors.add(neighbor)
        if self.is_local_check:
            self._run_local_checks()
            return []
        outgoing: List[Outgoing] = []
        for nid in self.nodes:
            region = self._region_toward(nid, neighbor)
            outgoing.extend(self._recompute(nid, region))
        if is_up:
            # Parents on the recovered link missed our updates while it was
            # down: force a full re-announcement toward them so their CIBIn
            # resynchronizes.
            for nid, node in self.nodes.items():
                if any(ref.dev == neighbor for ref in node.upstream):
                    outgoing.extend(
                        self._announce_region(
                            nid, self.state[nid].interest, force=True
                        )
                    )
        self.ctx.mgr.maybe_collect()
        return outgoing

    def handle_neighbor_restart(self, neighbor: str) -> List[Outgoing]:
        """A neighbor device crashed and came back with empty verifier state.

        Unlike a plain link recovery, the neighbor's interest extensions are
        gone: clear the subscription bookkeeping toward its nodes so the
        recomputation below re-issues every SUBSCRIBE, then resync exactly
        like a link-up event (recount through the neighbor and force-
        re-announce the full CIB toward it)."""
        for nid in self.nodes:
            st = self.state[nid]
            for child_id, dev in self._child_dev[nid].items():
                if dev == neighbor:
                    st.subscribed.pop(child_id, None)
        return self.handle_link_change(neighbor, True)

    def activate_scene(self, scene_id: Optional[int]) -> List[Outgoing]:
        """Switch to a precomputed fault scene: recount along the DPVNet
        edges labeled for this scene (§6 "online recounting")."""
        if scene_id == self.active_scene:
            return []
        self.active_scene = scene_id
        if self.is_local_check:
            self._run_local_checks()
            return []
        outgoing: List[Outgoing] = []
        for nid in self.nodes:
            outgoing.extend(self._recompute(nid, self.state[nid].interest))
        self.ctx.mgr.maybe_collect()
        return outgoing

    # ------------------------------------------------------------------
    # Counting kernel
    # ------------------------------------------------------------------
    def _edge_alive(self, node: NodeTask, child_id: int, child_dev: str) -> bool:
        if child_dev in self.dead_neighbors:
            return False
        scenes = node.edge_scenes.get(child_id)
        if scenes is not None:
            sid = 0 if self.active_scene is None else self.active_scene
            return sid in scenes
        return True

    def _preimage_region(self, node_id: int, child_id: int, downstream_region):
        """Map a child's changed region back into this node's packet frame
        (identity without transforms, pre-image through them)."""
        child_dev = self._child_dev[node_id].get(child_id)
        if child_dev is None:
            return self._space.empty
        if self._use_atoms:
            index = self._index
            resolve = index._resolve_mask
            masks, actions = self._interest_split_masks(node_id)
            down_mask = downstream_region.mask()
            region_mask = 0
            for m, action in zip(masks, actions):
                if child_dev not in action.group:
                    continue
                if action.transform is None:
                    region_mask |= resolve(m) & down_mask
                else:
                    # transform_preimage may refine the forest; re-read the
                    # downstream mask afterwards (AtomSets self-heal) and
                    # resolve() every raw mask at its use point.
                    pre = index.transform_preimage(
                        action.transform, downstream_region
                    )
                    region_mask |= resolve(m) & pre.mask()
                    down_mask = downstream_region.mask()
            return index.from_mask(resolve(region_mask))
        region = self._space.empty
        for piece, action in self._interest_fwd(node_id):
            if child_dev not in action.group:
                continue
            if action.transform is None:
                region = region | (piece & downstream_region)
            else:
                region = region | (
                    piece
                    & self._transform_preimage(
                        action.transform, downstream_region
                    )
                )
        return region

    def _region_toward(self, node_id: int, neighbor: str):
        """Packet space this node's device forwards toward ``neighbor``."""
        if self._use_atoms:
            masks, actions = self._interest_split_masks(node_id)
            region_mask = 0
            for m, action in zip(masks, actions):
                if neighbor in action.group:
                    region_mask |= m
            return self._index.from_mask(region_mask)
        region = self._space.empty
        for piece, action in self._interest_fwd(node_id):
            if neighbor in action.group:
                region = region | piece
        return region

    def _base_vector(self, accept, end: EndKind):
        """Memoized :func:`node_base_vector` (pure in its arguments)."""
        key = (accept, end)
        vec = self._base_vec_memo.get(key)
        if vec is None:
            vec = self._base_vec_memo[key] = node_base_vector(
                accept, self.task.atoms, end
            )
        return vec

    def _recompute(self, node_id: int, region) -> List[Outgoing]:
        """Steps 2 and 3 of UPDATE handling: rebuild LocCIB over ``region``
        from the LEC table and the CIBIn tables, then propagate changes."""
        if self._use_atoms:
            return self._recompute_atoms(node_id, region)
        st = self.state[node_id]
        region = region & st.interest
        if region.is_empty:
            return []
        self.stats.recomputations += 1
        node = self.nodes[node_id]
        subscribes: List[Outgoing] = []
        pieces: List[Tuple[object, CountSet]] = []
        for piece, action in self._fwd(region):
            pieces.extend(self._count_action(node, piece, action, subscribes))
        st.loc_cib.assign(pieces)
        if node.is_source_for is not None:
            self._update_verdict(node)
        outgoing = self._announce_region(node_id, region, precomputed=pieces)
        return subscribes + outgoing

    def _recompute_atoms(self, node_id: int, region) -> List[Outgoing]:
        """Fused LEC+count pass over packed atom words.

        One loop bulk-intersects the changed region against the memoized
        interest split (:meth:`_interest_split_masks`) and counts each piece
        with pure mask algebra — no AtomSet wrappers, no BDD calls — for
        transform-free actions (the overwhelming hot path).  Actions with a
        header transform fall back to the generic self-healing AtomSet
        kernel for just their piece, since applying a transform may refine
        the forest and stale raw masks there; resolve() at every use point
        plus a final resolve of the accumulated pieces keeps the math exact
        (compact() never runs mid-handler, so rewrite tables are intact).

        Pieces come out in the same order as the generic path splits them
        (LEC entries are disjoint, so splitting the pre-split interest
        against ``region`` equals splitting ``region`` against the table),
        which keeps LocCIB merges, announcements and wire bytes identical.
        """
        st = self.state[node_id]
        region = region & st.interest
        if region.is_empty:
            return []
        self.stats.recomputations += 1
        node = self.nodes[node_id]
        index = self._index
        resolve = index._resolve_mask
        subscribes: List[Outgoing] = []
        # Force the split table BEFORE reading the region mask: building it
        # may atomize LEC entries (refining the forest).
        masks, actions = self._interest_split_masks(node_id)
        region_mask = region.mask()
        pieces: List[Tuple[int, CountSet]] = []
        for m, action in zip(masks, actions):
            piece = resolve(region_mask) & resolve(m)
            if not piece:
                continue
            if action.transform is None:
                pieces.extend(self._count_action_masks(node, piece, action))
            else:
                for sub, cs in self._count_action(
                    node, index.from_mask(piece), action, subscribes
                ):
                    pieces.append((sub.mask(), cs))
        final = [(resolve(m), cs) for m, cs in pieces]
        st.loc_cib.assign_masks(final)
        if node.is_source_for is not None:
            self._update_verdict(node)
        outgoing = self._announce_masks(
            node_id, resolve(region_mask), precomputed=final
        )
        return subscribes + outgoing

    def _count_action_masks(
        self, node: NodeTask, piece_mask: int, action: Action
    ) -> List[Tuple[int, CountSet]]:
        """Transform-free counting over raw masks: the fused kernel's inner
        loop.  Mirrors :meth:`_count_action` case for case — same seeds,
        same ⊕/⊗ combination order, same piece order."""
        st = self.state[node.node_id]
        accept = node.accept_in_scene(self.active_scene)
        if action.is_drop:
            base = self._base_vector(accept, EndKind.DROPPED)
            return [(piece_mask, singleton(base))]
        deliver_cs = singleton(self._base_vector(accept, EndKind.DELIVERED))
        zero = self._zero_cs
        child_by_dev = self._child_by_dev[node.node_id]
        cib_in = st.cib_in

        def member_pieces(member: str, region_mask: int):
            if member == EXTERNAL:
                return [(region_mask, deliver_cs)]
            child_id = child_by_dev.get(member)
            if child_id is None or not self._edge_alive(node, child_id, member):
                return [(region_mask, zero)]
            cib = cib_in.get(child_id)
            if cib is None:
                return [(region_mask, zero)]
            return cib.lookup_masks_with_default(region_mask, zero)

        if action.group_type is GroupType.ANY:
            parts: List[Tuple[int, CountSet]] = [(piece_mask, ())]
            for member in action.group:
                refined: List[Tuple[int, CountSet]] = []
                for region_mask, cs in parts:
                    for sub, cs_member in member_pieces(member, region_mask):
                        refined.append((sub, union(cs, cs_member)))
                parts = refined
            return parts

        parts = [(piece_mask, zero)]
        for member in action.group:
            refined = []
            for region_mask, cs in parts:
                for sub, cs_member in member_pieces(member, region_mask):
                    refined.append((sub, cross_sum(cs, cs_member)))
            parts = refined
        return parts

    def _count_action(
        self,
        node: NodeTask,
        piece,
        action: Action,
        subscribes: List[Outgoing],
    ) -> List[Tuple[object, CountSet]]:
        arity = self.arity
        st = self.state[node.node_id]

        accept = node.accept_in_scene(self.active_scene)
        if action.is_drop:
            base = self._base_vector(accept, EndKind.DROPPED)
            return [(piece, singleton(base))]

        deliver_vec = self._base_vector(accept, EndKind.DELIVERED)
        transform = action.transform
        zero = self._zero_cs

        def member_pieces(member: str, region):
            if member == EXTERNAL:
                return [(region, singleton(deliver_vec))]
            child_id = self._child_by_dev[node.node_id].get(member)
            if child_id is None or not self._edge_alive(node, child_id, member):
                return [(region, zero)]
            if transform is not None:
                target = self._transform_apply(transform, region)
                self._maybe_subscribe(node, child_id, member, region, target, subscribes)
            else:
                target = region
            cib = st.cib_in.get(child_id)
            if cib is None:
                parts = [(target, zero)]
            else:
                parts = cib.lookup_with_default(target, zero)
            if transform is None:
                return parts
            mapped = []
            for sub, cs in parts:
                back = self._transform_preimage(transform, sub) & region
                if not back.is_empty:
                    mapped.append((back, cs))
            return mapped

        if action.group_type is GroupType.ANY:
            parts: List[Tuple[object, CountSet]] = [(piece, ())]
            for member in action.group:
                refined: List[Tuple[object, CountSet]] = []
                for region, cs in parts:
                    for sub, cs_member in member_pieces(member, region):
                        refined.append((sub, union(cs, cs_member)))
                parts = refined
            return parts

        parts = [(piece, singleton(zero_vec(arity)))]
        for member in action.group:
            refined = []
            for region, cs in parts:
                for sub, cs_member in member_pieces(member, region):
                    refined.append((sub, cross_sum(cs, cs_member)))
            parts = refined
        return parts

    def _maybe_subscribe(
        self,
        node: NodeTask,
        child_id: int,
        child_dev: str,
        region,
        target,
        subscribes: List[Outgoing],
    ) -> None:
        st = self.state[node.node_id]
        already = st.subscribed.get(child_id, self._space.empty)
        if already.covers(target):
            return
        st.subscribed[child_id] = already | target
        self.stats.subscribes_sent += 1
        subscribes.append(
            (
                child_dev,
                SubscribeMessage(
                    intended_link=(node.node_id, child_id),
                    pred_from=self._to_pred(region),
                    pred_to=self._to_pred(target),
                ),
            )
        )

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def _announce_region(
        self,
        node_id: int,
        region,
        precomputed: Optional[List[Tuple[object, CountSet]]] = None,
        force: bool = False,
    ) -> List[Outgoing]:
        """Send UPDATEs upstream for the parts of ``region`` whose (reduced)
        counting result actually changed."""
        if self._use_atoms:
            return self._announce_masks(node_id, region.mask(), force=force)
        node = self.nodes[node_id]
        if not node.upstream:
            return []
        st = self.state[node_id]
        if precomputed is None:
            current = st.loc_cib.lookup_with_default(region, self._zero_cs)
        else:
            current = precomputed
        reduce_ = self._reduce
        reduced = [(pred, reduce_(cs)) for pred, cs in current]
        if force:
            changed = region
        else:
            # A region never announced is equivalent to the all-zero count:
            # receivers default missing CIBIn entries to zero, so suppressing
            # initial zero announcements keeps the protocol quiet and correct.
            zero_cs = reduce_(self._zero_cs)
            changed = self._space.empty
            for pred, cs in reduced:
                for sub, old in st.cib_out.lookup_with_default(pred, None):
                    effective_old = old if old is not None else zero_cs
                    if effective_old != cs:
                        changed = changed | sub
        if changed.is_empty:
            return []
        payload: List[Tuple[object, CountSet]] = []
        for pred, cs in reduced:
            part = pred & changed
            if not part.is_empty:
                payload.append((part, cs))
        st.cib_out.assign(payload)
        # Boundary: the wire always carries canonical BDD predicates.
        wire_withdrawn = self._to_pred(changed)
        wire_results = tuple(
            (self._to_pred(pred), cs) for pred, cs in payload
        )
        outgoing: List[Outgoing] = []
        for parent in node.upstream:
            message = UpdateMessage(
                intended_link=(parent.node_id, node_id),
                withdrawn=wire_withdrawn,
                results=wire_results,
            )
            self.stats.updates_sent += 1
            self.stats.bytes_sent += message.wire_size()
            outgoing.append((parent.dev, message))
        return outgoing

    def _announce_masks(
        self,
        node_id: int,
        region_mask: int,
        precomputed: Optional[List[Tuple[int, CountSet]]] = None,
        force: bool = False,
    ) -> List[Outgoing]:
        """:meth:`_announce_region` over raw masks (fused-path step 3).

        Diffing against CIBOut, the Proposition-1 reduction and payload
        carving all run on packed words; only the final wire conversion
        touches BDDs, through the index's memoized ``mask_to_predicate``.
        """
        node = self.nodes[node_id]
        if not node.upstream:
            return []
        st = self.state[node_id]
        if precomputed is None:
            current = st.loc_cib.lookup_masks_with_default(
                region_mask, self._zero_cs
            )
        else:
            current = precomputed
        reduce_ = self._reduce
        reduced = [(m, reduce_(cs)) for m, cs in current]
        if force:
            changed = region_mask
        else:
            zero_cs = reduce_(self._zero_cs)
            changed = 0
            for m, cs in reduced:
                for sub, old in st.cib_out.lookup_masks_with_default(m, None):
                    effective_old = old if old is not None else zero_cs
                    if effective_old != cs:
                        changed |= sub
        if not changed:
            return []
        payload: List[Tuple[int, CountSet]] = []
        for m, cs in reduced:
            part = m & changed
            if part:
                payload.append((part, cs))
        st.cib_out.assign_masks(payload)
        # Boundary: the wire always carries canonical BDD predicates.
        to_pred = self._index.mask_to_predicate
        wire_withdrawn = to_pred(changed)
        wire_results = tuple((to_pred(m), cs) for m, cs in payload)
        outgoing: List[Outgoing] = []
        for parent in node.upstream:
            message = UpdateMessage(
                intended_link=(parent.node_id, node_id),
                withdrawn=wire_withdrawn,
                results=wire_results,
            )
            self.stats.updates_sent += 1
            self.stats.bytes_sent += message.wire_size()
            outgoing.append((parent.dev, message))
        return outgoing

    # ------------------------------------------------------------------
    # Verdicts
    # ------------------------------------------------------------------
    def _update_verdict(self, node: NodeTask) -> None:
        assert node.is_source_for is not None
        st = self.state[node.node_id]
        bad_of = self._behavior_kernel.bad_of
        violations: List[Violation] = []
        if self._use_atoms:
            # Fused verdict: mask lookup + memoized compiled check; the
            # packet space was atomized at init so this is a cache hit.
            space_mask = self._index.atomize_mask(self.task.packet_space)
            to_pred = self._index.mask_to_predicate
            pieces_masks = st.loc_cib.lookup_masks_with_default(
                space_mask, self._zero_cs
            )
            for m, cs in pieces_masks:
                bad = bad_of(cs)
                if bad:
                    violations.append(
                        Violation(node.is_source_for, to_pred(m), bad)
                    )
        else:
            pieces = st.loc_cib.lookup_with_default(
                self._to_region(self.task.packet_space), self._zero_cs
            )
            for region, cs in pieces:
                bad = bad_of(cs)
                if bad:
                    violations.append(
                        Violation(node.is_source_for, self._to_pred(region), bad)
                    )
        self.verdicts[node.is_source_for] = (not violations, violations)
        if self.tracer is not None:
            self.tracer.verdict(
                self.task.dev,
                self.invariant,
                node.is_source_for,
                not violations,
                len(violations),
                self.tracer.now(),
            )

    def _run_local_checks(self) -> None:
        """``equal``-operator local contracts (§4.2): no counting at all."""
        self.local_violations = []
        space = self.task.packet_space
        for nid, node in self.nodes.items():
            expected = {ref.dev for ref in node.downstream
                        if self._edge_alive(node, ref.node_id, ref.dev)}
            if any(node.accept):
                expected = expected | {EXTERNAL}
            for piece, action in self.plane.fwd(space):
                actual = set(action.group)
                if expected - actual:
                    self.local_violations.append(
                        Violation(
                            self.task.dev,
                            piece,
                            message=(
                                f"{node.label}: next-hop group must include "
                                f"{sorted(expected)}, got {action}"
                            ),
                        )
                    )
        self.verdicts[self.task.dev] = (
            not self.local_violations,
            list(self.local_violations),
        )
        if self.tracer is not None:
            self.tracer.verdict(
                self.task.dev,
                self.invariant,
                self.task.dev,
                not self.local_violations,
                len(self.local_violations),
                self.tracer.now(),
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def memory_proxy(self) -> int:
        """A rough memory footprint: total BDD nodes referenced by CIBs."""
        total = 0
        for st in self.state.values():
            for pred, _cs in st.loc_cib:
                total += pred.size()
            for cib in st.cib_in.values():
                for pred, _cs in cib:
                    total += pred.size()
        return total

    def source_counts(self, ingress: str):
        """Counting results at this device's source node for ``ingress``.

        Pieces are returned as canonical Predicates regardless of the
        internal representation, so parity fingerprints compare across
        predicate-index modes and backends.
        """
        for nid, node in self.nodes.items():
            if node.is_source_for == ingress:
                pieces = self.state[nid].loc_cib.lookup_with_default(
                    self._to_region(self.task.packet_space),
                    singleton(zero_vec(self.arity)),
                )
                return [(self._to_pred(pred), cs) for pred, cs in pieces]
        return None
