"""Dynamic atomic-predicate index: packet space as numbered disjoint atoms.

Yang & Lam's *atomic predicates* observation, as dynamized by APKeep
(NSDI'20): once packet space is partitioned into the coarsest classes no
installed predicate distinguishes, every predicate of interest is a *set of
atom ids* and all the algebra the DVM hot path performs — splitting CIB
regions along LEC boundaries, diffing withdrawn regions, unioning changed
regions — collapses from BDD apply-walks to integer-set operations.

Representation: an :class:`AtomSet` is a single arbitrary-precision ``int``
bitmask over a dense *slot* space, so ``& | - ^``, emptiness, ``covers`` and
``overlaps`` are one machine-word-vectorized int operation each and
equality/popcount are O(words).  Two id spaces coexist:

* **atom ids** are minted monotonically, never reused, and are what the
  wire format, extents and hash tokens speak — stable for an atom's
  lifetime (the parallel backend defines an atom to a peer once and
  references it by id forever);
* **slots** are dense bit positions assigned to leaves; a split retires the
  parent's slot into a *mask rewrite table* (``slot -> current leaf
  submask``) and :meth:`compact` recycles retired slots through a free
  list, keeping masks dense across arbitrarily long split/merge churn.

Stale masks resolve to current leaves in O(stale bits) via the rewrite
table — one AND against the stale-slot mask decides the (overwhelmingly
common) "already current" case, replacing the per-id ``_resolve`` walk of
the frozenset representation.

The index is *lazy and dynamic*: atoms are split only when a new predicate
(a LEC class, a transform image, an incoming DVM region) actually crosses an
existing atom boundary, and sibling atoms that no live :class:`AtomSet`
distinguishes anymore are merged back on :meth:`compact` (wired to the BDD
engine's GC sweeps — "merge on collect").

BDDs remain the source of truth at the boundaries:

* every atom's *extent* is a :class:`~repro.bdd.predicate.Predicate` (a GC
  root, so engine sweeps remap it in place),
* refinement (:meth:`AtomIndex.atomize`) and transform images/preimages are
  computed in BDD land,
* :meth:`AtomIndex.to_predicate` converts an :class:`AtomSet` back to the
  *canonical* BDD of its denotation — because ROBDDs are canonical, a
  counting result computed via atoms serializes to byte-identical DVM wire
  bytes as one computed via raw predicates.

Splitting never changes what an :class:`AtomSet` denotes: when atom ``a``
splits into ``a₁`` and ``a₂`` the children partition the parent, so a set
holding ``a``'s slot still denotes the same packets and is renormalized to
leaf slots lazily.  Hashes survive both splits and merges: every atom
carries a 64-bit token with the invariant ``token(a) == token(a₁) ^
token(a₂)``, so the XOR of a set's member tokens is a denotation-stable
O(1) hash.
"""

from __future__ import annotations

import weakref
from heapq import heappop, heappush
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.bdd.manager import FALSE
from repro.bdd.predicate import PacketSpaceContext, Predicate

__all__ = ["AtomSet", "AtomIndex"]

_ROOT = 0
_MASK64 = (1 << 64) - 1


def _mix(value: int) -> int:
    """SplitMix64 finalizer: a deterministic 64-bit token per atom id."""
    z = (value + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


class AtomSet:
    """An immutable packet set represented as a packed bitset of atoms.

    Supports the same algebra surface as :class:`Predicate` (``& | - ^``,
    ``is_empty``, ``covers``, ``overlaps``, equality, hashing) but every
    operation is a single int op on the mask — bulk machine-word work with
    no per-element iteration and no BDD-node allocation.

    The mask is maintained by the owning index: splits may rewrite it to
    finer slots (same denotation) and :meth:`AtomIndex.compact` may rewrite
    it to coarser ones; neither changes equality or the cached hash, which
    is the XOR of denotation-stable atom tokens.
    """

    __slots__ = ("index", "_mask", "_version", "_hash", "__weakref__")

    def __init__(self, index: "AtomIndex", mask: int, version: int) -> None:
        self.index = index
        self._mask = mask
        self._version = version
        self._hash: Optional[int] = None
        index._track(self)

    # ------------------------------------------------------------------
    # Normalization
    # ------------------------------------------------------------------
    def mask(self) -> int:
        """Current *leaf-slot* bitmask (renormalized lazily after splits).

        Version fast path: when no split happened since this set last
        normalized, the stored mask is returned as-is — no resolution walk
        of any kind (the regression the frozenset representation paid on
        every coerce)."""
        index = self.index
        if self._version != index.version:
            self._mask = index._resolve_mask(self._mask)
            self._version = index.version
        return self._mask

    def ids(self) -> FrozenSet[int]:
        """Current *leaf* atom ids (renormalized lazily after splits)."""
        return self.index._ids_of_mask(self.mask())

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def _coerce(self, other: "AtomSet") -> int:
        if not isinstance(other, AtomSet):
            raise TypeError(f"cannot combine AtomSet with {type(other).__name__}")
        if other.index is not self.index:
            raise ValueError("atom sets belong to different indexes")
        return other.mask()

    # Identity fast paths: hot-path maps intersect/diff mostly-nested
    # regions, where the result IS one of the operands — returning it
    # skips an AtomSet allocation (and its liveness-tracking weakref).
    def __and__(self, other: "AtomSet") -> "AtomSet":
        b = self._coerce(other)
        a = self.mask()
        c = a & b
        if not c:
            return self.index._empty
        if c == a:
            return self
        if c == b:
            return other
        return self.index._make(c)

    def __or__(self, other: "AtomSet") -> "AtomSet":
        b = self._coerce(other)
        a = self.mask()
        c = a | b
        if c == a:
            return self
        if c == b:
            return other
        return self.index._make(c)

    def __sub__(self, other: "AtomSet") -> "AtomSet":
        b = self._coerce(other)
        a = self.mask()
        c = a & ~b
        if c == a:
            return self
        return self.index._make(c)

    def __xor__(self, other: "AtomSet") -> "AtomSet":
        b = self._coerce(other)
        return self.index._make(self.mask() ^ b)

    # ------------------------------------------------------------------
    # Tests
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        # A stale nonzero mask never denotes empty (splits preserve
        # denotation), so no renormalization is needed here.
        return not self._mask

    @property
    def is_universe(self) -> bool:
        return self.mask() == self.index._leaf_mask

    def overlaps(self, other: "AtomSet") -> bool:
        b = self._coerce(other)
        return bool(self.mask() & b)

    def covers(self, other: "AtomSet") -> bool:
        """True iff ``other`` is a subset of this set."""
        b = self._coerce(other)
        return not (b & ~self.mask())

    def __bool__(self) -> bool:
        return bool(self._mask)

    def __len__(self) -> int:
        return self.mask().bit_count()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AtomSet):
            return NotImplemented
        if self.index is not other.index:
            return False
        return self.mask() == other.mask()

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            index = self.index
            token = index._token
            slot_id = index._slot_id
            acc = 0
            m = self._mask
            while m:
                low = m & -m
                acc ^= token[slot_id[low.bit_length() - 1]]
                m ^= low
            # The XOR is invariant under split/merge, so it never needs
            # recomputing even after renormalization.
            h = self._hash = acc
        return h

    # ------------------------------------------------------------------
    # Boundary conversion
    # ------------------------------------------------------------------
    def to_predicate(self) -> Predicate:
        return self.index.to_predicate(self)

    def size(self) -> int:
        """BDD node count of the canonical predicate (metrics parity)."""
        return self.to_predicate().size()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"AtomSet({self._mask.bit_count()} atoms)"


class AtomIndex:
    """A network-wide dynamic partition of packet space into atoms.

    Atoms form a binary refinement forest rooted at the universe atom:
    leaves are the current partition, internal atoms record past splits so
    stale :class:`AtomSet` masks resolve to their leaf descendants through
    the slot rewrite table.  One index serves one
    :class:`PacketSpaceContext` (create via
    :meth:`PacketSpaceContext.atom_index`), shared by every verifier, LEC
    table and CIB on that context.
    """

    def __init__(self, ctx: PacketSpaceContext) -> None:
        self.ctx = ctx
        #: Bumped on every split; AtomSets renormalize when it moves.
        self.version = 0
        self._extent: Dict[int, Predicate] = {_ROOT: ctx.universe}
        self._children: Dict[int, Tuple[int, int]] = {}
        self._token: Dict[int, int] = {_ROOT: _mix(_ROOT)}
        self._next_id = 1
        self._leaf_count = 1
        # Slot layer: dense bit positions for the mask representation.
        # atom id <-> slot; retired (split-parent) slots keep their mapping
        # until compact() recycles them through the free list.
        self._slot_of: Dict[int, int] = {_ROOT: 0}
        self._slot_id: Dict[int, int] = {0: _ROOT}
        self._num_slots = 1
        self._free_slots: List[int] = []  # heap: lowest slot reused first
        #: Bitmask of the current leaf slots (the partition).
        self._leaf_mask = 1
        #: Bitmask of retired slots awaiting compact-time recycling.
        self._stale_mask = 0
        # Mask rewrite table: retired slot -> bitmask of its *current* leaf
        # descendants.  Maintained eagerly at split time (ancestors whose
        # entry contains the splitting slot are patched through the reverse
        # index below), so resolving a stale mask is pure table lookups —
        # no forest walk.
        self._rewrite: Dict[int, int] = {}
        # leaf slot -> retired slots whose rewrite mask contains it.
        self._rewrite_users: Dict[int, Set[int]] = {}
        # node id -> slot mask whose extents union to that BDD function.
        # Cached masks may since have split; _resolve_mask makes them
        # current.  Raw node ids go stale on engine GC: the remap hook
        # rekeys the live entries (and runs compact — "merge on collect").
        self._atomize_cache: Dict[int, int] = {}
        # leaf-slot mask -> canonical Predicate of the union.  Values are
        # GC roots (remapped in place by sweeps); keys go stale only on
        # compact, which purges or clears the table before recycling slots
        # (a recycled slot must never collide with an old mask key).
        self._pred_cache: Dict[int, Predicate] = {}
        # Liveness registry for compact(): a plain list of weakrefs, pruned
        # amortized-O(1) in _track (a WeakSet's per-add callback machinery
        # is ~10x the cost of ref+append on this hot path).
        self._live: List["weakref.ref[AtomSet]"] = []
        self._prune_at = 4096
        self._empty = AtomSet(self, 0, 0)
        # Stats (exported via profile()).
        self.atomize_calls = 0
        self.atomize_hits = 0
        self.splits = 0
        self.merges = 0
        self.compactions = 0
        self.resolves = 0
        # Splits counter at the last merge scan: compact() is a no-op
        # unless the forest refined since, so steady-state churn (no new
        # boundaries) pays nothing per engine sweep.
        self._splits_at_compact = 0
        ctx.mgr.register_remap_hook(self._on_engine_gc)

    # ------------------------------------------------------------------
    # AtomSet constructors
    # ------------------------------------------------------------------
    def _track(self, aset: AtomSet) -> None:
        live = self._live
        live.append(weakref.ref(aset))
        if len(live) >= self._prune_at:
            self._live = live = [ref for ref in live if ref() is not None]
            self._prune_at = max(4096, 2 * len(live))

    def _make(self, mask: int) -> AtomSet:
        if not mask:
            return self._empty
        return AtomSet(self, mask, self.version)

    @property
    def empty(self) -> AtomSet:
        return self._empty

    def from_mask(self, mask: int) -> AtomSet:
        """AtomSet over a raw leaf-slot mask the caller read from live sets.

        The mask must cover current leaf slots only (reads of tracked sets
        always do); used by the fused verifier kernels, which work on raw
        masks and wrap only their final results."""
        return self._make(mask)

    def from_ids(self, ids: Iterable[int]) -> AtomSet:
        """AtomSet over raw atom ids the caller read from live sets."""
        slot_of = self._slot_of
        mask = 0
        for aid in ids:
            mask |= 1 << slot_of[aid]
        return self._make(mask)

    def universe(self) -> AtomSet:
        return self._make(self._leaf_mask)

    def union(self, asets: Iterable[AtomSet]) -> AtomSet:
        mask = 0
        for aset in asets:
            mask |= aset.mask()
        return self._make(mask)

    # ------------------------------------------------------------------
    # Slot bookkeeping
    # ------------------------------------------------------------------
    def _alloc_slot(self, aid: int) -> int:
        if self._free_slots:
            slot = heappop(self._free_slots)
        else:
            slot = self._num_slots
            self._num_slots += 1
        self._slot_of[aid] = slot
        self._slot_id[slot] = aid
        return slot

    def _ids_of_mask(self, mask: int) -> FrozenSet[int]:
        slot_id = self._slot_id
        out = []
        while mask:
            low = mask & -mask
            out.append(slot_id[low.bit_length() - 1])
            mask ^= low
        return frozenset(out)

    def mask_to_sorted_ids(self, mask: int) -> List[int]:
        """Atom ids of a mask's slots in ascending id order (wire order)."""
        slot_id = self._slot_id
        out = []
        while mask:
            low = mask & -mask
            out.append(slot_id[low.bit_length() - 1])
            mask ^= low
        out.sort()
        return out

    def _resolve_mask(self, mask: int) -> int:
        """Rewrite retired slots in ``mask`` to their current leaf slots.

        One AND decides the common already-current case; otherwise each
        stale bit is replaced by its rewrite-table mask — O(stale bits),
        never a forest walk."""
        stale = mask & self._stale_mask
        if not stale:
            return mask
        self.resolves += 1
        out = mask & ~stale
        rewrite = self._rewrite
        while stale:
            low = stale & -stale
            out |= rewrite[low.bit_length() - 1]
            stale ^= low
        return out

    # ------------------------------------------------------------------
    # Refinement
    # ------------------------------------------------------------------
    def _leaves_of(self, aid: int) -> List[int]:
        out: List[int] = []
        stack = [aid]
        children = self._children
        while stack:
            a = stack.pop()
            kids = children.get(a)
            if kids is None:
                out.append(a)
            else:
                stack.extend(kids)
        return out

    def _subtree_leaf_mask(self, aid: int) -> int:
        """Leaf-slot mask of the whole subtree under ``aid``.

        A live leaf contributes its bit; a retired atom contributes its
        rewrite mask; an atom whose slot was recycled by an earlier compact
        falls back to walking its children."""
        out = 0
        stack = [aid]
        slot_of = self._slot_of
        leaf_mask = self._leaf_mask
        rewrite = self._rewrite
        children = self._children
        while stack:
            a = stack.pop()
            slot = slot_of.get(a)
            if slot is not None:
                bit = 1 << slot
                if leaf_mask & bit:
                    out |= bit
                    continue
                out |= rewrite[slot]
                continue
            stack.extend(children[a])
        return out

    def _split(self, aid: int, inside_node: int) -> int:
        """Split leaf ``aid`` along a BDD node; return the inside child."""
        ctx = self.ctx
        extent = self._extent[aid]
        outside_node = ctx.mgr.apply_diff(extent.node, inside_node)
        c1 = self._next_id
        c2 = c1 + 1
        self._next_id = c2 + 1
        self._extent[c1] = ctx.wrap(inside_node)
        self._extent[c2] = ctx.wrap(outside_node)
        self._children[aid] = (c1, c2)
        t1 = _mix(c1)
        self._token[c1] = t1
        # token(parent) == token(c1) ^ token(c2): XOR-hash stability.
        self._token[c2] = self._token[aid] ^ t1
        # Slot layer: retire the parent slot into the rewrite table and
        # patch every ancestor entry that contained it, so stale-mask
        # resolution stays a flat table lookup at any refinement depth.
        pslot = self._slot_of[aid]
        pbit = 1 << pslot
        s1 = self._alloc_slot(c1)
        s2 = self._alloc_slot(c2)
        kid_mask = (1 << s1) | (1 << s2)
        self._leaf_mask = (self._leaf_mask & ~pbit) | kid_mask
        self._stale_mask |= pbit
        users = self._rewrite_users.pop(pslot, None)
        rewrite = self._rewrite
        rewrite[pslot] = kid_mask
        referrers = {pslot}
        if users:
            for r in users:
                rewrite[r] = (rewrite[r] & ~pbit) | kid_mask
            referrers |= users
        self._rewrite_users[s1] = referrers
        self._rewrite_users[s2] = set(referrers)
        self._leaf_count += 1
        self.splits += 1
        self.version += 1
        return c1

    def atomize(self, pred: Predicate) -> AtomSet:
        """The AtomSet denoting exactly ``pred``, refining atoms as needed."""
        return self._make(self.atomize_mask(pred))

    def atomize_ids(self, pred: Predicate) -> FrozenSet[int]:
        """:meth:`atomize` without the AtomSet wrapper: the raw leaf-id set."""
        return self._ids_of_mask(self.atomize_mask(pred))

    def atomize_mask(self, pred: Predicate) -> int:
        """The leaf-slot mask denoting exactly ``pred``.

        The cheap entry point for callers that only *test* a region
        (overlap filters, the fused kernels) and would otherwise allocate —
        and liveness-track — a throwaway AtomSet per query.

        Walks the refinement forest, pruning whole subtrees that are
        disjoint from or contained in ``pred``, and splits only the leaves
        that actually straddle the new boundary.
        """
        self.atomize_calls += 1
        node = pred.node
        if node == FALSE:
            return 0
        cached = self._atomize_cache.get(node)
        if cached is not None:
            self.atomize_hits += 1
            resolved = self._resolve_mask(cached)
            if resolved != cached:
                self._atomize_cache[node] = resolved
            return resolved
        mgr = self.ctx.mgr
        apply_and = mgr.apply_and
        extent = self._extent
        children = self._children
        out = 0
        stack = [_ROOT]
        while stack:
            aid = stack.pop()
            ext_node = extent[aid].node
            inter = apply_and(ext_node, node)
            if inter == FALSE:
                continue
            if inter == ext_node:
                # Entirely inside: take every leaf below without BDD work.
                out |= self._subtree_leaf_mask(aid)
                continue
            kids = children.get(aid)
            if kids is not None:
                stack.extend(kids)
            else:
                c1 = self._split(aid, inter)
                out |= 1 << self._slot_of[c1]
        self._atomize_cache[node] = out
        return out

    # ------------------------------------------------------------------
    # Boundary conversions
    # ------------------------------------------------------------------
    def to_predicate(self, aset: AtomSet) -> Predicate:
        """Canonical BDD predicate of an AtomSet's denotation."""
        return self.mask_to_predicate(aset.mask())

    def mask_to_predicate(self, mask: int) -> Predicate:
        """Canonical BDD predicate of a leaf-slot mask's denotation.

        Memoized by mask; the reverse direction is seeded into the atomize
        cache so a round trip (convert, ship, re-atomize) costs one dict
        hit — which is what keeps serial DVM message handling cheap.  The
        OR chain runs in ascending atom-id order, so the (canonical) result
        is built the same way regardless of slot assignment.
        """
        if not mask:
            return self.ctx.empty
        pred = self._pred_cache.get(mask)
        if pred is None:
            mgr = self.ctx.mgr
            extent = self._extent
            node = FALSE
            for aid in self.mask_to_sorted_ids(mask):
                node = mgr.apply_or(node, extent[aid].node)
            pred = self.ctx.wrap(node)
            self._pred_cache[mask] = pred
        # Seed the reverse direction (outside the miss branch: engine GC
        # clears the atomize cache while this table survives, so round
        # trips keep repairing it) — convert, ship, re-atomize is one hit.
        self._atomize_cache.setdefault(pred.node, mask)
        return pred

    def transform_image(self, transform, aset: AtomSet) -> AtomSet:
        """Image of an AtomSet under a header rewrite (BDD-land round trip).

        The image may cross existing atom boundaries; atomize refines them.
        """
        return self.atomize(transform.apply(self.to_predicate(aset)))

    def transform_preimage(self, transform, aset: AtomSet) -> AtomSet:
        return self.atomize(transform.preimage(self.to_predicate(aset)))

    # ------------------------------------------------------------------
    # Merging ("collect")
    # ------------------------------------------------------------------
    def _on_engine_gc(self, remap: Dict[int, int]) -> None:
        """Engine sweep hook: rekey the atomize cache, then merge atoms.

        The hook runs after root holders are remapped, so the extent and
        pred-cache Predicates already carry post-sweep ids; the atomize
        cache is keyed by raw node id and is rekeyed through ``remap``
        (entries for dead predicates drop out).  Keeping the cache alive
        across sweeps is what makes GC nearly free in atoms mode — the
        hot path never re-walks the refinement forest after a collection.
        """
        self._atomize_cache = {
            remap[node]: mask
            for node, mask in self._atomize_cache.items()
            if node in remap
        }
        self.compact()

    def compact(self) -> int:
        """Merge sibling leaves no live AtomSet distinguishes; return the
        number of merges performed.

        Runs at engine GC safe points: every live AtomSet is renormalized
        to leaves, retired slots are recycled into the free list (after
        resolving cached atomize masks and purging stale pred-cache keys,
        so a recycled slot can never collide with an old mask), and
        undistinguished sibling pairs collapse into their parent (rewriting
        the live masks in place — denotation and XOR hash are both
        preserved by the token invariant).  Merged-away extents are
        released so the *next* engine sweep reclaims their BDD nodes.

        Skipped entirely (no live-set scan) when no split happened since
        the previous scan: merges only become possible once a boundary has
        been introduced, so the forest is already as coarse as that scan
        left it and steady-state churn pays nothing here.
        """
        if self.splits == self._splits_at_compact:
            return 0
        self._splits_at_compact = self.splits
        alive = []
        refs = []
        for ref in self._live:
            aset = ref()
            if aset is None:
                continue
            refs.append(ref)
            alive.append(aset)
        self._live = refs  # prune dead refs while we're here
        live = [aset for aset in alive if aset is not self._empty]
        for aset in live:
            aset.mask()  # renormalize against the current version
        # Recycle every retired slot: live masks are current now, cached
        # atomize masks are resolved through the still-valid rewrite table,
        # and pred-cache keys containing a retired slot are purged (their
        # slots are about to be reassigned).
        stale = self._stale_mask
        if stale:
            self._atomize_cache = {
                node: self._resolve_mask(mask)
                for node, mask in self._atomize_cache.items()
            }
            self._pred_cache = {
                mask: pred
                for mask, pred in self._pred_cache.items()
                if not (mask & stale)
            }
            slot_id = self._slot_id
            slot_of = self._slot_of
            while stale:
                low = stale & -stale
                slot = low.bit_length() - 1
                aid = slot_id.pop(slot)
                del slot_of[aid]
                heappush(self._free_slots, slot)
                stale ^= low
            self._stale_mask = 0
            self._rewrite.clear()
            self._rewrite_users.clear()
        merged_total = 0
        while True:
            # slot -> set of live-set indices whose mask contains it.
            membership: Dict[int, Set[int]] = {}
            for i, aset in enumerate(live):
                m = aset._mask
                while m:
                    low = m & -m
                    membership.setdefault(low.bit_length() - 1, set()).add(i)
                    m ^= low
            merged_this_round = 0
            for parent, (c1, c2) in list(self._children.items()):
                if c1 in self._children or c2 in self._children:
                    continue  # only merge leaf pairs
                s1 = self._slot_of[c1]
                s2 = self._slot_of[c2]
                if membership.get(s1, set()) != membership.get(s2, set()):
                    continue
                pair = (1 << s1) | (1 << s2)
                # Revive the parent at a fresh slot; its extent, id and
                # token were kept (splits mint ids, merges restore them).
                pslot = self._alloc_slot(parent)
                pbit = 1 << pslot
                for aset in live:
                    m = aset._mask
                    if m & pair:
                        aset._mask = (m & ~pair) | pbit
                self._leaf_mask = (self._leaf_mask & ~pair) | pbit
                del self._children[parent]
                del self._extent[c1]
                del self._extent[c2]
                del self._token[c1]
                del self._token[c2]
                del self._slot_of[c1]
                del self._slot_of[c2]
                del self._slot_id[s1]
                del self._slot_id[s2]
                heappush(self._free_slots, s1)
                heappush(self._free_slots, s2)
                self._leaf_count -= 1
                self.merges += 1
                merged_this_round += 1
            if not merged_this_round:
                break
            merged_total += merged_this_round
        if merged_total:
            self._atomize_cache.clear()
            self._pred_cache.clear()
            self.version += 1
            # The bumped version would send every set through the resolver;
            # they are already at leaves, so pin their versions forward.
            for aset in live:
                aset._version = self.version
            self._empty._version = self.version
        self.compactions += 1
        return merged_total

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_atoms(self) -> int:
        return self._leaf_count

    def extent(self, aid: int) -> Predicate:
        """The packets atom ``aid`` denotes.

        Stable for the id's lifetime: splits mint fresh ids instead of
        mutating extents, and a merge revives the parent id with its
        original extent — which is what lets the parallel backend define an
        atom to a peer once and reference it by id forever after.
        """
        return self._extent[aid]

    def profile(self) -> Dict[str, int]:
        return {
            "atoms": self._leaf_count,
            "splits": self.splits,
            "merges": self.merges,
            "compactions": self.compactions,
            "atomize_calls": self.atomize_calls,
            "atomize_hits": self.atomize_hits,
            "pred_cache": len(self._pred_cache),
            "slots": self._num_slots,
            "resolves": self.resolves,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"AtomIndex({self._leaf_count} atoms, v{self.version})"
