"""Dynamic atomic-predicate index: packet space as numbered disjoint atoms.

Yang & Lam's *atomic predicates* observation, as dynamized by APKeep
(NSDI'20): once packet space is partitioned into the coarsest classes no
installed predicate distinguishes, every predicate of interest is a *set of
atom ids* and all the algebra the DVM hot path performs — splitting CIB
regions along LEC boundaries, diffing withdrawn regions, unioning changed
regions — collapses from BDD apply-walks to integer-set operations.

The index is *lazy and dynamic*: atoms are split only when a new predicate
(a LEC class, a transform image, an incoming DVM region) actually crosses an
existing atom boundary, and sibling atoms that no live :class:`AtomSet`
distinguishes anymore are merged back on :meth:`compact` (wired to the BDD
engine's GC sweeps — "merge on collect").

BDDs remain the source of truth at the boundaries:

* every atom's *extent* is a :class:`~repro.bdd.predicate.Predicate` (a GC
  root, so engine sweeps remap it in place),
* refinement (:meth:`AtomIndex.atomize`) and transform images/preimages are
  computed in BDD land,
* :meth:`AtomIndex.to_predicate` converts an :class:`AtomSet` back to the
  *canonical* BDD of its denotation — because ROBDDs are canonical, a
  counting result computed via atoms serializes to byte-identical DVM wire
  bytes as one computed via raw predicates.

Splitting never changes what an :class:`AtomSet` denotes: when atom ``a``
splits into ``a₁`` and ``a₂`` the children partition the parent, so a set
holding ``a`` still denotes the same packets and is renormalized to leaves
lazily.  Hashes survive both splits and merges: every atom carries a 64-bit
token with the invariant ``token(a) == token(a₁) ^ token(a₂)``, so the XOR
of a set's member tokens is a denotation-stable O(1) hash.
"""

from __future__ import annotations

import weakref
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.bdd.manager import FALSE
from repro.bdd.predicate import PacketSpaceContext, Predicate

__all__ = ["AtomSet", "AtomIndex"]

_ROOT = 0
_MASK64 = (1 << 64) - 1


def _mix(value: int) -> int:
    """SplitMix64 finalizer: a deterministic 64-bit token per atom id."""
    z = (value + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


class AtomSet:
    """An immutable packet set represented as a set of atom ids.

    Supports the same algebra surface as :class:`Predicate` (``& | - ^``,
    ``is_empty``, ``covers``, ``overlaps``, equality, hashing) but every
    operation is a frozenset operation on small ints — O(k) with C-speed
    constants and no BDD-node allocation.

    The id set is maintained by the owning index: splits may rewrite
    ``_ids`` to finer atoms (same denotation) and :meth:`AtomIndex.compact`
    may rewrite it to coarser ones; neither changes equality or the cached
    hash, which is the XOR of denotation-stable atom tokens.
    """

    __slots__ = ("index", "_ids", "_version", "_hash", "__weakref__")

    def __init__(self, index: "AtomIndex", ids: FrozenSet[int], version: int) -> None:
        self.index = index
        self._ids = ids
        self._version = version
        self._hash: Optional[int] = None
        index._track(self)

    # ------------------------------------------------------------------
    # Normalization
    # ------------------------------------------------------------------
    def ids(self) -> FrozenSet[int]:
        """Current *leaf* atom ids (renormalized lazily after splits)."""
        index = self.index
        if self._version != index.version:
            self._ids = index._resolve(self._ids)
            self._version = index.version
        return self._ids

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def _coerce(self, other: "AtomSet") -> FrozenSet[int]:
        if not isinstance(other, AtomSet):
            raise TypeError(f"cannot combine AtomSet with {type(other).__name__}")
        if other.index is not self.index:
            raise ValueError("atom sets belong to different indexes")
        return other.ids()

    # Identity fast paths: hot-path maps intersect/diff mostly-nested
    # regions, where the result IS one of the operands — returning it
    # skips an AtomSet allocation (and its liveness-tracking weakref).
    def __and__(self, other: "AtomSet") -> "AtomSet":
        a, b = self.ids(), self._coerce(other)
        if not a or not b:
            return self.index._empty
        if a <= b:
            return self
        if b <= a:
            return other
        return self.index._make(a & b)

    def __or__(self, other: "AtomSet") -> "AtomSet":
        a, b = self.ids(), self._coerce(other)
        if not b or b <= a:
            return self
        if not a or a <= b:
            return other
        return self.index._make(a | b)

    def __sub__(self, other: "AtomSet") -> "AtomSet":
        a, b = self.ids(), self._coerce(other)
        if not a or not b or a.isdisjoint(b):
            return self
        return self.index._make(a - b)

    def __xor__(self, other: "AtomSet") -> "AtomSet":
        return self.index._make(self.ids() ^ self._coerce(other))

    # ------------------------------------------------------------------
    # Tests
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return not self._ids

    @property
    def is_universe(self) -> bool:
        return self.ids() == self.index.universe().ids()

    def overlaps(self, other: "AtomSet") -> bool:
        return not self.ids().isdisjoint(self._coerce(other))

    def covers(self, other: "AtomSet") -> bool:
        """True iff ``other`` is a subset of this set."""
        return self._coerce(other) <= self.ids()

    def __bool__(self) -> bool:
        return bool(self._ids)

    def __len__(self) -> int:
        return len(self.ids())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AtomSet):
            return NotImplemented
        if self.index is not other.index:
            return False
        if hash(self) != hash(other):
            return False
        return self.ids() == other.ids()

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            token = self.index._token
            acc = 0
            for aid in self._ids:
                acc ^= token[aid]
            # The XOR is invariant under split/merge, so it never needs
            # recomputing even after renormalization.
            h = self._hash = acc
        return h

    # ------------------------------------------------------------------
    # Boundary conversion
    # ------------------------------------------------------------------
    def to_predicate(self) -> Predicate:
        return self.index.to_predicate(self)

    def size(self) -> int:
        """BDD node count of the canonical predicate (metrics parity)."""
        return self.to_predicate().size()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"AtomSet({len(self._ids)} atoms)"


class AtomIndex:
    """A network-wide dynamic partition of packet space into atoms.

    Atoms form a binary refinement forest rooted at the universe atom:
    leaves are the current partition, internal atoms record past splits so
    stale :class:`AtomSet` ids resolve to their leaf descendants.  One index
    serves one :class:`PacketSpaceContext` (create via
    :meth:`PacketSpaceContext.atom_index`), shared by every verifier, LEC
    table and CIB on that context.
    """

    def __init__(self, ctx: PacketSpaceContext) -> None:
        self.ctx = ctx
        #: Bumped on every split; AtomSets renormalize when it moves.
        self.version = 0
        self._extent: Dict[int, Predicate] = {_ROOT: ctx.universe}
        self._children: Dict[int, Tuple[int, int]] = {}
        self._token: Dict[int, int] = {_ROOT: _mix(_ROOT)}
        self._next_id = 1
        self._leaf_count = 1
        # node id -> atom ids whose extents union to that BDD function.
        # Cached ids may since have split; _resolve makes them current.
        # Raw node ids go stale on engine GC: the remap hook rekeys the
        # live entries (and runs compact — "merge on collect").
        self._atomize_cache: Dict[int, FrozenSet[int]] = {}
        # sorted leaf ids -> canonical Predicate of their union.  Values are
        # GC roots (remapped in place by sweeps); keys go stale only on
        # compact, which clears the table.
        self._pred_cache: Dict[Tuple[int, ...], Predicate] = {}
        # Liveness registry for compact(): a plain list of weakrefs, pruned
        # amortized-O(1) in _track (a WeakSet's per-add callback machinery
        # is ~10x the cost of ref+append on this hot path).
        self._live: List["weakref.ref[AtomSet]"] = []
        self._prune_at = 4096
        self._empty = AtomSet(self, frozenset(), 0)
        # Stats (exported via profile()).
        self.atomize_calls = 0
        self.atomize_hits = 0
        self.splits = 0
        self.merges = 0
        self.compactions = 0
        # Splits counter at the last merge scan: compact() is a no-op
        # unless the forest refined since, so steady-state churn (no new
        # boundaries) pays nothing per engine sweep.
        self._splits_at_compact = 0
        ctx.mgr.register_remap_hook(self._on_engine_gc)

    # ------------------------------------------------------------------
    # AtomSet constructors
    # ------------------------------------------------------------------
    def _track(self, aset: AtomSet) -> None:
        live = self._live
        live.append(weakref.ref(aset))
        if len(live) >= self._prune_at:
            self._live = live = [ref for ref in live if ref() is not None]
            self._prune_at = max(4096, 2 * len(live))

    def _make(self, ids: FrozenSet[int]) -> AtomSet:
        if not ids:
            return self._empty
        return AtomSet(self, ids, self.version)

    @property
    def empty(self) -> AtomSet:
        return self._empty

    def from_ids(self, ids: Iterable[int]) -> AtomSet:
        """AtomSet over raw atom ids the caller read from live sets.

        The ids must be current leaves (reads of tracked sets always are);
        used by set-algebra loops that work on ``frozenset`` snapshots and
        wrap only their final results."""
        return self._make(frozenset(ids))

    def universe(self) -> AtomSet:
        return self._make(frozenset(self._leaves_of(_ROOT)))

    def union(self, asets: Iterable[AtomSet]) -> AtomSet:
        ids: FrozenSet[int] = frozenset()
        for aset in asets:
            ids = ids | aset.ids()
        return self._make(ids)

    # ------------------------------------------------------------------
    # Refinement
    # ------------------------------------------------------------------
    def _leaves_of(self, aid: int) -> List[int]:
        out: List[int] = []
        stack = [aid]
        children = self._children
        while stack:
            a = stack.pop()
            kids = children.get(a)
            if kids is None:
                out.append(a)
            else:
                stack.extend(kids)
        return out

    def _resolve(self, ids: FrozenSet[int]) -> FrozenSet[int]:
        """Expand possibly-split atom ids to current leaves."""
        children = self._children
        if not any(aid in children for aid in ids):
            return ids
        out: List[int] = []
        for aid in ids:
            if aid in children:
                out.extend(self._leaves_of(aid))
            else:
                out.append(aid)
        return frozenset(out)

    def _split(self, aid: int, inside_node: int) -> int:
        """Split leaf ``aid`` along a BDD node; return the inside child."""
        ctx = self.ctx
        extent = self._extent[aid]
        outside_node = ctx.mgr.apply_diff(extent.node, inside_node)
        c1 = self._next_id
        c2 = c1 + 1
        self._next_id = c2 + 1
        self._extent[c1] = ctx.wrap(inside_node)
        self._extent[c2] = ctx.wrap(outside_node)
        self._children[aid] = (c1, c2)
        t1 = _mix(c1)
        self._token[c1] = t1
        # token(parent) == token(c1) ^ token(c2): XOR-hash stability.
        self._token[c2] = self._token[aid] ^ t1
        self._leaf_count += 1
        self.splits += 1
        self.version += 1
        return c1

    def atomize(self, pred: Predicate) -> AtomSet:
        """The AtomSet denoting exactly ``pred``, refining atoms as needed.

        Walks the refinement forest, pruning whole subtrees that are
        disjoint from or contained in ``pred``, and splits only the leaves
        that actually straddle the new boundary.
        """
        return self._make(self.atomize_ids(pred))

    def atomize_ids(self, pred: Predicate) -> FrozenSet[int]:
        """:meth:`atomize` without the AtomSet wrapper: the raw leaf-id set.

        The cheap entry point for callers that only *test* a region
        (overlap filters) and would otherwise allocate — and liveness-track
        — a throwaway AtomSet per query.
        """
        self.atomize_calls += 1
        node = pred.node
        if node == FALSE:
            return self._empty._ids
        cached = self._atomize_cache.get(node)
        if cached is not None:
            self.atomize_hits += 1
            resolved = self._resolve(cached)
            if resolved is not cached:
                self._atomize_cache[node] = resolved
            return resolved
        mgr = self.ctx.mgr
        apply_and = mgr.apply_and
        extent = self._extent
        children = self._children
        out: List[int] = []
        stack = [_ROOT]
        while stack:
            aid = stack.pop()
            ext_node = extent[aid].node
            inter = apply_and(ext_node, node)
            if inter == FALSE:
                continue
            if inter == ext_node:
                # Entirely inside: take every leaf below without BDD work.
                out.extend(self._leaves_of(aid))
                continue
            kids = children.get(aid)
            if kids is not None:
                stack.extend(kids)
            else:
                out.append(self._split(aid, inter))
        ids = frozenset(out)
        self._atomize_cache[node] = ids
        return ids

    # ------------------------------------------------------------------
    # Boundary conversions
    # ------------------------------------------------------------------
    def to_predicate(self, aset: AtomSet) -> Predicate:
        """Canonical BDD predicate of an AtomSet's denotation.

        Memoized by leaf-id tuple; the reverse direction is seeded into the
        atomize cache so a round trip (convert, ship, re-atomize) costs one
        dict hit — which is what keeps serial DVM message handling cheap.
        """
        ids = aset.ids()
        if not ids:
            return self.ctx.empty
        key = tuple(sorted(ids))
        pred = self._pred_cache.get(key)
        if pred is None:
            mgr = self.ctx.mgr
            extent = self._extent
            node = FALSE
            for aid in key:
                node = mgr.apply_or(node, extent[aid].node)
            pred = self.ctx.wrap(node)
            self._pred_cache[key] = pred
        # Seed the reverse direction (outside the miss branch: engine GC
        # clears the atomize cache while this table survives, so round
        # trips keep repairing it) — convert, ship, re-atomize is one hit.
        self._atomize_cache.setdefault(pred.node, ids)
        return pred

    def transform_image(self, transform, aset: AtomSet) -> AtomSet:
        """Image of an AtomSet under a header rewrite (BDD-land round trip).

        The image may cross existing atom boundaries; atomize refines them.
        """
        return self.atomize(transform.apply(self.to_predicate(aset)))

    def transform_preimage(self, transform, aset: AtomSet) -> AtomSet:
        return self.atomize(transform.preimage(self.to_predicate(aset)))

    # ------------------------------------------------------------------
    # Merging ("collect")
    # ------------------------------------------------------------------
    def _on_engine_gc(self, remap: Dict[int, int]) -> None:
        """Engine sweep hook: rekey the atomize cache, then merge atoms.

        The hook runs after root holders are remapped, so the extent and
        pred-cache Predicates already carry post-sweep ids; the atomize
        cache is keyed by raw node id and is rekeyed through ``remap``
        (entries for dead predicates drop out).  Keeping the cache alive
        across sweeps is what makes GC nearly free in atoms mode — the
        hot path never re-walks the refinement forest after a collection.
        """
        self._atomize_cache = {
            remap[node]: ids
            for node, ids in self._atomize_cache.items()
            if node in remap
        }
        self.compact()

    def compact(self) -> int:
        """Merge sibling leaves no live AtomSet distinguishes; return the
        number of merges performed.

        Runs at engine GC safe points: every live AtomSet is renormalized to
        leaves, undistinguished sibling pairs collapse into their parent
        (rewriting the live sets in place — denotation and XOR hash are both
        preserved by the token invariant), and the conversion caches are
        dropped.  Merged-away extents are released so the *next* engine
        sweep reclaims their BDD nodes.

        Skipped entirely (no live-set scan) when no split happened since
        the previous scan: merges only become possible once a boundary has
        been introduced, so the forest is already as coarse as that scan
        left it and steady-state churn pays nothing here.
        """
        if self.splits == self._splits_at_compact:
            return 0
        self._splits_at_compact = self.splits
        alive = []
        refs = []
        for ref in self._live:
            aset = ref()
            if aset is None:
                continue
            refs.append(ref)
            alive.append(aset)
        self._live = refs  # prune dead refs while we're here
        live = [aset for aset in alive if aset is not self._empty]
        for aset in live:
            aset.ids()  # renormalize against the current version
        merged_total = 0
        while True:
            # leaf -> frozenset of live-set indices containing it.
            membership: Dict[int, set] = {}
            for i, aset in enumerate(live):
                for aid in aset._ids:
                    membership.setdefault(aid, set()).add(i)
            merged: Dict[int, int] = {}  # child -> parent
            for parent, (c1, c2) in list(self._children.items()):
                if c1 in self._children or c2 in self._children:
                    continue  # only merge leaf pairs
                if membership.get(c1, set()) != membership.get(c2, set()):
                    continue
                merged[c1] = parent
                merged[c2] = parent
                del self._children[parent]
                del self._extent[c1]
                del self._extent[c2]
                del self._token[c1]
                del self._token[c2]
                self._leaf_count -= 1
                self.merges += 1
                merged_total += 1
            if not merged:
                break
            for aset in live:
                ids = aset._ids
                if any(aid in merged for aid in ids):
                    aset._ids = frozenset(
                        merged.get(aid, aid) for aid in ids
                    )
        if merged_total:
            self._atomize_cache.clear()
            self._pred_cache.clear()
            self.version += 1
            # The bumped version would send every set through _resolve;
            # they are already at leaves, so pin their versions forward.
            for aset in live:
                aset._version = self.version
            self._empty._version = self.version
        self.compactions += 1
        return merged_total

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_atoms(self) -> int:
        return self._leaf_count

    def extent(self, aid: int) -> Predicate:
        """The packets atom ``aid`` denotes.

        Stable for the id's lifetime: splits mint fresh ids instead of
        mutating extents, and a merge revives the parent id with its
        original extent — which is what lets the parallel backend define an
        atom to a peer once and reference it by id forever after.
        """
        return self._extent[aid]

    def profile(self) -> Dict[str, int]:
        return {
            "atoms": self._leaf_count,
            "splits": self.splits,
            "merges": self.merges,
            "compactions": self.compactions,
            "atomize_calls": self.atomize_calls,
            "atomize_hits": self.atomize_hits,
            "pred_cache": len(self._pred_cache),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"AtomIndex({self._leaf_count} atoms, v{self.version})"
