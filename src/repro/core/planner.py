"""The verification planner (§4).

Given an invariant and the topology (never the data plane — DPVNet is
data-plane independent, §2.2.2), the planner:

1. compiles every behavior atom's path expression to a minimal DFA;
2. builds the DPVNet, choosing the product construction for plain regexes
   and the simple-path enumeration for ``loop_free`` / length-filtered
   expressions (see :mod:`repro.core.dpvnet`);
3. decomposes the counting problem into per-device :class:`DeviceTask`s;
4. for one-shot (centralized) verification, runs Algorithm 1 and evaluates
   the behavior formula over the resulting count sets.

``equal``-operator atoms short-circuit into *local checks* (§4.2): every
node only checks that its device forwards the packet space to all of the
node's downstream-neighbor devices — the RCDC local contract as a special
case; no counting or communication is needed.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.automata.dfa import Dfa, compile_regex
from repro.bdd.predicate import PacketSpaceContext, Predicate
from repro.core.counting import CountSet, singleton, zero_vec
from repro.core.dpvnet import (
    DpvNet,
    build_enumeration_dpvnet,
    build_product_dpvnet,
)
from repro.core.invariant import (
    Atom,
    Invariant,
    MatchKind,
    collect_atoms,
    evaluate_behavior,
    positive_count_exps,
)
from repro.core.offline import count_sources
from repro.core.result import VerificationResult, Violation
from repro.core.tasks import DeviceTask, NeighborRef, NodeTask, TaskSet
from repro.dataplane.action import EXTERNAL
from repro.dataplane.device import DevicePlane
from repro.errors import PlannerError, SpecificationError
from repro.topology.graph import Topology

__all__ = ["Planner"]


class Planner:
    """Plans and (optionally) centrally executes verification."""

    def __init__(self, topology: Topology, ctx: PacketSpaceContext) -> None:
        self.topology = topology
        self.ctx = ctx
        self._dist_cache: Dict[str, Dict[str, int]] = {}

    # ------------------------------------------------------------------
    # DPVNet construction
    # ------------------------------------------------------------------
    def compile_atoms(self, invariant: Invariant) -> Tuple[List[Atom], List[Dfa]]:
        atoms = collect_atoms(invariant.behavior)
        if not atoms:
            raise SpecificationError("behavior has no atoms")
        kinds = {atom.kind for atom in atoms}
        if MatchKind.EQUAL in kinds and len(atoms) > 1:
            raise SpecificationError(
                "equal atoms cannot be combined with other atoms"
            )
        alphabet = self.topology.devices
        dfas = [compile_regex(atom.path.regex, alphabet) for atom in atoms]
        return atoms, dfas

    def build_dpvnet(
        self,
        invariant: Invariant,
        topology: Optional[Topology] = None,
    ) -> DpvNet:
        """Construct the DPVNet for an invariant (§4.1).

        ``topology`` overrides the planner's topology (fault scenes pass the
        failed-link subgraph here).
        """
        topo = topology or self.topology
        atoms, dfas = self.compile_atoms(invariant)
        needs_enumeration = any(
            atom.path.simple_only or atom.path.length_filters for atom in atoms
        )
        ingresses = list(invariant.ingress_set)
        if not needs_enumeration:
            return build_product_dpvnet(
                topo, dfas, ingresses, max_hops=topo.num_devices
            )

        dist_to: Dict[str, Dict[str, int]] = {}

        def shortest(ingress: str, dev: str) -> Optional[int]:
            if dev not in dist_to:
                dist_to[dev] = topo.hop_distances_to(dev)
            return dist_to[dev].get(ingress)

        def accept_path(atom_index: int, ingress: str, path: Tuple[str, ...]) -> bool:
            atom = atoms[atom_index]
            hops = len(path) - 1
            for filt in atom.path.length_filters:
                if not filt.admits(hops, shortest(ingress, path[-1])):
                    return False
            return True

        max_hops = self._max_hops_bound(topo, atoms, ingresses)
        simple = any(atom.path.simple_only for atom in atoms)
        return build_enumeration_dpvnet(
            topo, dfas, ingresses, accept_path, max_hops, simple_only=simple
        )

    def _max_hops_bound(
        self, topo: Topology, atoms: Sequence[Atom], ingresses: Sequence[str]
    ) -> int:
        """Smallest safe search depth implied by the length filters."""
        fallback = topo.num_devices - 1
        bounds: List[int] = []
        for atom in atoms:
            atom_bound = fallback
            for filt in atom.path.length_filters:
                if filt.op in ("<=", "<", "=="):
                    if filt.symbolic:
                        # shortest+offset: bound by the worst shortest-path
                        # distance over all (ingress, device) pairs.
                        worst = 0
                        for ingress in ingresses:
                            for dev in topo.devices:
                                hops = topo.shortest_hops(ingress, dev)
                                if hops is not None:
                                    worst = max(worst, hops)
                        atom_bound = min(atom_bound, filt.max_hops(worst, fallback))
                    else:
                        atom_bound = min(atom_bound, filt.max_hops(None, fallback))
            bounds.append(atom_bound)
        return max(bounds) if bounds else fallback

    # ------------------------------------------------------------------
    # Task decomposition (§2.2.2)
    # ------------------------------------------------------------------
    def decompose(self, invariant: Invariant, net: Optional[DpvNet] = None) -> TaskSet:
        """Split the DPVNet into per-device counting tasks."""
        atoms, _dfas = self.compile_atoms(invariant)
        if net is None:
            net = self.build_dpvnet(invariant)
        node_home = {nid: node.dev for nid, node in net.nodes.items()}
        source_of = {
            nid: ingress
            for ingress, nid in net.sources.items()
            if nid is not None
        }
        reduction = tuple(positive_count_exps(invariant.behavior, atoms))
        tasks: Dict[str, DeviceTask] = {}
        for nid, node in net.nodes.items():
            task = tasks.get(node.dev)
            if task is None:
                task = DeviceTask(
                    dev=node.dev,
                    invariant_name=invariant.name,
                    packet_space=invariant.packet_space,
                    atoms=tuple(atoms),
                    behavior=invariant.behavior,
                    reduction_exps=reduction,
                )
                tasks[node.dev] = task
            edge_scenes = {}
            if net.edge_scenes is not None:
                for child in node.children:
                    scenes = net.edge_scenes.get((nid, child))
                    if scenes is not None:
                        edge_scenes[child] = scenes
            accept_scenes = {}
            net_accept_scenes = getattr(net, "accept_scenes", None)
            if net_accept_scenes:
                for i in range(net.arity):
                    scenes = net_accept_scenes.get((nid, i))
                    if scenes is not None:
                        accept_scenes[i] = scenes
            task.nodes.append(
                NodeTask(
                    node_id=nid,
                    label=node.label,
                    dev=node.dev,
                    accept=node.accept,
                    accept_scenes=accept_scenes,
                    downstream=[
                        NeighborRef(child, net.node(child).dev)
                        for child in node.children
                    ],
                    upstream=[
                        NeighborRef(parent, net.node(parent).dev)
                        for parent in node.parents
                    ],
                    is_source_for=source_of.get(nid),
                    edge_scenes=edge_scenes,
                )
            )
        return TaskSet(
            invariant_name=invariant.name,
            tasks=tasks,
            node_home=node_home,
            source_nodes=dict(net.sources),
            arity=net.arity,
        )

    # ------------------------------------------------------------------
    # One-shot centralized verification (reference path)
    # ------------------------------------------------------------------
    def verify(
        self,
        invariant: Invariant,
        planes: Mapping[str, DevicePlane],
        net: Optional[DpvNet] = None,
    ) -> VerificationResult:
        """Verify the invariant against a data plane snapshot (Algorithm 1 +
        behavior evaluation, or local checks for ``equal``)."""
        atoms, _dfas = self.compile_atoms(invariant)
        if net is None:
            net = self.build_dpvnet(invariant)
        if atoms[0].kind is MatchKind.EQUAL:
            return self._verify_equal(invariant, planes, net)

        source_counts = count_sources(net, planes, atoms, invariant.packet_space)
        violations: List[Violation] = []
        for ingress, pieces in source_counts.items():
            for region, countset in pieces:
                bad = tuple(
                    vec
                    for vec in countset
                    if not evaluate_behavior(invariant.behavior, atoms, vec)
                )
                if bad:
                    violations.append(Violation(ingress, region, bad))
        return VerificationResult(
            invariant_name=invariant.name,
            holds=not violations,
            violations=violations,
            source_counts=source_counts,
            dpvnet_stats=net.stats(),
        )

    def _verify_equal(
        self,
        invariant: Invariant,
        planes: Mapping[str, DevicePlane],
        net: DpvNet,
    ) -> VerificationResult:
        """§4.2 local checks: minimal counting information is the empty set.

        Node ``u`` passes iff ``u.dev`` forwards every packet of the space
        (with an ALL-type action) to exactly the devices of u's downstream
        neighbors, and accepting nodes deliver.
        """
        violations: List[Violation] = []
        space = invariant.packet_space
        for nid, node in net.nodes.items():
            plane = planes.get(node.dev)
            expected = {net.node(child).dev for child in node.children}
            if any(node.accept):
                expected = expected | {EXTERNAL}
            if plane is None:
                violations.append(
                    Violation(node.dev, space, message=f"{node.label}: no data plane")
                )
                continue
            for piece, action in plane.fwd(space):
                actual = set(action.group)
                missing = expected - actual
                if missing:
                    violations.append(
                        Violation(
                            node.dev,
                            piece,
                            message=(
                                f"{node.label}: next-hop group must include "
                                f"{sorted(expected)}, got {action}"
                            ),
                        )
                    )
        return VerificationResult(
            invariant_name=invariant.name,
            holds=not violations,
            violations=violations,
            dpvnet_stats=net.stats(),
        )

    # ------------------------------------------------------------------
    # §3 consistency validation
    # ------------------------------------------------------------------
    def validate(self, invariant: Invariant) -> None:
        """Raise if the destination IPs in the packet space are inconsistent
        with the destination devices of the path expressions (§3)."""
        if not self.topology.external_prefixes:
            return  # nothing to check against
        if not self.ctx.layout.has_field("dst_ip"):
            return
        atoms = collect_atoms(invariant.behavior)
        mentioned = set()
        for atom in atoms:
            mentioned |= set(atom.path.devices())
        owners: List[str] = []
        for device, prefixes in self.topology.external_prefixes.items():
            for prefix in prefixes:
                pred = self.ctx.ip_prefix(prefix)
                if pred.overlaps(invariant.packet_space):
                    owners.append(device)
                    break
        if owners and mentioned and not (set(owners) & mentioned):
            raise SpecificationError(
                f"packet space is owned by {sorted(set(owners))} but the path "
                f"expressions only mention {sorted(mentioned)}"
            )
