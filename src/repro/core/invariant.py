"""The invariant model: the abstract syntax of Figure 3 as Python objects.

An invariant is a ``(packet_space, ingress_set, behavior[, fault_scenes])``
tuple.  A behavior is a boolean combination of ``(match_op, path_exp)``
atoms; a path expression is a device regex with optional length filters and
a loop-free marker.

The textual front end lives in :mod:`repro.core.language`; ready-made
constructors for the Table 1 invariants live in :mod:`repro.core.library`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

from repro.automata.regex import Regex, parse_regex
from repro.bdd.predicate import Predicate
from repro.core.counting import CountExp, CountVec
from repro.errors import SpecificationError

__all__ = [
    "LengthFilter",
    "EndKind",
    "PathExpr",
    "MatchKind",
    "Atom",
    "Not",
    "And",
    "Or",
    "Behavior",
    "FaultSpec",
    "Invariant",
]


@dataclass(frozen=True)
class LengthFilter:
    """A hop-count filter on matching paths.

    ``base`` is either the literal number of *links* allowed, or the string
    ``"shortest"`` making the filter *symbolic* (§6): its concrete value
    depends on the (possibly failed) topology.  ``offset`` shifts the bound,
    e.g. ``(<=, "shortest", 2)`` is the paper's ``<= shortest + 2``.
    """

    op: str  # '<=', '<', '==', '>=', '>'
    base: Union[int, str]
    offset: int = 0

    def __post_init__(self) -> None:
        if self.op not in ("<=", "<", "==", ">=", ">"):
            raise SpecificationError(f"unknown length filter operator {self.op!r}")
        if isinstance(self.base, str) and self.base != "shortest":
            raise SpecificationError(f"unknown symbolic length base {self.base!r}")

    @property
    def symbolic(self) -> bool:
        return isinstance(self.base, str)

    def bound(self, shortest: Optional[int]) -> int:
        """Concrete bound given the topology's shortest-path hop count."""
        if self.symbolic:
            if shortest is None:
                raise SpecificationError(
                    "symbolic length filter on a disconnected source/destination"
                )
            return shortest + self.offset
        return int(self.base) + self.offset

    def admits(self, hops: int, shortest: Optional[int]) -> bool:
        bound = self.bound(shortest)
        return {
            "<=": hops <= bound,
            "<": hops < bound,
            "==": hops == bound,
            ">=": hops >= bound,
            ">": hops > bound,
        }[self.op]

    def max_hops(self, shortest: Optional[int], fallback: int) -> int:
        """An upper bound on admitted hop counts (used to bound search)."""
        if self.op in ("<=", "=="):
            return self.bound(shortest)
        if self.op == "<":
            return self.bound(shortest) - 1
        return fallback

    def __str__(self) -> str:
        base = self.base if not self.symbolic else "shortest"
        offset = f"+{self.offset}" if self.offset else ""
        return f"{self.op} {base}{offset}"


class EndKind(enum.Enum):
    """Which trace endings an atom counts (see DESIGN.md).

    The paper expresses blackhole-freeness as counting paths matching
    ``.* and not S.*D``; operationally that is "count traces that *end*
    without correct delivery".  We make the end kind explicit instead of
    complementing regexes with unbounded path sets.
    """

    DELIVERED = "delivered"
    DROPPED = "dropped"


@dataclass(frozen=True)
class PathExpr:
    """A path pattern: regex over devices + filters + loop-free marker."""

    regex: Regex
    length_filters: Tuple[LengthFilter, ...] = ()
    simple_only: bool = False  # the language's loop_free shortcut

    @classmethod
    def parse(
        cls,
        text: str,
        length_filters: Sequence[LengthFilter] = (),
        simple_only: bool = False,
    ) -> "PathExpr":
        return cls(parse_regex(text), tuple(length_filters), simple_only)

    def has_symbolic_filter(self) -> bool:
        return any(f.symbolic for f in self.length_filters)

    def devices(self) -> FrozenSet[str]:
        return self.regex.devices()

    def __str__(self) -> str:
        text = str(self.regex)
        extras = [str(f) for f in self.length_filters]
        if self.simple_only:
            extras.append("loop_free")
        if extras:
            return f"({text}, {', '.join(extras)})"
        return text


class MatchKind(enum.Enum):
    EXIST = "exist"
    EQUAL = "equal"


@dataclass(frozen=True)
class Atom:
    """One ``(match_op, path_exp)`` pair.

    * ``EXIST`` atoms hold in a universe when the number of traces matching
      ``path`` satisfies ``count_exp``.
    * ``EQUAL`` atoms hold when the union of universes equals the *full* set
      of paths matching ``path`` (the RCDC all-shortest-path behaviour) —
      verified by local checks, never by counting.
    """

    path: PathExpr
    kind: MatchKind = MatchKind.EXIST
    count_exp: Optional[CountExp] = None
    end_kind: EndKind = EndKind.DELIVERED

    def __post_init__(self) -> None:
        if self.kind is MatchKind.EXIST and self.count_exp is None:
            raise SpecificationError("exist atoms need a count expression")
        if self.kind is MatchKind.EQUAL and self.count_exp is not None:
            raise SpecificationError("equal atoms take no count expression")

    def __str__(self) -> str:
        if self.kind is MatchKind.EQUAL:
            return f"(equal, {self.path})"
        return f"({self.count_exp}, {self.path})"


@dataclass(frozen=True)
class Not:
    inner: "Behavior"

    def __str__(self) -> str:
        return f"not {self.inner}"


@dataclass(frozen=True)
class And:
    parts: Tuple["Behavior", ...]

    def __str__(self) -> str:
        return "(" + " and ".join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class Or:
    parts: Tuple["Behavior", ...]

    def __str__(self) -> str:
        return "(" + " or ".join(str(p) for p in self.parts) + ")"


Behavior = Union[Atom, Not, And, Or]


def collect_atoms(behavior: Behavior) -> List[Atom]:
    """The behavior's *counting components*, left-to-right.

    Atoms that share a path expression and end kind count the same quantity
    (their ``count_exp`` only matters at evaluation time), so they share one
    component — e.g. anycast's ``exist == 1`` and ``exist == 0`` checks on
    the same ``S.*D`` pattern produce a single component.  The returned list
    holds the first atom seen per component.
    """
    atoms: List[Atom] = []
    keys: List[tuple] = []

    def walk(node: Behavior) -> None:
        if isinstance(node, Atom):
            key = (node.path, node.end_kind)
            if key not in keys:
                keys.append(key)
                atoms.append(node)
        elif isinstance(node, Not):
            walk(node.inner)
        elif isinstance(node, (And, Or)):
            for part in node.parts:
                walk(part)
        else:
            raise SpecificationError(f"unknown behavior node {node!r}")

    walk(behavior)
    return atoms


def component_index(atoms: Sequence[Atom], atom: Atom) -> int:
    """Count-vector component of an atom (shared per (path, end_kind))."""
    for i, candidate in enumerate(atoms):
        if candidate.path == atom.path and candidate.end_kind == atom.end_kind:
            return i
    raise SpecificationError(f"atom {atom} not among the behavior components")


def evaluate_behavior(behavior: Behavior, atoms: Sequence[Atom], vec: CountVec) -> bool:
    """Truth of the behavior formula for one universe's count vector."""

    def walk(node: Behavior) -> bool:
        if isinstance(node, Atom):
            index = component_index(atoms, node)
            assert node.count_exp is not None
            return node.count_exp.holds(vec[index])
        if isinstance(node, Not):
            return not walk(node.inner)
        if isinstance(node, And):
            return all(walk(part) for part in node.parts)
        if isinstance(node, Or):
            return any(walk(part) for part in node.parts)
        raise SpecificationError(f"unknown behavior node {node!r}")

    return walk(behavior)


def positive_count_exps(
    behavior: Behavior, atoms: Sequence[Atom]
) -> List[Optional[CountExp]]:
    """Per-atom count expressions usable for Proposition 1 reduction.

    An atom's expression can drive the minimal-information reduction only if
    the atom appears purely positively (no enclosing ``not``) and the
    invariant has a single atom; otherwise the joint distribution matters and
    we return ``None`` for it (reduction disabled — always sound).
    """
    if len(atoms) == 1 and isinstance(behavior, Atom):
        return [behavior.count_exp]
    return [None] * len(atoms)


@dataclass(frozen=True)
class FaultSpec:
    """The optional ``fault_scenes`` field (§6).

    Either an explicit tuple of scenes (each a frozenset of failed links) or
    the ``any_k`` sugar meaning every combination of up to ``k`` failures.
    """

    scenes: Tuple[FrozenSet[Tuple[str, str]], ...] = ()
    any_k: Optional[int] = None

    @classmethod
    def explicit(cls, scenes: Iterable[Iterable[Tuple[str, str]]]) -> "FaultSpec":
        normalized = tuple(
            frozenset(tuple(sorted(link)) for link in scene) for scene in scenes
        )
        return cls(scenes=normalized)

    @classmethod
    def up_to(cls, k: int) -> "FaultSpec":
        if k < 1:
            raise SpecificationError("any_k requires k >= 1")
        return cls(any_k=k)


@dataclass(frozen=True)
class Invariant:
    """A complete invariant specification."""

    packet_space: Predicate
    ingress_set: Tuple[str, ...]
    behavior: Behavior
    fault_spec: Optional[FaultSpec] = None
    name: str = "invariant"

    def __post_init__(self) -> None:
        if not self.ingress_set:
            raise SpecificationError("invariant needs at least one ingress device")
        if self.packet_space.is_empty:
            raise SpecificationError("invariant packet space is empty")

    def atoms(self) -> List[Atom]:
        return collect_atoms(self.behavior)

    def __str__(self) -> str:
        ingress = ", ".join(self.ingress_set)
        return f"{self.name}: (P, [{ingress}], {self.behavior})"
