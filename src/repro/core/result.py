"""Verification verdicts and violation reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bdd.predicate import Predicate
from repro.core.counting import CountSet

__all__ = ["Violation", "VerificationResult"]


@dataclass(frozen=True)
class Violation:
    """One packet-space region that fails the invariant.

    ``counts`` holds the per-universe count vectors observed for the region;
    for local-check (``equal``) violations it is empty and ``message``
    explains the failed contract.
    """

    ingress: str
    region: Predicate
    counts: CountSet = ()
    message: str = ""

    def example_packet(self) -> Optional[Dict[str, int]]:
        """A concrete packet witnessing the violation."""
        return self.region.sample()

    def __str__(self) -> str:
        detail = self.message or f"counts={list(self.counts)}"
        return f"Violation(ingress={self.ingress}, {detail})"


@dataclass
class VerificationResult:
    """Outcome of verifying one invariant against one data plane."""

    invariant_name: str
    holds: bool
    violations: List[Violation] = field(default_factory=list)
    source_counts: Dict[str, List[Tuple[Predicate, CountSet]]] = field(
        default_factory=dict
    )
    dpvnet_stats: Dict[str, int] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.holds

    def summary(self) -> str:
        if self.holds:
            return f"{self.invariant_name}: HOLDS"
        return (
            f"{self.invariant_name}: VIOLATED "
            f"({len(self.violations)} violating region(s))"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VerificationResult({self.summary()})"
