"""Byte-level DVM message codec.

The paper's prototype serializes BDDs with an adapted JDD + Protobuf stack so
counting results travel between devices as bytes (§8).  This module is the
equivalent: a compact, self-describing binary encoding of UPDATE and
SUBSCRIBE messages over the BDD wire format of :mod:`repro.bdd.serialize`.

Layout (all integers are LEB128 varints)::

    byte   message type (1 = UPDATE, 2 = SUBSCRIBE)
    varint parent_node_id, child_node_id        # the intended link
    UPDATE:
        blob   withdrawn predicate
        varint num_results
        repeated: blob predicate, varint num_vectors,
                  repeated: varint arity, repeated varint component
    SUBSCRIBE:
        blob   pred_from
        blob   pred_to

A ``blob`` is ``varint length`` + the BDD stream bytes.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.bdd.predicate import PacketSpaceContext, Predicate
from repro.bdd.serialize import (
    decode_varint,
    deserialize_predicate,
    encode_varint,
    serialize_predicate,
)
from repro.core.counting import CountSet
from repro.core.dvm import SubscribeMessage, UpdateMessage
from repro.errors import SerializationError

__all__ = ["encode_message", "decode_message"]

_UPDATE = 1
_SUBSCRIBE = 2


def _put_blob(pred, out: bytearray) -> None:
    if not isinstance(pred, Predicate):
        # AtomSet (or any region type with a canonical-Predicate view):
        # converting here guarantees the wire carries canonical ROBDD bytes
        # no matter which predicate-index mode produced the message.
        pred = pred.to_predicate()
    data = serialize_predicate(pred)
    encode_varint(len(data), out)
    out.extend(data)


def _get_blob(ctx: PacketSpaceContext, data: bytes, pos: int) -> Tuple[Predicate, int]:
    length, pos = decode_varint(data, pos)
    if pos + length > len(data):
        raise SerializationError("truncated predicate blob")
    pred = deserialize_predicate(ctx, data[pos : pos + length])
    return pred, pos + length


def encode_message(message) -> bytes:
    """Serialize an UPDATE or SUBSCRIBE message to bytes."""
    out = bytearray()
    if isinstance(message, UpdateMessage):
        out.append(_UPDATE)
        encode_varint(message.intended_link[0], out)
        encode_varint(message.intended_link[1], out)
        _put_blob(message.withdrawn, out)
        encode_varint(len(message.results), out)
        for pred, countset in message.results:
            _put_blob(pred, out)
            encode_varint(len(countset), out)
            for vec in countset:
                encode_varint(len(vec), out)
                for component in vec:
                    encode_varint(component, out)
        return bytes(out)
    if isinstance(message, SubscribeMessage):
        out.append(_SUBSCRIBE)
        encode_varint(message.intended_link[0], out)
        encode_varint(message.intended_link[1], out)
        _put_blob(message.pred_from, out)
        _put_blob(message.pred_to, out)
        return bytes(out)
    raise SerializationError(f"cannot encode message of type {type(message)!r}")


def decode_message(ctx: PacketSpaceContext, data: bytes):
    """Inverse of :func:`encode_message` (into the receiver's context)."""
    if not data:
        raise SerializationError("empty message")
    kind = data[0]
    parent, pos = decode_varint(data, 1)
    child, pos = decode_varint(data, pos)
    if kind == _UPDATE:
        withdrawn, pos = _get_blob(ctx, data, pos)
        num_results, pos = decode_varint(data, pos)
        results: List[Tuple[Predicate, CountSet]] = []
        for _ in range(num_results):
            pred, pos = _get_blob(ctx, data, pos)
            num_vectors, pos = decode_varint(data, pos)
            vectors = []
            for _ in range(num_vectors):
                arity, pos = decode_varint(data, pos)
                vec = []
                for _ in range(arity):
                    component, pos = decode_varint(data, pos)
                    vec.append(component)
                vectors.append(tuple(vec))
            results.append((pred, tuple(sorted(set(vectors)))))
        if pos != len(data):
            raise SerializationError("trailing bytes after UPDATE")
        return UpdateMessage((parent, child), withdrawn, tuple(results))
    if kind == _SUBSCRIBE:
        pred_from, pos = _get_blob(ctx, data, pos)
        pred_to, pos = _get_blob(ctx, data, pos)
        if pos != len(data):
            raise SerializationError("trailing bytes after SUBSCRIBE")
        return SubscribeMessage((parent, child), pred_from, pred_to)
    raise SerializationError(f"unknown message type byte {kind}")
