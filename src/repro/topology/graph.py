"""Network topology model.

A :class:`Topology` is an undirected multigraph-free graph of named devices
with per-link propagation latencies and the §3 convenience mapping from
devices with external ports to the IP prefixes reachable through them.  The
planner, the simulator and the dataset builders all share this type.

Latencies are in seconds (floats) to match the simulator clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import TopologyError

__all__ = ["Link", "Topology", "canonical_link"]


def canonical_link(a: str, b: str) -> Tuple[str, str]:
    """Normalize an undirected link to a sorted tuple."""
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class Link:
    """An undirected link with a propagation latency in seconds."""

    a: str
    b: str
    latency: float = 1e-5  # default 10 microseconds (the paper's LAN/DC value)

    def endpoints(self) -> Tuple[str, str]:
        return canonical_link(self.a, self.b)

    def other(self, device: str) -> str:
        if device == self.a:
            return self.b
        if device == self.b:
            return self.a
        raise TopologyError(f"{device!r} is not an endpoint of {self}")


class Topology:
    """Undirected device graph with latencies and external prefix ports."""

    def __init__(self, name: str = "net") -> None:
        self.name = name
        self._adjacency: Dict[str, Dict[str, float]] = {}
        # §3 convenience feature: (device, IP_prefix) mapping for devices
        # with external ports.
        self.external_prefixes: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_device(self, name: str) -> None:
        self._adjacency.setdefault(name, {})

    def add_link(self, a: str, b: str, latency: float = 1e-5) -> None:
        if a == b:
            raise TopologyError(f"self-loop on device {a!r}")
        if latency < 0:
            raise TopologyError("latency must be non-negative")
        self.add_device(a)
        self.add_device(b)
        self._adjacency[a][b] = latency
        self._adjacency[b][a] = latency

    def attach_prefix(self, device: str, prefix: str) -> None:
        """Declare that ``prefix`` is reachable via an external port of
        ``device`` (making the device a valid path destination for packets
        addressed inside the prefix)."""
        if device not in self._adjacency:
            raise TopologyError(f"unknown device {device!r}")
        self.external_prefixes.setdefault(device, []).append(prefix)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def devices(self) -> List[str]:
        return sorted(self._adjacency)

    @property
    def num_devices(self) -> int:
        return len(self._adjacency)

    @property
    def num_links(self) -> int:
        return sum(len(neigh) for neigh in self._adjacency.values()) // 2

    def has_device(self, name: str) -> bool:
        return name in self._adjacency

    def neighbors(self, device: str) -> List[str]:
        try:
            return sorted(self._adjacency[device])
        except KeyError:
            raise TopologyError(f"unknown device {device!r}") from None

    def degree(self, device: str) -> int:
        return len(self._adjacency[device])

    def has_link(self, a: str, b: str) -> bool:
        return b in self._adjacency.get(a, {})

    def latency(self, a: str, b: str) -> float:
        try:
            return self._adjacency[a][b]
        except KeyError:
            raise TopologyError(f"no link between {a!r} and {b!r}") from None

    def links(self) -> Iterator[Link]:
        seen: Set[Tuple[str, str]] = set()
        for a in sorted(self._adjacency):
            for b, latency in sorted(self._adjacency[a].items()):
                key = canonical_link(a, b)
                if key not in seen:
                    seen.add(key)
                    yield Link(key[0], key[1], latency)

    def link_set(self) -> FrozenSet[Tuple[str, str]]:
        return frozenset(link.endpoints() for link in self.links())

    def prefix_owner(self, prefix: str) -> Optional[str]:
        """Device owning an external prefix, or None."""
        for device, prefixes in self.external_prefixes.items():
            if prefix in prefixes:
                return device
        return None

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def without_links(self, failed: Iterable[Tuple[str, str]]) -> "Topology":
        """Copy of the topology with the given links removed (a fault scene's
        topology G_f, §6)."""
        failed_set = {canonical_link(a, b) for a, b in failed}
        clone = Topology(self.name)
        for device in self._adjacency:
            clone.add_device(device)
        for link in self.links():
            if link.endpoints() not in failed_set:
                clone.add_link(link.a, link.b, link.latency)
        clone.external_prefixes = {
            dev: list(prefixes) for dev, prefixes in self.external_prefixes.items()
        }
        return clone

    def with_virtual_device(
        self, name: str, neighbors: Sequence[str], latency: float = 0.0
    ) -> "Topology":
        """Copy with an added virtual device (used for §4.3 virtual sources
        and virtual destinations)."""
        if self.has_device(name):
            raise TopologyError(f"device {name!r} already exists")
        clone = self.without_links([])
        clone.add_device(name)
        for neighbor in neighbors:
            clone.add_link(name, neighbor, latency)
        return clone

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def hop_distances_to(self, destination: str) -> Dict[str, int]:
        """BFS hop count from every device to ``destination``."""
        if destination not in self._adjacency:
            raise TopologyError(f"unknown device {destination!r}")
        distances = {destination: 0}
        frontier = [destination]
        while frontier:
            next_frontier: List[str] = []
            for device in frontier:
                for neighbor in self._adjacency[device]:
                    if neighbor not in distances:
                        distances[neighbor] = distances[device] + 1
                        next_frontier.append(neighbor)
            frontier = next_frontier
        return distances

    def shortest_hops(self, source: str, destination: str) -> Optional[int]:
        """Hop count of the shortest path, or None if disconnected."""
        return self.hop_distances_to(destination).get(source)

    def latency_distances_from(self, source: str) -> Dict[str, float]:
        """Dijkstra over link latencies (used to route management traffic for
        the centralized baselines)."""
        import heapq

        if source not in self._adjacency:
            raise TopologyError(f"unknown device {source!r}")
        dist: Dict[str, float] = {source: 0.0}
        heap: List[Tuple[float, str]] = [(0.0, source)]
        done: Set[str] = set()
        while heap:
            d, device = heapq.heappop(heap)
            if device in done:
                continue
            done.add(device)
            for neighbor, latency in self._adjacency[device].items():
                nd = d + latency
                if nd < dist.get(neighbor, float("inf")):
                    dist[neighbor] = nd
                    heapq.heappush(heap, (nd, neighbor))
        return dist

    def diameter_hops(self) -> int:
        """Maximum finite hop distance over all device pairs."""
        best = 0
        for device in self._adjacency:
            distances = self.hop_distances_to(device)
            if distances:
                best = max(best, max(distances.values()))
        return best

    def is_connected(self) -> bool:
        if not self._adjacency:
            return True
        start = next(iter(self._adjacency))
        return len(self.hop_distances_to(start)) == len(self._adjacency)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Topology({self.name!r}, devices={self.num_devices}, "
            f"links={self.num_links})"
        )
