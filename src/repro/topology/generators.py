"""Topology generators: the paper's running example, fattrees, Clos fabrics
and parameterized random WANs.

All generators return :class:`~repro.topology.graph.Topology` objects.  DC
links get the paper's 10 µs latency; WAN generators take a latency sampler.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import TopologyError
from repro.topology.graph import Topology

__all__ = [
    "fig2a_example",
    "anycast_example",
    "fattree",
    "clos",
    "line",
    "ring",
    "star",
    "random_wan",
    "grid",
]

DC_LATENCY = 1e-5  # 10 microseconds, §9.3.1


def fig2a_example() -> Topology:
    """The 5-device network of Figure 2a (S, A, B, W, D).

    Links: S-A, A-B, A-W, B-W, B-D, W-D.  D owns the example prefixes.
    """
    topo = Topology("fig2a")
    for a, b in [("S", "A"), ("A", "B"), ("A", "W"), ("B", "W"), ("B", "D"), ("W", "D")]:
        topo.add_link(a, b, DC_LATENCY)
    topo.attach_prefix("D", "10.0.0.0/23")
    topo.attach_prefix("B", "10.0.2.0/24")
    return topo


def anycast_example() -> Topology:
    """The Figure 5a network: S with two candidate egress devices D and E."""
    topo = Topology("fig5a")
    for a, b in [("S", "A"), ("A", "D"), ("A", "E")]:
        topo.add_link(a, b, DC_LATENCY)
    topo.attach_prefix("D", "10.1.0.0/24")
    topo.attach_prefix("E", "10.1.0.0/24")
    return topo


def fattree(k: int) -> Topology:
    """A k-ary fattree [Al-Fares et al. 2008]: (k/2)^2 core switches, k pods
    of k/2 aggregation + k/2 edge switches.  FT-48 in the paper; we sweep
    smaller k for tractability (see DESIGN.md substitutions).

    Device naming: ``core_i``, ``agg_p_i``, ``edge_p_i``.
    Each edge switch owns one /24 external prefix.
    """
    if k < 2 or k % 2:
        raise TopologyError("fattree arity k must be a positive even number")
    half = k // 2
    topo = Topology(f"ft{k}")
    cores = [f"core_{i}" for i in range(half * half)]
    for pod in range(k):
        aggs = [f"agg_{pod}_{i}" for i in range(half)]
        edges = [f"edge_{pod}_{i}" for i in range(half)]
        for agg in aggs:
            for edge in edges:
                topo.add_link(agg, edge, DC_LATENCY)
        # agg i connects to cores [i*half, (i+1)*half)
        for i, agg in enumerate(aggs):
            for j in range(half):
                topo.add_link(agg, cores[i * half + j], DC_LATENCY)
    for pod in range(k):
        for i in range(half):
            edge = f"edge_{pod}_{i}"
            subnet = pod * half + i
            topo.attach_prefix(edge, f"10.{subnet // 256}.{subnet % 256}.0/24")
    return topo


def clos(
    num_spines: int, num_leaves: int, latency: float = DC_LATENCY
) -> Topology:
    """A 2-tier leaf-spine Clos fabric; stands in for the paper's NGDC when
    combined with :func:`clos3` below for the 3-tier case."""
    if num_spines < 1 or num_leaves < 1:
        raise TopologyError("Clos fabric needs at least one spine and leaf")
    topo = Topology(f"clos_{num_spines}x{num_leaves}")
    for leaf_idx in range(num_leaves):
        leaf = f"leaf_{leaf_idx}"
        for spine_idx in range(num_spines):
            topo.add_link(leaf, f"spine_{spine_idx}", latency)
        topo.attach_prefix(leaf, f"10.{leaf_idx // 256}.{leaf_idx % 256}.0/24")
    return topo


def clos3(
    num_supers: int,
    num_pods: int,
    spines_per_pod: int,
    leaves_per_pod: int,
    latency: float = DC_LATENCY,
) -> Topology:
    """A 3-tier Clos (super-spine / pod-spine / leaf), the NGDC stand-in."""
    topo = Topology(f"clos3_{num_supers}_{num_pods}_{spines_per_pod}_{leaves_per_pod}")
    for pod in range(num_pods):
        spines = [f"spine_{pod}_{i}" for i in range(spines_per_pod)]
        leaves = [f"leaf_{pod}_{i}" for i in range(leaves_per_pod)]
        for spine in spines:
            for leaf in leaves:
                topo.add_link(spine, leaf, latency)
            for sup in range(num_supers):
                topo.add_link(spine, f"super_{sup}", latency)
    subnet = 0
    for pod in range(num_pods):
        for i in range(leaves_per_pod):
            topo.attach_prefix(
                f"leaf_{pod}_{i}", f"10.{subnet // 256}.{subnet % 256}.0/24"
            )
            subnet += 1
    return topo


def line(n: int, latency: float = DC_LATENCY) -> Topology:
    """A chain d0 - d1 - ... - d(n-1)."""
    if n < 1:
        raise TopologyError("line needs at least one device")
    topo = Topology(f"line{n}")
    topo.add_device("d0")
    for i in range(1, n):
        topo.add_link(f"d{i - 1}", f"d{i}", latency)
    return topo


def ring(n: int, latency: float = DC_LATENCY) -> Topology:
    """A cycle of n devices."""
    if n < 3:
        raise TopologyError("ring needs at least three devices")
    topo = line(n, latency)
    topo.add_link(f"d{n - 1}", "d0", latency)
    topo.name = f"ring{n}"
    return topo


def star(n_leaves: int, latency: float = DC_LATENCY) -> Topology:
    """A hub connected to ``n_leaves`` leaf devices."""
    if n_leaves < 1:
        raise TopologyError("star needs at least one leaf")
    topo = Topology(f"star{n_leaves}")
    for i in range(n_leaves):
        topo.add_link("hub", f"leaf_{i}", latency)
    return topo


def grid(rows: int, cols: int, latency: float = DC_LATENCY) -> Topology:
    """A rows×cols mesh (the chained-diamond stress shape from §4.2's
    discussion of counting-result explosion is a 2×n grid)."""
    if rows < 1 or cols < 1:
        raise TopologyError("grid needs positive dimensions")
    topo = Topology(f"grid{rows}x{cols}")
    for r in range(rows):
        for c in range(cols):
            topo.add_device(f"g{r}_{c}")
            if r > 0:
                topo.add_link(f"g{r - 1}_{c}", f"g{r}_{c}", latency)
            if c > 0:
                topo.add_link(f"g{r}_{c - 1}", f"g{r}_{c}", latency)
    return topo


def random_wan(
    n: int,
    extra_edges: int,
    seed: int,
    latency_sampler: Optional[Callable[[random.Random], float]] = None,
    name: Optional[str] = None,
) -> Topology:
    """A connected random WAN: a random spanning tree plus ``extra_edges``
    chords, with latencies drawn from ``latency_sampler`` (default: 1-40 ms,
    the shape of public WAN ping statistics used by the paper).

    Deterministic for a given seed, which the dataset registry relies on.
    """
    if n < 2:
        raise TopologyError("random WAN needs at least two devices")
    rng = random.Random(seed)
    if latency_sampler is None:
        latency_sampler = lambda r: r.uniform(0.001, 0.040)  # noqa: E731
    topo = Topology(name or f"wan{n}_{seed}")
    names = [f"r{i}" for i in range(n)]
    # Random spanning tree: connect each new node to a random existing one.
    for i in range(1, n):
        j = rng.randrange(i)
        topo.add_link(names[i], names[j], latency_sampler(rng))
    added = 0
    attempts = 0
    while added < extra_edges and attempts < extra_edges * 20:
        attempts += 1
        a, b = rng.sample(names, 2)
        if not topo.has_link(a, b):
            topo.add_link(a, b, latency_sampler(rng))
            added += 1
    return topo
