"""Plain-text topology format for the CLI and examples.

::

    # comment
    topology my-wan
    link A B 0.015          # endpoints + latency in seconds (optional)
    link B C
    prefix D 10.0.0.0/24    # external prefix attachment

Latency defaults to 10 µs (the paper's LAN/DC figure) when omitted.
"""

from __future__ import annotations

from typing import List

from repro.errors import TopologyError
from repro.topology.graph import Topology

__all__ = ["parse_topology_text", "format_topology_text"]

_DEFAULT_LATENCY = 1e-5


def parse_topology_text(text: str) -> Topology:
    topo = Topology("net")
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        keyword = parts[0].lower()
        if keyword == "topology":
            if len(parts) != 2:
                raise TopologyError(f"line {lineno}: topology needs a name")
            topo.name = parts[1]
        elif keyword == "link":
            if len(parts) not in (3, 4):
                raise TopologyError(f"line {lineno}: link A B [latency]")
            latency = _DEFAULT_LATENCY
            if len(parts) == 4:
                try:
                    latency = float(parts[3])
                except ValueError as exc:
                    raise TopologyError(
                        f"line {lineno}: bad latency {parts[3]!r}"
                    ) from exc
            topo.add_link(parts[1], parts[2], latency)
        elif keyword == "device":
            if len(parts) != 2:
                raise TopologyError(f"line {lineno}: device NAME")
            topo.add_device(parts[1])
        elif keyword == "prefix":
            if len(parts) != 3:
                raise TopologyError(f"line {lineno}: prefix DEVICE CIDR")
            topo.attach_prefix(parts[1], parts[2])
        else:
            raise TopologyError(f"line {lineno}: unknown keyword {keyword!r}")
    return topo


def format_topology_text(topo: Topology) -> str:
    lines: List[str] = [f"topology {topo.name}"]
    linked = set()
    for link in topo.links():
        lines.append(f"link {link.a} {link.b} {link.latency:g}")
        linked.add(link.a)
        linked.add(link.b)
    for dev in topo.devices:
        if dev not in linked:
            lines.append(f"device {dev}")
    for dev in sorted(topo.external_prefixes):
        for prefix in topo.external_prefixes[dev]:
            lines.append(f"prefix {dev} {prefix}")
    return "\n".join(lines) + "\n"
