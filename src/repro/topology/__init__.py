"""Network topologies: the graph model, generators and the WAN zoo."""

from repro.topology.generators import (
    anycast_example,
    clos,
    fattree,
    fig2a_example,
    grid,
    line,
    random_wan,
    ring,
    star,
)
from repro.topology.generators import clos3
from repro.topology.graph import Link, Topology, canonical_link
from repro.topology.zoo import (
    WAN_BUILDERS,
    b4_13,
    b4_18,
    inet2,
    rocketfuel_like,
    stanford,
)

__all__ = [
    "Link",
    "Topology",
    "WAN_BUILDERS",
    "anycast_example",
    "b4_13",
    "b4_18",
    "canonical_link",
    "clos",
    "clos3",
    "fattree",
    "fig2a_example",
    "grid",
    "inet2",
    "line",
    "random_wan",
    "ring",
    "rocketfuel_like",
    "stanford",
    "star",
]
