"""Embedded WAN/LAN topologies shaped after the paper's datasets (Fig. 10).

INet2, B4 and STFD use explicit edge lists modeled on the public topologies
(Internet2/Abilene, Google B4, the Stanford backbone).  The Rocketfuel-style
AS topologies (AT1/AT2), BTNA, NTT and OTEG are synthesized with fixed seeds
at their approximate published sizes — the originals are measurement data we
do not ship, and the substitution preserves what matters for the experiments:
node/link counts, diameter and latency spread (see DESIGN.md).
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from repro.topology.generators import random_wan
from repro.topology.graph import Topology

__all__ = ["inet2", "b4_13", "b4_18", "stanford", "rocketfuel_like", "WAN_BUILDERS"]


def _build(name: str, edges: Sequence[Tuple[str, str, float]]) -> Topology:
    topo = Topology(name)
    for a, b, latency in edges:
        topo.add_link(a, b, latency)
    return topo


def inet2() -> Topology:
    """The 9-PoP Internet2 layer-3 WAN used by the testbed experiments (§9.2).

    Latencies approximate great-circle propagation between the PoPs.
    """
    ms = 1e-3
    edges = [
        ("SEAT", "SALT", 18 * ms),
        ("SEAT", "LOSA", 28 * ms),
        ("LOSA", "SALT", 15 * ms),
        ("LOSA", "HOUS", 33 * ms),
        ("SALT", "KANS", 14 * ms),
        ("KANS", "HOUS", 17 * ms),
        ("KANS", "CHIC", 11 * ms),
        ("HOUS", "ATLA", 19 * ms),
        ("CHIC", "ATLA", 16 * ms),
        ("CHIC", "WASH", 15 * ms),
        ("ATLA", "WASH", 12 * ms),
        ("CHIC", "NEWY", 17 * ms),
        ("WASH", "NEWY", 5 * ms),
    ]
    return _build("INet2", edges)


def b4_13() -> Topology:
    """A 13-site rendition of Google's B4 inter-datacenter WAN (2013)."""
    ms = 1e-3
    edges = [
        ("b1", "b2", 5 * ms), ("b1", "b3", 12 * ms), ("b2", "b3", 10 * ms),
        ("b2", "b4", 25 * ms), ("b3", "b4", 22 * ms), ("b3", "b5", 18 * ms),
        ("b4", "b5", 8 * ms), ("b4", "b6", 30 * ms), ("b5", "b6", 26 * ms),
        ("b5", "b7", 14 * ms), ("b6", "b7", 12 * ms), ("b6", "b8", 40 * ms),
        ("b7", "b8", 38 * ms), ("b7", "b9", 20 * ms), ("b8", "b9", 16 * ms),
        ("b8", "b10", 24 * ms), ("b9", "b10", 10 * ms), ("b9", "b11", 28 * ms),
        ("b10", "b11", 14 * ms), ("b10", "b12", 32 * ms), ("b11", "b12", 18 * ms),
        ("b11", "b13", 22 * ms), ("b12", "b13", 9 * ms), ("b1", "b5", 35 * ms),
        ("b2", "b7", 42 * ms),
    ]
    return _build("B4-13", edges)


def b4_18() -> Topology:
    """An 18-site rendition of B4-and-after (2018)."""
    base = b4_13()
    topo = Topology("B4-18")
    for link in base.links():
        topo.add_link(link.a, link.b, link.latency)
    ms = 1e-3
    extra = [
        ("b14", "b1", 20 * ms), ("b14", "b3", 15 * ms),
        ("b15", "b4", 12 * ms), ("b15", "b6", 17 * ms),
        ("b16", "b8", 21 * ms), ("b16", "b10", 11 * ms),
        ("b17", "b11", 13 * ms), ("b17", "b13", 19 * ms),
        ("b18", "b12", 16 * ms), ("b18", "b14", 45 * ms),
        ("b15", "b16", 27 * ms), ("b17", "b18", 23 * ms),
    ]
    for a, b, latency in extra:
        topo.add_link(a, b, latency)
    return topo


def stanford() -> Topology:
    """A 16-router campus backbone shaped after the Stanford dataset (STFD):
    two backbone routers, each connected to all fourteen zone routers, plus a
    backbone interconnect.  10 µs links (LAN)."""
    us = 1e-6
    topo = Topology("STFD")
    zones = [f"zone_{i}" for i in range(14)]
    topo.add_link("bbra", "bbrb", 10 * us)
    for zone in zones:
        topo.add_link("bbra", zone, 10 * us)
        topo.add_link("bbrb", zone, 10 * us)
    return topo


def rocketfuel_like(name: str, n: int, extra_edges: int, seed: int) -> Topology:
    """A Rocketfuel-flavoured ISP backbone: preferential-attachment core with
    latencies in the 1-40 ms band.  Deterministic per (n, seed)."""
    rng = random.Random(seed)
    topo = Topology(name)
    names = [f"{name.lower()}_{i}" for i in range(n)]
    degrees: Dict[str, int] = {}

    def sampler() -> float:
        return rng.uniform(0.001, 0.040)

    # Preferential attachment tree.
    topo.add_device(names[0])
    degrees[names[0]] = 0
    for i in range(1, n):
        population = list(degrees)
        weights = [degrees[d] + 1 for d in population]
        target = rng.choices(population, weights=weights)[0]
        topo.add_link(names[i], target, sampler())
        degrees[names[i]] = degrees.get(names[i], 0) + 1
        degrees[target] += 1
    added = 0
    attempts = 0
    while added < extra_edges and attempts < extra_edges * 30:
        attempts += 1
        a, b = rng.sample(names, 2)
        if not topo.has_link(a, b):
            topo.add_link(a, b, sampler())
            added += 1
    return topo


# Builders for every WAN/LAN dataset name used by the registry; DC fabrics
# come from repro.topology.generators.
WAN_BUILDERS = {
    "INet2": inet2,
    "B4-13": b4_13,
    "B4-18": b4_18,
    "STFD": stanford,
    "AT1-1": lambda: rocketfuel_like("AT1", 25, 20, seed=11),
    "AT1-2": lambda: rocketfuel_like("AT1", 25, 20, seed=11),
    "AT2-1": lambda: rocketfuel_like("AT2", 55, 45, seed=22),
    "AT2-2": lambda: rocketfuel_like("AT2", 55, 45, seed=22),
    "BTNA": lambda: rocketfuel_like("BTNA", 36, 30, seed=33),
    "NTT": lambda: rocketfuel_like("NTT", 47, 50, seed=44),
    "OTEG": lambda: rocketfuel_like("OTEG", 93, 70, seed=55),
}
