"""Compact binary serialization of BDD predicates.

The paper's prototype adapts the JDD library so BDDs can be shipped between
devices inside Protobuf-encoded DVM UPDATE messages (§8).  We provide the
equivalent here: a self-contained wire format that encodes the sub-DAG rooted
at a node in topological order, using variable-length integers.

Wire format
-----------
::

    varint  num_nodes
    repeated node records, children-before-parents:
        varint var
        varint low   (index into [FALSE, TRUE, rec 0, rec 1, ...])
        varint high  (same indexing)
    varint  root    (same indexing)

Decoding into a *different* manager is supported as long as both sides share
the same header layout (they always do inside one network), which mirrors how
physical devices exchange BDDs.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.bdd.manager import FALSE, TRUE, BddManager
from repro.bdd.predicate import PacketSpaceContext, Predicate
from repro.errors import SerializationError

__all__ = [
    "encode_varint",
    "decode_varint",
    "serialize_node",
    "deserialize_node",
    "serialize_nodes",
    "deserialize_nodes",
    "serialize_predicate",
    "deserialize_predicate",
    "serialize_predicates",
    "deserialize_predicates",
]


def encode_varint(value: int, out: bytearray) -> None:
    """Append an unsigned LEB128 varint to ``out``."""
    if value < 0:
        raise SerializationError("varints are unsigned")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def decode_varint(data: bytes, pos: int) -> Tuple[int, int]:
    """Decode an unsigned varint at ``pos``; return ``(value, new_pos)``."""
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise SerializationError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise SerializationError("varint too long")


def serialize_node(mgr: BddManager, root: int) -> bytes:
    """Serialize the sub-DAG rooted at ``root`` into bytes."""
    # Topological order, children first, via iterative post-order DFS.
    order: List[int] = []
    seen = {FALSE, TRUE}
    stack: List[Tuple[int, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if node in seen:
            continue
        if expanded:
            seen.add(node)
            order.append(node)
        else:
            stack.append((node, True))
            stack.append((mgr.high(node), False))
            stack.append((mgr.low(node), False))

    index: Dict[int, int] = {FALSE: 0, TRUE: 1}
    for i, node in enumerate(order):
        index[node] = i + 2

    out = bytearray()
    encode_varint(len(order), out)
    for node in order:
        encode_varint(mgr.top_var(node), out)
        encode_varint(index[mgr.low(node)], out)
        encode_varint(index[mgr.high(node)], out)
    encode_varint(index[root], out)
    return bytes(out)


def deserialize_node(mgr: BddManager, data: bytes) -> int:
    """Reconstruct a serialized sub-DAG inside ``mgr``; return the root id."""
    num_nodes, pos = decode_varint(data, 0)
    ids: List[int] = [FALSE, TRUE]
    for _ in range(num_nodes):
        var, pos = decode_varint(data, pos)
        low_idx, pos = decode_varint(data, pos)
        high_idx, pos = decode_varint(data, pos)
        if low_idx >= len(ids) or high_idx >= len(ids):
            raise SerializationError("forward reference in BDD stream")
        if var >= mgr.num_vars:
            raise SerializationError(
                f"variable {var} outside manager with {mgr.num_vars} vars"
            )
        # _mk is canonical: equal sub-DAGs re-merge automatically.
        ids.append(mgr._mk(var, ids[low_idx], ids[high_idx]))  # noqa: SLF001
    root_idx, pos = decode_varint(data, pos)
    if pos != len(data):
        raise SerializationError("trailing bytes after BDD stream")
    if root_idx >= len(ids):
        raise SerializationError("root index out of range")
    return ids[root_idx]


def serialize_nodes(mgr: BddManager, roots: Sequence[int]) -> bytes:
    """Serialize several sub-DAGs into one stream, sharing common nodes.

    The multi-root variant of :func:`serialize_node`: the node table is
    emitted once, then every root as an index into it.  Shipping a whole
    device state (rule matches, task packet spaces) this way costs one copy
    of the shared BDD structure instead of one per predicate — the batch
    format the parallel backend uses to move device tasks to workers.

    Layout::

        varint  num_nodes
        repeated node records (as in serialize_node)
        varint  num_roots
        repeated varint root (index into [FALSE, TRUE, rec 0, rec 1, ...])
    """
    order: List[int] = []
    seen = {FALSE, TRUE}
    for root in roots:
        stack: List[Tuple[int, bool]] = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if node in seen:
                continue
            if expanded:
                seen.add(node)
                order.append(node)
            else:
                stack.append((node, True))
                stack.append((mgr.high(node), False))
                stack.append((mgr.low(node), False))

    index: Dict[int, int] = {FALSE: 0, TRUE: 1}
    for i, node in enumerate(order):
        index[node] = i + 2

    out = bytearray()
    encode_varint(len(order), out)
    for node in order:
        encode_varint(mgr.top_var(node), out)
        encode_varint(index[mgr.low(node)], out)
        encode_varint(index[mgr.high(node)], out)
    encode_varint(len(roots), out)
    for root in roots:
        encode_varint(index[root], out)
    return bytes(out)


def deserialize_nodes(mgr: BddManager, data: bytes) -> List[int]:
    """Reconstruct a multi-root stream inside ``mgr``; return the root ids
    in their original order."""
    num_nodes, pos = decode_varint(data, 0)
    ids: List[int] = [FALSE, TRUE]
    for _ in range(num_nodes):
        var, pos = decode_varint(data, pos)
        low_idx, pos = decode_varint(data, pos)
        high_idx, pos = decode_varint(data, pos)
        if low_idx >= len(ids) or high_idx >= len(ids):
            raise SerializationError("forward reference in BDD stream")
        if var >= mgr.num_vars:
            raise SerializationError(
                f"variable {var} outside manager with {mgr.num_vars} vars"
            )
        ids.append(mgr._mk(var, ids[low_idx], ids[high_idx]))  # noqa: SLF001
    num_roots, pos = decode_varint(data, pos)
    roots: List[int] = []
    for _ in range(num_roots):
        root_idx, pos = decode_varint(data, pos)
        if root_idx >= len(ids):
            raise SerializationError("root index out of range")
        roots.append(ids[root_idx])
    if pos != len(data):
        raise SerializationError("trailing bytes after BDD stream")
    return roots


def _caches(mgr: BddManager) -> Tuple[Dict[int, bytes], Dict[bytes, int]]:
    """Per-manager memo tables for the predicate codec.

    The wire bytes are canonical — one boolean function has exactly one
    encoding — so both directions can be cached, and each direction can warm
    the other.  Verifiers announce the same regions to many neighbors across
    many rounds; without the memo the codec dominates the parallel backend's
    CPU time.

    Both tables are keyed by raw node id, which is only stable *between*
    garbage collections, so the first use on a manager registers an
    invalidation hook: ``BddManager.collect()`` calls it after every sweep
    that remapped ids, dropping the memo instead of letting it silently map
    old ids to the wrong bytes.
    """
    ser = getattr(mgr, "_serialize_cache", None)
    if ser is None:
        ser = mgr._serialize_cache = {}  # type: ignore[attr-defined]
        mgr._deserialize_cache = {}  # type: ignore[attr-defined]

        def _drop() -> None:
            mgr._serialize_cache.clear()  # type: ignore[attr-defined]
            mgr._deserialize_cache.clear()  # type: ignore[attr-defined]

        mgr.register_invalidation_hook(_drop)
    return ser, mgr._deserialize_cache  # type: ignore[attr-defined]


def serialize_predicate(pred: Predicate) -> bytes:
    """Serialize a predicate for transmission in a DVM message."""
    mgr = pred.ctx.mgr
    ser, deser = _caches(mgr)
    data = ser.get(pred.node)
    if data is None:
        data = ser[pred.node] = serialize_node(mgr, pred.node)
        deser.setdefault(data, pred.node)
    return data


def deserialize_predicate(ctx: PacketSpaceContext, data: bytes) -> Predicate:
    """Reconstruct a predicate previously produced by
    :func:`serialize_predicate` (possibly by another context with the same
    layout)."""
    mgr = ctx.mgr
    ser, deser = _caches(mgr)
    node = deser.get(data)
    if node is None:
        node = deser[data] = deserialize_node(mgr, data)
        ser.setdefault(node, data)
    return ctx.wrap(node)


def serialize_predicates(preds: Sequence[Predicate]) -> bytes:
    """Serialize several predicates of one context into a shared stream."""
    if not preds:
        return b"\x00\x00"  # num_nodes=0, num_roots=0
    mgr = preds[0].ctx.mgr
    for pred in preds:
        if pred.ctx.mgr is not mgr:
            raise SerializationError("predicates belong to different contexts")
    return serialize_nodes(mgr, [pred.node for pred in preds])


def deserialize_predicates(
    ctx: PacketSpaceContext, data: bytes
) -> List[Predicate]:
    """Inverse of :func:`serialize_predicates` (into the receiver's
    context)."""
    return [ctx.wrap(node) for node in deserialize_nodes(ctx.mgr, data)]
