"""Binary decision diagram engine and packet-space predicates.

This package is the predicate substrate of the reproduction: every packet set
(packet spaces of invariants, LECs, CIB predicates, baseline equivalence
classes) is a canonical BDD managed here.
"""

from repro.bdd.fields import Field, HeaderLayout, int_to_ip, ip_to_int
from repro.bdd.manager import FALSE, TRUE, BddManager
from repro.bdd.predicate import PacketSpaceContext, Predicate
from repro.bdd.serialize import (
    deserialize_predicate,
    serialize_predicate,
)

__all__ = [
    "BddManager",
    "FALSE",
    "TRUE",
    "Field",
    "HeaderLayout",
    "PacketSpaceContext",
    "Predicate",
    "deserialize_predicate",
    "serialize_predicate",
    "int_to_ip",
    "ip_to_int",
]
