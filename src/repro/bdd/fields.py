"""Header-field encodings on top of the BDD engine.

A :class:`HeaderLayout` assigns each packet header field a contiguous block of
BDD variables (most-significant bit first, which keeps IP-prefix predicates
linear in the prefix length).  The default layout matches the match fields
exercised by the paper's examples: destination/source IPv4 addresses and
destination/source TCP/UDP ports.

Example
-------
>>> layout = HeaderLayout.default()
>>> mgr = layout.new_manager()
>>> p1 = layout.prefix(mgr, "dst_ip", "10.0.0.0", 23)
>>> p2 = layout.prefix(mgr, "dst_ip", "10.0.0.0", 24)
>>> mgr.implies(p2, p1)
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bdd.manager import FALSE, TRUE, BddManager

__all__ = ["Field", "HeaderLayout", "ip_to_int", "int_to_ip"]


def ip_to_int(address: str) -> int:
    """Parse a dotted-quad IPv4 address into a 32-bit integer."""
    parts = address.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address: {address!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"malformed IPv4 address: {address!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Format a 32-bit integer as a dotted-quad IPv4 address."""
    if not 0 <= value < (1 << 32):
        raise ValueError(f"IPv4 integer out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass(frozen=True)
class Field:
    """A named header field occupying ``width`` BDD variables.

    ``offset`` is the index of the field's most significant bit in the global
    variable ordering.
    """

    name: str
    offset: int
    width: int

    def bit_vars(self) -> Sequence[int]:
        """Variable indices for this field, MSB first."""
        return range(self.offset, self.offset + self.width)


class HeaderLayout:
    """Maps header fields onto a global BDD variable ordering."""

    def __init__(self, fields: Sequence[Tuple[str, int]]) -> None:
        """``fields`` is an ordered list of ``(name, bit_width)`` pairs."""
        self._fields: Dict[str, Field] = {}
        offset = 0
        for name, width in fields:
            if width <= 0:
                raise ValueError(f"field {name!r} must have positive width")
            if name in self._fields:
                raise ValueError(f"duplicate field name {name!r}")
            self._fields[name] = Field(name, offset, width)
            offset += width
        self.num_vars = offset

    @classmethod
    def default(cls) -> "HeaderLayout":
        """The standard 5-tuple-ish layout used throughout the reproduction.

        dst_ip is first in the ordering because destination-prefix predicates
        dominate real FIBs; putting their bits at the top keeps those BDDs
        tiny.
        """
        return cls(
            [
                ("dst_ip", 32),
                ("dst_port", 16),
                ("src_ip", 32),
                ("src_port", 16),
                ("proto", 8),
            ]
        )

    @classmethod
    def dst_only(cls) -> "HeaderLayout":
        """A compact layout for destination-IP-only data planes (Delta-net's
        assumption), used by the large-scale datasets to keep BDDs small."""
        return cls([("dst_ip", 32)])

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def field(self, name: str) -> Field:
        try:
            return self._fields[name]
        except KeyError:
            raise KeyError(f"unknown header field {name!r}") from None

    def field_names(self) -> List[str]:
        return list(self._fields)

    def spec(self) -> List[Tuple[str, int]]:
        """The ``(name, width)`` list this layout was built from.

        ``HeaderLayout(layout.spec())`` reconstructs an identical layout —
        the parallel backend ships this spec so worker processes can rebuild
        the packet-space context (and hence decode shipped BDDs) without
        pickling the layout object itself.
        """
        ordered = sorted(self._fields.values(), key=lambda f: f.offset)
        return [(f.name, f.width) for f in ordered]

    def has_field(self, name: str) -> bool:
        return name in self._fields

    def new_manager(self) -> BddManager:
        """Create a BDD manager sized for this layout."""
        return BddManager(self.num_vars)

    # ------------------------------------------------------------------
    # Predicate constructors (raw node level; Predicate wraps these)
    # ------------------------------------------------------------------
    def value(self, mgr: BddManager, name: str, value: int) -> int:
        """Packet set where ``name`` equals ``value`` exactly."""
        field = self.field(name)
        if not 0 <= value < (1 << field.width):
            raise ValueError(f"value {value} out of range for field {name!r}")
        literals = {
            field.offset + i: bool((value >> (field.width - 1 - i)) & 1)
            for i in range(field.width)
        }
        return mgr.cube(literals)

    def prefix(self, mgr: BddManager, name: str, base, prefix_len: int) -> int:
        """Packet set where the top ``prefix_len`` bits of ``name`` match.

        ``base`` may be an int or (for dst_ip/src_ip) a dotted-quad string.
        """
        field = self.field(name)
        if isinstance(base, str):
            base = ip_to_int(base)
        if not 0 <= prefix_len <= field.width:
            raise ValueError(f"prefix length {prefix_len} invalid for {name!r}")
        literals = {
            field.offset + i: bool((base >> (field.width - 1 - i)) & 1)
            for i in range(prefix_len)
        }
        return mgr.cube(literals)

    def range_(self, mgr: BddManager, name: str, lo: int, hi: int) -> int:
        """Packet set where ``lo <= field <= hi`` (inclusive).

        Built as a union of maximal aligned prefixes covering the range, so
        the resulting BDD stays small.
        """
        field = self.field(name)
        limit = 1 << field.width
        if not (0 <= lo <= hi < limit):
            raise ValueError(f"range [{lo}, {hi}] invalid for field {name!r}")
        result = FALSE
        cursor = lo
        while cursor <= hi:
            # Largest aligned block starting at cursor that fits in the range.
            block = cursor & -cursor if cursor else limit
            while cursor + block - 1 > hi:
                block >>= 1
            prefix_len = field.width - block.bit_length() + 1
            result = mgr.apply_or(result, self.prefix(mgr, name, cursor, prefix_len))
            cursor += block
        return result

    def not_value(self, mgr: BddManager, name: str, value: int) -> int:
        """Packet set where ``name`` differs from ``value``."""
        return mgr.apply_not(self.value(mgr, name, value))

    def whole_space(self, mgr: BddManager) -> int:  # noqa: D401 - trivial
        """The universal packet set."""
        return TRUE

    # ------------------------------------------------------------------
    # Decoding helpers
    # ------------------------------------------------------------------
    def decode(self, assignment: Dict[int, bool], name: str) -> Tuple[int, int]:
        """Extract ``(value, known_mask)`` for field ``name`` from a cube.

        Bits absent from the assignment are free; ``known_mask`` has 1s where
        the cube pins the bit.
        """
        field = self.field(name)
        value = 0
        mask = 0
        for i in range(field.width):
            var = field.offset + i
            bit = 1 << (field.width - 1 - i)
            if var in assignment:
                mask |= bit
                if assignment[var]:
                    value |= bit
        return value, mask

    def concrete_packet(
        self, mgr: BddManager, node: int
    ) -> Optional[Dict[str, int]]:
        """Materialize one concrete packet from a predicate, or ``None``.

        Free bits default to zero.
        """
        assignment = mgr.pick_one(node)
        if assignment is None:
            return None
        packet = {}
        for name in self._fields:
            value, _mask = self.decode(assignment, name)
            packet[name] = value
        return packet

    def packet_to_node(self, mgr: BddManager, packet: Dict[str, int]) -> int:
        """Predicate matching exactly one fully specified packet."""
        node = TRUE
        for name, value in packet.items():
            node = mgr.apply_and(node, self.value(mgr, name, value))
        return node
