"""User-facing packet-set predicates.

A :class:`Predicate` bundles a BDD node with its manager and header layout so
that packet-set algebra reads naturally::

    space = ctx.prefix("dst_ip", "10.0.0.0", 23)
    web = space & ctx.value("dst_port", 80)
    rest = space - web

Tulkun stores LEC tables and CIB entries as predicates and relies on their
canonical form: two predicates are the same packet set iff their node ids are
equal (§5.1 "We choose to encode packet sets as predicates using BDD").
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.bdd.fields import HeaderLayout
from repro.bdd.manager import FALSE, TRUE, BddManager

__all__ = ["Predicate", "PacketSpaceContext"]


class Predicate:
    """An immutable packet set backed by a canonical BDD node.

    Every predicate registers itself as a garbage-collection root with its
    manager: ``BddManager.collect()`` keeps the nodes reachable from live
    predicates and rewrites their ``node`` ids in place.  Raw node ids held
    outside a Predicate are therefore only valid between collections.
    """

    __slots__ = ("ctx", "node", "__weakref__")

    def __init__(self, ctx: "PacketSpaceContext", node: int) -> None:
        self.ctx = ctx
        self.node = node
        ctx.mgr.register_root(self)

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def _coerce(self, other: "Predicate") -> int:
        if other.ctx is not self.ctx:
            raise ValueError("predicates belong to different contexts")
        return other.node

    def __and__(self, other: "Predicate") -> "Predicate":
        return Predicate(self.ctx, self.ctx.mgr.apply_and(self.node, self._coerce(other)))

    def __or__(self, other: "Predicate") -> "Predicate":
        return Predicate(self.ctx, self.ctx.mgr.apply_or(self.node, self._coerce(other)))

    def __sub__(self, other: "Predicate") -> "Predicate":
        return Predicate(self.ctx, self.ctx.mgr.apply_diff(self.node, self._coerce(other)))

    def __invert__(self) -> "Predicate":
        return Predicate(self.ctx, self.ctx.mgr.apply_not(self.node))

    def __xor__(self, other: "Predicate") -> "Predicate":
        return Predicate(self.ctx, self.ctx.mgr.apply_xor(self.node, self._coerce(other)))

    # ------------------------------------------------------------------
    # Tests
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return self.node == FALSE

    @property
    def is_universe(self) -> bool:
        return self.node == TRUE

    def overlaps(self, other: "Predicate") -> bool:
        return self.ctx.mgr.overlaps(self.node, self._coerce(other))

    def covers(self, other: "Predicate") -> bool:
        """True iff ``other`` is a subset of this predicate."""
        return self.ctx.mgr.implies(self._coerce(other), self.node)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Predicate):
            return NotImplemented
        return self.ctx is other.ctx and self.node == other.node

    def __hash__(self) -> int:
        return hash((id(self.ctx), self.node))

    def __bool__(self) -> bool:
        return self.node != FALSE

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def count(self) -> int:
        """Number of concrete packets in the set."""
        return self.ctx.mgr.count(self.node)

    def size(self) -> int:
        """Number of BDD nodes (a proxy for memory / message size)."""
        return self.ctx.mgr.size(self.node)

    def sample(self) -> Optional[Dict[str, int]]:
        """One concrete packet from the set, or ``None`` if empty."""
        return self.ctx.layout.concrete_packet(self.ctx.mgr, self.node)

    def cubes(self) -> Iterator[Dict[int, bool]]:
        """Disjoint cubes covering the set (low-level; mostly for tests)."""
        return self.ctx.mgr.iter_cubes(self.node)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.is_empty:
            return "Predicate(∅)"
        if self.is_universe:
            return "Predicate(*)"
        return f"Predicate(node={self.node}, packets={self.count()})"


class PacketSpaceContext:
    """Factory and shared state for predicates over one header layout.

    A single context is shared by the planner, all simulated devices, and all
    baselines in one experiment so that predicate equality stays meaningful.
    """

    def __init__(self, layout: Optional[HeaderLayout] = None) -> None:
        self.layout = layout or HeaderLayout.default()
        self.mgr: BddManager = self.layout.new_manager()
        self._false = Predicate(self, FALSE)
        self._true = Predicate(self, TRUE)
        self._atom_index = None

    def atom_index(self):
        """The shared dynamic atom index over this packet space.

        Created lazily (the BDD-only code paths never pay for it) and shared
        by every verifier/LEC table on this context so atom ids are
        comparable network-wide.
        """
        if self._atom_index is None:
            from repro.core.atomindex import AtomIndex

            self._atom_index = AtomIndex(self)
        return self._atom_index

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @property
    def empty(self) -> Predicate:
        return self._false

    @property
    def universe(self) -> Predicate:
        return self._true

    def wrap(self, node: int) -> Predicate:
        """Wrap a raw BDD node id produced by lower-level code."""
        return Predicate(self, node)

    def value(self, field: str, value: int) -> Predicate:
        return Predicate(self, self.layout.value(self.mgr, field, value))

    def not_value(self, field: str, value: int) -> Predicate:
        return Predicate(self, self.layout.not_value(self.mgr, field, value))

    def prefix(self, field: str, base, prefix_len: int) -> Predicate:
        return Predicate(self, self.layout.prefix(self.mgr, field, base, prefix_len))

    def ip_prefix(self, cidr: str, field: str = "dst_ip") -> Predicate:
        """Parse ``"10.0.0.0/23"`` into a destination-prefix predicate."""
        if "/" in cidr:
            base, _, length = cidr.partition("/")
            return self.prefix(field, base, int(length))
        return self.prefix(field, cidr, 32)

    def range_(self, field: str, lo: int, hi: int) -> Predicate:
        return Predicate(self, self.layout.range_(self.mgr, field, lo, hi))

    def packet(self, **fields: int) -> Predicate:
        """Predicate for one fully specified packet, e.g.
        ``ctx.packet(dst_ip=0x0A000001, dst_port=80)``."""
        return Predicate(self, self.layout.packet_to_node(self.mgr, fields))

    def union(self, predicates: Iterable[Predicate]) -> Predicate:
        node = FALSE
        for pred in predicates:
            node = self.mgr.apply_or(node, self._coerce(pred))
        return Predicate(self, node)

    def intersection(self, predicates: Iterable[Predicate]) -> Predicate:
        node = TRUE
        for pred in predicates:
            node = self.mgr.apply_and(node, self._coerce(pred))
        return Predicate(self, node)

    def _coerce(self, pred: Predicate) -> int:
        if pred.ctx is not self:
            raise ValueError("predicate belongs to a different context")
        return pred.node

    # ------------------------------------------------------------------
    # Partition helpers used by LEC maintenance
    # ------------------------------------------------------------------
    def refine(
        self, partition: List[Predicate], splitter: Predicate
    ) -> List[Predicate]:
        """Refine a disjoint partition by a splitter predicate.

        Every block is split into its intersection with and difference from
        ``splitter``; empty pieces are dropped.  This is the primitive used to
        maintain a minimal set of equivalence classes.
        """
        refined: List[Predicate] = []
        for block in partition:
            inside = block & splitter
            outside = block - splitter
            if not inside.is_empty:
                refined.append(inside)
            if not outside.is_empty:
                refined.append(outside)
        return refined

    def stats(self) -> Dict[str, int]:
        """Manager statistics, used by the overhead benchmarks."""
        return {
            "num_vars": self.mgr.num_vars,
            "nodes": self.mgr.node_count(),
            "live_nodes": self.mgr.live_node_count(),
        }
