"""Hash-consed reduced ordered binary decision diagrams (ROBDDs).

This is the predicate engine underneath every packet-set operation in the
reproduction, standing in for the JDD library used by the paper's prototype
(§8).  Packet sets are encoded as boolean functions over header bits and
manipulated with logical operations, which is exactly how Tulkun's on-device
verifiers intersect, union and complement LECs and CIB predicates.

Implementation notes
--------------------
* Nodes are identified by small integers.  ``0`` is the constant FALSE and
  ``1`` the constant TRUE.  Every other node is a triple
  ``(var, low, high)`` stored in parallel lists; the *unique table* maps the
  triple back to its id so structurally equal nodes are shared.
* All boolean operations are implemented through the classic ``ite``
  (if-then-else) operator with memoization, which keeps the code small and
  guarantees canonicity.
* Variables are ordered by their integer index; lower index = closer to the
  root.  Callers choose the ordering through
  :class:`repro.bdd.fields.HeaderLayout`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["BddManager", "FALSE", "TRUE"]

FALSE = 0
TRUE = 1

# Sentinel variable index for terminal nodes; larger than any real variable so
# that terminals always sort "below" internal nodes.
_TERMINAL_VAR = 1 << 30


class BddManager:
    """Owns a shared node table and all BDD operations.

    Every :class:`~repro.bdd.predicate.Predicate` belongs to exactly one
    manager; mixing node ids across managers is undefined.  Managers are not
    thread-safe (the simulator is single-threaded by design).

    Parameters
    ----------
    num_vars:
        Total number of boolean variables.  Needed for model counting.
    """

    def __init__(self, num_vars: int) -> None:
        if num_vars < 0:
            raise ValueError("num_vars must be non-negative")
        self.num_vars = num_vars
        # Parallel arrays for node storage; slots 0/1 are the terminals.
        self._var: List[int] = [_TERMINAL_VAR, _TERMINAL_VAR]
        self._low: List[int] = [0, 1]
        self._high: List[int] = [0, 1]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._count_cache: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------
    def _mk(self, var: int, low: int, high: int) -> int:
        """Return the canonical node for ``(var, low, high)``."""
        if low == high:
            return low
        key = (var, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._var)
            self._var.append(var)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = node
        return node

    def var(self, index: int) -> int:
        """Return the BDD for the single variable ``index``."""
        if not 0 <= index < self.num_vars:
            raise ValueError(f"variable index {index} out of range")
        return self._mk(index, FALSE, TRUE)

    def nvar(self, index: int) -> int:
        """Return the BDD for the negation of variable ``index``."""
        if not 0 <= index < self.num_vars:
            raise ValueError(f"variable index {index} out of range")
        return self._mk(index, TRUE, FALSE)

    # ------------------------------------------------------------------
    # Structural accessors
    # ------------------------------------------------------------------
    def top_var(self, node: int) -> int:
        """Variable index at the root of ``node`` (terminals sort last)."""
        return self._var[node]

    def low(self, node: int) -> int:
        return self._low[node]

    def high(self, node: int) -> int:
        return self._high[node]

    def node_count(self) -> int:
        """Total number of live nodes in the table (including terminals)."""
        return len(self._var)

    def size(self, node: int) -> int:
        """Number of distinct nodes reachable from ``node``."""
        seen = {FALSE, TRUE}
        stack = [node]
        count = 0
        while stack:
            n = stack.pop()
            if n in seen:
                continue
            seen.add(n)
            count += 1
            stack.append(self._low[n])
            stack.append(self._high[n])
        return count

    # ------------------------------------------------------------------
    # Core operation: if-then-else
    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        """Compute ``(f AND g) OR (NOT f AND h)`` canonically."""
        # Terminal shortcuts.
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f

        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached

        v = min(self._var[f], self._var[g], self._var[h])
        f0, f1 = self._cofactors(f, v)
        g0, g1 = self._cofactors(g, v)
        h0, h1 = self._cofactors(h, v)
        low = self.ite(f0, g0, h0)
        high = self.ite(f1, g1, h1)
        result = self._mk(v, low, high)
        self._ite_cache[key] = result
        return result

    def _cofactors(self, node: int, var: int) -> Tuple[int, int]:
        if self._var[node] == var:
            return self._low[node], self._high[node]
        return node, node

    # ------------------------------------------------------------------
    # Boolean algebra
    # ------------------------------------------------------------------
    def apply_and(self, f: int, g: int) -> int:
        return self.ite(f, g, FALSE)

    def apply_or(self, f: int, g: int) -> int:
        return self.ite(f, TRUE, g)

    def apply_not(self, f: int) -> int:
        return self.ite(f, FALSE, TRUE)

    def apply_xor(self, f: int, g: int) -> int:
        return self.ite(f, self.apply_not(g), g)

    def apply_diff(self, f: int, g: int) -> int:
        """Set difference ``f AND NOT g``."""
        return self.ite(f, self.apply_not(g), FALSE)

    def implies(self, f: int, g: int) -> bool:
        """True iff ``f`` is a subset of ``g`` as a packet set."""
        return self.apply_diff(f, g) == FALSE

    def equal(self, f: int, g: int) -> bool:
        """Canonical form makes equality a pointer comparison."""
        return f == g

    def is_false(self, f: int) -> bool:
        return f == FALSE

    def is_true(self, f: int) -> bool:
        return f == TRUE

    def overlaps(self, f: int, g: int) -> bool:
        """True iff the two packet sets intersect."""
        return self.apply_and(f, g) != FALSE

    def exists(self, node: int, variables: frozenset) -> int:
        """Existentially quantify the given variables out of ``node``.

        Used to implement packet transformations: rewriting a header field to
        a constant is "forget the old bits, then constrain to the new value".
        """
        cache: Dict[int, int] = {}

        def walk(n: int) -> int:
            if n in (FALSE, TRUE):
                return n
            cached = cache.get(n)
            if cached is not None:
                return cached
            v = self._var[n]
            low = walk(self._low[n])
            high = walk(self._high[n])
            if v in variables:
                result = self.apply_or(low, high)
            else:
                result = self._mk(v, low, high)
            cache[n] = result
            return result

        return walk(node)

    # ------------------------------------------------------------------
    # Cube / assignment construction
    # ------------------------------------------------------------------
    def cube(self, literals: Dict[int, bool]) -> int:
        """Conjunction of variables set to fixed values.

        ``literals`` maps variable index -> required boolean value.
        """
        result = TRUE
        # Build bottom-up in reverse variable order for linear-time _mk use.
        for index in sorted(literals, reverse=True):
            if literals[index]:
                result = self._mk(index, FALSE, result)
            else:
                result = self._mk(index, result, FALSE)
        return result

    # ------------------------------------------------------------------
    # Model counting and enumeration
    # ------------------------------------------------------------------
    def count(self, node: int) -> int:
        """Number of satisfying assignments over all ``num_vars`` variables."""
        return self._count_over(node, 0) if self.num_vars else (1 if node == TRUE else 0)

    def _count_over(self, node: int, from_var: int) -> int:
        if node == FALSE:
            return 0
        if node == TRUE:
            return 1 << (self.num_vars - from_var)
        cached = self._count_cache.get(node)
        if cached is None:
            v = self._var[node]
            lo = self._count_over(self._low[node], v + 1)
            hi = self._count_over(self._high[node], v + 1)
            cached = lo + hi
            self._count_cache[node] = cached
        # The cache stores the count assuming we start exactly at the node's
        # own variable; scale by the skipped variables above it.
        return cached << (self._var[node] - from_var)

    def pick_one(self, node: int) -> Optional[Dict[int, bool]]:
        """Return one satisfying assignment (partial: only forced variables).

        Returns ``None`` when the function is unsatisfiable.  Unmentioned
        variables may take either value.
        """
        if node == FALSE:
            return None
        assignment: Dict[int, bool] = {}
        while node != TRUE:
            if self._low[node] != FALSE:
                assignment[self._var[node]] = False
                node = self._low[node]
            else:
                assignment[self._var[node]] = True
                node = self._high[node]
        return assignment

    def iter_cubes(self, node: int) -> Iterator[Dict[int, bool]]:
        """Yield disjoint cubes (partial assignments) covering the function."""
        if node == FALSE:
            return
        path: Dict[int, bool] = {}

        def walk(n: int) -> Iterator[Dict[int, bool]]:
            if n == TRUE:
                yield dict(path)
                return
            if n == FALSE:
                return
            v = self._var[n]
            path[v] = False
            yield from walk(self._low[n])
            path[v] = True
            yield from walk(self._high[n])
            del path[v]

        yield from walk(node)

    # ------------------------------------------------------------------
    # Housekeeping
    # ------------------------------------------------------------------
    def clear_caches(self) -> None:
        """Drop operation caches (node table is kept)."""
        self._ite_cache.clear()
        self._count_cache.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BddManager(num_vars={self.num_vars}, nodes={self.node_count()})"
