"""Hash-consed reduced ordered binary decision diagrams (ROBDDs).

This is the predicate engine underneath every packet-set operation in the
reproduction, standing in for the JDD library used by the paper's prototype
(§8).  Packet sets are encoded as boolean functions over header bits and
manipulated with logical operations, which is exactly how Tulkun's on-device
verifiers intersect, union and complement LECs and CIB predicates.

Implementation notes
--------------------
* Nodes are identified by small integers.  ``0`` is the constant FALSE and
  ``1`` the constant TRUE.  Every other node is a triple
  ``(var, low, high)`` stored in parallel lists; the *unique table* maps the
  triple back to its id so structurally equal nodes are shared.
* The hot boolean operations (AND, OR, DIFF, XOR) are *specialized apply
  kernels*: each has its own terminal shortcuts and its own operation cache
  (commutativity-normalized for AND/OR/XOR so ``f op g`` and ``g op f``
  share one entry).  Complement is a dedicated linear-time walk with a
  persistent involution memo.  The classic ``ite`` operator remains for
  general three-operand use and routes terminal-operand calls to the
  kernels.  All kernels use explicit-stack iteration instead of Python
  recursion, so arbitrarily wide header layouts (deep BDDs) cannot hit the
  interpreter's recursion limit.
* Variables are ordered by their integer index; lower index = closer to the
  root.  Callers choose the ordering through
  :class:`repro.bdd.fields.HeaderLayout`.
* The node table supports mark-sweep garbage collection: long-lived node
  references are held through registered *root holders* (any object with a
  ``node`` attribute — in practice :class:`repro.bdd.predicate.Predicate`,
  which registers itself on construction).  :meth:`collect` compacts the
  parallel arrays, remaps every live holder's node id in place, and
  invalidates all operation caches plus any registered external memos (the
  :mod:`repro.bdd.serialize` codec registers its node↔bytes tables).  Raw
  integer node ids are therefore only stable *between* collections; never
  hold one across a safe point (event-handler / worker-command boundary).
"""

from __future__ import annotations

import weakref
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

__all__ = ["BddManager", "BddStats", "FALSE", "TRUE"]

FALSE = 0
TRUE = 1

# Sentinel variable index for terminal nodes; larger than any real variable so
# that terminals always sort "below" internal nodes.
_TERMINAL_VAR = 1 << 30

# Explicit-stack frame phases used by the generic ``ite``/``exists`` walks.
_EXPAND = 0
_COMBINE = 1

# The binary apply kernels use two-element frames with the phase encoded in
# the first element's sign instead: ``(a, b)`` with ``a >= 2`` is an expand
# frame holding a non-terminal operand pair, ``(~v, packed_key)`` (first
# element negative) is a combine frame that already carries the branch
# variable and the cache key, and ``(_CONST, value)`` re-injects an
# already-resolved high child into the result stream after its low sibling.
# ``_CONST`` is far below any ``~v`` (variables are < 2**30).
_CONST = -(1 << 40)


class BddStats:
    """Per-manager engine counters (exported via ``--profile`` and the
    benchmark harness).

    ``cache_hits``/``cache_misses`` count *recursion steps* resolved from /
    inserted into the operation caches across all kernels; the ``ops_*``
    fields count top-level kernel invocations.  ``peak_nodes`` is the node
    table's high-water mark (never reset by GC); ``gc_reclaimed`` accumulates
    nodes freed across all collections.
    """

    __slots__ = (
        "ops_and",
        "ops_or",
        "ops_diff",
        "ops_xor",
        "ops_not",
        "ops_ite",
        "ops_exists",
        "ops_count",
        "cache_hits",
        "cache_misses",
        "peak_nodes",
        "gc_runs",
        "gc_reclaimed",
        "gc_last_live",
    )

    def __init__(self) -> None:
        self.ops_and = 0
        self.ops_or = 0
        self.ops_diff = 0
        self.ops_xor = 0
        self.ops_not = 0
        self.ops_ite = 0
        self.ops_exists = 0
        self.ops_count = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.peak_nodes = 2
        self.gc_runs = 0
        self.gc_reclaimed = 0
        self.gc_last_live = 0

    def total_ops(self) -> int:
        return (
            self.ops_and + self.ops_or + self.ops_diff + self.ops_xor
            + self.ops_not + self.ops_ite + self.ops_exists + self.ops_count
        )

    def hit_rate(self) -> float:
        looked = self.cache_hits + self.cache_misses
        return self.cache_hits / looked if looked else 0.0

    def snapshot(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BddStats(ops={self.total_ops()}, "
            f"hit_rate={self.hit_rate():.2f}, peak={self.peak_nodes})"
        )


class BddManager:
    """Owns a shared node table and all BDD operations.

    Every :class:`~repro.bdd.predicate.Predicate` belongs to exactly one
    manager; mixing node ids across managers is undefined.  Managers are not
    thread-safe (the simulator is single-threaded by design).

    Parameters
    ----------
    num_vars:
        Total number of boolean variables.  Needed for model counting.
    """

    def __init__(self, num_vars: int) -> None:
        if num_vars < 0:
            raise ValueError("num_vars must be non-negative")
        self.num_vars = num_vars
        # Parallel arrays for node storage; slots 0/1 are the terminals.
        self._var: List[int] = [_TERMINAL_VAR, _TERMINAL_VAR]
        self._low: List[int] = [0, 1]
        self._high: List[int] = [0, 1]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        # Specialized per-operation caches.  Keys are the packed integer
        # ``(a << 32) | b`` — int keys hash faster than tuples and allocate
        # nothing.  AND/OR/XOR normalize to a <= b (commutativity); DIFF is
        # not commutative and packs (f, g) directly.
        self._and_cache: Dict[int, int] = {}
        self._or_cache: Dict[int, int] = {}
        self._diff_cache: Dict[int, int] = {}
        self._xor_cache: Dict[int, int] = {}
        # Complement is an involution: the memo stores both directions.
        self._not_cache: Dict[int, int] = {FALSE: TRUE, TRUE: FALSE}
        # Packed (f << 64) | (g << 32) | h.
        self._ite_cache: Dict[int, int] = {}
        self._count_cache: Dict[int, int] = {}
        # Manager-level quantification memo keyed by (node, variable set):
        # repeated packet transformations over the same LEC reuse the whole
        # sub-walk instead of re-deriving it per call.
        self._exists_cache: Dict[Tuple[int, FrozenSet[int]], int] = {}

        # Garbage collection state.  ``_roots`` maps id(weakref) -> weakref
        # of a *root holder* (an object with a mutable ``node`` attribute).
        # A plain WeakSet would be wrong here: Predicates compare equal by
        # node id, so a set would silently drop duplicate holders and leave
        # them un-remapped after a sweep.
        self._roots: Dict[int, "weakref.ref"] = {}
        self._pinned: Set[int] = set()
        self._invalidation_hooks: List[Callable[[], None]] = []
        self._remap_hooks: List[Callable[[Dict[int, int]], None]] = []
        #: Optional high-water mark: when the node table reaches this many
        #: slots, :meth:`maybe_collect` triggers a sweep (``None`` = GC off).
        self.gc_threshold: Optional[int] = None

        self.stats = BddStats()

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------
    def _mk(self, var: int, low: int, high: int) -> int:
        """Return the canonical node for ``(var, low, high)``."""
        if low == high:
            return low
        key = (var, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._var)
            self._var.append(var)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = node
        return node

    def _note_peak(self) -> None:
        n = len(self._var)
        if n > self.stats.peak_nodes:
            self.stats.peak_nodes = n

    def var(self, index: int) -> int:
        """Return the BDD for the single variable ``index``."""
        if not 0 <= index < self.num_vars:
            raise ValueError(f"variable index {index} out of range")
        return self._mk(index, FALSE, TRUE)

    def nvar(self, index: int) -> int:
        """Return the BDD for the negation of variable ``index``."""
        if not 0 <= index < self.num_vars:
            raise ValueError(f"variable index {index} out of range")
        return self._mk(index, TRUE, FALSE)

    # ------------------------------------------------------------------
    # Structural accessors
    # ------------------------------------------------------------------
    def top_var(self, node: int) -> int:
        """Variable index at the root of ``node`` (terminals sort last)."""
        return self._var[node]

    def low(self, node: int) -> int:
        return self._low[node]

    def high(self, node: int) -> int:
        return self._high[node]

    def node_count(self) -> int:
        """Node-table length (including terminals *and* dead nodes).

        This is the engine's memory footprint; for the number of nodes still
        reachable from live predicates use :meth:`live_node_count`.
        """
        return len(self._var)

    def live_node_count(self) -> int:
        """Nodes reachable from registered roots + pins (incl. terminals).

        ``node_count() - live_node_count()`` is what a :meth:`collect` sweep
        would reclaim right now.
        """
        return len(self._reachable(self._root_nodes()))

    def _reachable(self, roots: Iterable[int]) -> Set[int]:
        """All nodes reachable from ``roots``, terminals always included.

        The one traversal shared by :meth:`size`, :meth:`live_node_count`
        and the GC mark phase.
        """
        low = self._low
        high = self._high
        seen = {FALSE, TRUE}
        stack = list(roots)
        while stack:
            n = stack.pop()
            if n in seen:
                continue
            seen.add(n)
            stack.append(low[n])
            stack.append(high[n])
        return seen

    def size(self, node: int) -> int:
        """Number of distinct internal nodes reachable from ``node``."""
        return len(self._reachable((node,))) - 2

    # ------------------------------------------------------------------
    # Core operation: if-then-else
    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        """Compute ``(f AND g) OR (NOT f AND h)`` canonically.

        Calls whose ``g``/``h`` operands are terminals are routed to the
        specialized kernels (they are the same functions: ``ite(f, g, 0)``
        is AND, ``ite(f, 1, h)`` is OR, ``ite(f, 0, 1)`` is NOT, ...), so
        only genuinely three-operand work runs the ternary recursion.
        """
        self.stats.ops_ite += 1
        result = self._ite_route(f, g, h)
        if result is not None:
            return result
        return self._ite_iter(f, g, h)

    def _ite_route(self, f: int, g: int, h: int) -> Optional[int]:
        """Terminal shortcuts + kernel routing; ``None`` = general case."""
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE:
            return f if h == FALSE else self.apply_or(f, h)
        if g == FALSE:
            return self.apply_not(f) if h == TRUE else self.apply_diff(h, f)
        if h == FALSE:
            return self.apply_and(f, g)
        if h == TRUE:
            # f -> g, i.e. NOT (f AND NOT g).
            return self.apply_not(self.apply_diff(f, g))
        return None

    def _ite_iter(self, f: int, g: int, h: int) -> int:
        var = self._var
        low = self._low
        high = self._high
        cache = self._ite_cache
        mk = self._mk
        stats = self.stats
        hits = misses = 0
        results: List[int] = []
        frames: List[Tuple[int, int, int, int]] = [(_EXPAND, f, g, h)]
        while frames:
            phase, a, b, c = frames.pop()
            if phase == _EXPAND:
                routed = self._ite_route(a, b, c)
                if routed is not None:
                    results.append(routed)
                    continue
                r = cache.get((a << 64) | (b << 32) | c)
                if r is not None:
                    hits += 1
                    results.append(r)
                    continue
                misses += 1
                va, vb, vc = var[a], var[b], var[c]
                v = va if va < vb else vb
                if vc < v:
                    v = vc
                if va == v:
                    a0, a1 = low[a], high[a]
                else:
                    a0 = a1 = a
                if vb == v:
                    b0, b1 = low[b], high[b]
                else:
                    b0 = b1 = b
                if vc == v:
                    c0, c1 = low[c], high[c]
                else:
                    c0 = c1 = c
                frames.append((_COMBINE, a, b, c))
                frames.append((_EXPAND, a1, b1, c1))
                frames.append((_EXPAND, a0, b0, c0))
            else:
                hi = results.pop()
                lo = results.pop()
                va, vb, vc = var[a], var[b], var[c]
                v = va if va < vb else vb
                if vc < v:
                    v = vc
                r = mk(v, lo, hi)
                cache[(a << 64) | (b << 32) | c] = r
                results.append(r)
        stats.cache_hits += hits
        stats.cache_misses += misses
        self._note_peak()
        return results[-1]

    def _cofactors(self, node: int, var: int) -> Tuple[int, int]:
        if self._var[node] == var:
            return self._low[node], self._high[node]
        return node, node

    # ------------------------------------------------------------------
    # Specialized apply kernels
    # ------------------------------------------------------------------
    # Each kernel repeats the same explicit-stack shape with its own
    # terminal rules and cache.  The duplication is deliberate: these four
    # loops are the engine's hot paths, and folding them into one generic
    # apply costs an operator dispatch per node visit.
    #
    # Frame protocol (see the ``_CONST`` comment at module top): expand
    # frames only ever hold *non-terminal* pairs (commutative kernels
    # pre-normalize to ``a < b`` at push time), because each parent resolves
    # terminal children inline instead of pushing frames for them — for
    # FIB-style cube-heavy operands roughly half of all child pairs are
    # terminal, and skipping their frame round-trip is most of the win over
    # the naive three-phase stack.  Combine frames carry the branch variable
    # and the packed cache key computed during expansion, so nothing is
    # re-derived when the children come back.

    def apply_and(self, f: int, g: int) -> int:
        """Set intersection ``f AND g``."""
        self.stats.ops_and += 1
        if f == FALSE or g == FALSE:
            return FALSE
        if f == TRUE:
            return g
        if g == TRUE or f == g:
            return f
        if f > g:  # commutative: one cache entry per unordered pair
            f, g = g, f
        var = self._var
        low = self._low
        high = self._high
        cache = self._and_cache
        unique = self._unique
        cget = cache.get
        uget = unique.get
        hits = misses = 0
        results: List[int] = []
        rpush = results.append
        rpop = results.pop
        frames: List[Tuple[int, int]] = [(f, g)]
        fpush = frames.append
        fpop = frames.pop
        while frames:
            x, y = fpop()
            if x >= 0:
                k = (x << 32) | y
                r = cget(k)
                if r is not None:
                    hits += 1
                    rpush(r)
                    continue
                misses += 1
                vx = var[x]
                vy = var[y]
                if vx <= vy:
                    v = vx
                    a0 = low[x]
                    a1 = high[x]
                else:
                    v = vy
                    a0 = a1 = x
                if vy <= vx:
                    b0 = low[y]
                    b1 = high[y]
                else:
                    b0 = b1 = y
                fpush((~v, k))
                if a1 == FALSE or b1 == FALSE:
                    hi = FALSE
                elif a1 == TRUE:
                    hi = b1
                elif b1 == TRUE or a1 == b1:
                    hi = a1
                else:
                    hi = -1
                if a0 == FALSE or b0 == FALSE:
                    lo = FALSE
                elif a0 == TRUE:
                    lo = b0
                elif b0 == TRUE or a0 == b0:
                    lo = a0
                else:
                    lo = -1
                if lo >= 0:
                    rpush(lo)
                    if hi >= 0:
                        rpush(hi)
                    else:
                        fpush((a1, b1) if a1 < b1 else (b1, a1))
                else:
                    if hi >= 0:
                        fpush((_CONST, hi))
                    else:
                        fpush((a1, b1) if a1 < b1 else (b1, a1))
                    fpush((a0, b0) if a0 < b0 else (b0, a0))
            elif x != _CONST:
                hi = rpop()
                lo = rpop()
                if lo == hi:
                    r = lo
                else:
                    v = ~x
                    key = (v, lo, hi)
                    r = uget(key)
                    if r is None:
                        r = len(var)
                        var.append(v)
                        low.append(lo)
                        high.append(hi)
                        unique[key] = r
                cache[y] = r
                rpush(r)
            else:
                rpush(y)
        stats = self.stats
        stats.cache_hits += hits
        stats.cache_misses += misses
        self._note_peak()
        return results[-1]

    def apply_or(self, f: int, g: int) -> int:
        """Set union ``f OR g``."""
        self.stats.ops_or += 1
        if f == TRUE or g == TRUE:
            return TRUE
        if f == FALSE:
            return g
        if g == FALSE or f == g:
            return f
        if f > g:
            f, g = g, f
        var = self._var
        low = self._low
        high = self._high
        cache = self._or_cache
        unique = self._unique
        cget = cache.get
        uget = unique.get
        hits = misses = 0
        results: List[int] = []
        rpush = results.append
        rpop = results.pop
        frames: List[Tuple[int, int]] = [(f, g)]
        fpush = frames.append
        fpop = frames.pop
        while frames:
            x, y = fpop()
            if x >= 0:
                k = (x << 32) | y
                r = cget(k)
                if r is not None:
                    hits += 1
                    rpush(r)
                    continue
                misses += 1
                vx = var[x]
                vy = var[y]
                if vx <= vy:
                    v = vx
                    a0 = low[x]
                    a1 = high[x]
                else:
                    v = vy
                    a0 = a1 = x
                if vy <= vx:
                    b0 = low[y]
                    b1 = high[y]
                else:
                    b0 = b1 = y
                fpush((~v, k))
                if a1 == TRUE or b1 == TRUE:
                    hi = TRUE
                elif a1 == FALSE:
                    hi = b1
                elif b1 == FALSE or a1 == b1:
                    hi = a1
                else:
                    hi = -1
                if a0 == TRUE or b0 == TRUE:
                    lo = TRUE
                elif a0 == FALSE:
                    lo = b0
                elif b0 == FALSE or a0 == b0:
                    lo = a0
                else:
                    lo = -1
                if lo >= 0:
                    rpush(lo)
                    if hi >= 0:
                        rpush(hi)
                    else:
                        fpush((a1, b1) if a1 < b1 else (b1, a1))
                else:
                    if hi >= 0:
                        fpush((_CONST, hi))
                    else:
                        fpush((a1, b1) if a1 < b1 else (b1, a1))
                    fpush((a0, b0) if a0 < b0 else (b0, a0))
            elif x != _CONST:
                hi = rpop()
                lo = rpop()
                if lo == hi:
                    r = lo
                else:
                    v = ~x
                    key = (v, lo, hi)
                    r = uget(key)
                    if r is None:
                        r = len(var)
                        var.append(v)
                        low.append(lo)
                        high.append(hi)
                        unique[key] = r
                cache[y] = r
                rpush(r)
            else:
                rpush(y)
        stats = self.stats
        stats.cache_hits += hits
        stats.cache_misses += misses
        self._note_peak()
        return results[-1]

    def apply_diff(self, f: int, g: int) -> int:
        """Set difference ``f AND NOT g``.

        A dedicated kernel: routing through ``ite`` would first materialize
        the complement of ``g`` as garbage nodes; the direct recursion never
        builds them.
        """
        self.stats.ops_diff += 1
        if f == FALSE or g == TRUE or f == g:
            return FALSE
        if g == FALSE:
            return f
        if f == TRUE:
            return self.apply_not(g)
        var = self._var
        low = self._low
        high = self._high
        cache = self._diff_cache
        not_cache = self._not_cache
        unique = self._unique
        cget = cache.get
        nget = not_cache.get
        uget = unique.get
        hits = misses = 0
        results: List[int] = []
        rpush = results.append
        rpop = results.pop
        frames: List[Tuple[int, int]] = [(f, g)]
        fpush = frames.append
        fpop = frames.pop
        while frames:
            x, y = fpop()
            if x >= 0:
                # Not commutative: the key packs (f, g) in call order.
                k = (x << 32) | y
                r = cget(k)
                if r is not None:
                    hits += 1
                    rpush(r)
                    continue
                misses += 1
                vx = var[x]
                vy = var[y]
                if vx <= vy:
                    v = vx
                    a0 = low[x]
                    a1 = high[x]
                else:
                    v = vy
                    a0 = a1 = x
                if vy <= vx:
                    b0 = low[y]
                    b1 = high[y]
                else:
                    b0 = b1 = y
                fpush((~v, k))
                if a1 == FALSE or b1 == TRUE or a1 == b1:
                    hi = FALSE
                elif b1 == FALSE:
                    hi = a1
                elif a1 == TRUE:
                    # TRUE \ b = NOT b; the involution memo is often warm.
                    hi = nget(b1)
                    if hi is None:
                        hi = self.apply_not(b1)
                else:
                    hi = -1
                if a0 == FALSE or b0 == TRUE or a0 == b0:
                    lo = FALSE
                elif b0 == FALSE:
                    lo = a0
                elif a0 == TRUE:
                    lo = nget(b0)
                    if lo is None:
                        lo = self.apply_not(b0)
                else:
                    lo = -1
                if lo >= 0:
                    rpush(lo)
                    if hi >= 0:
                        rpush(hi)
                    else:
                        fpush((a1, b1))
                else:
                    if hi >= 0:
                        fpush((_CONST, hi))
                    else:
                        fpush((a1, b1))
                    fpush((a0, b0))
            elif x != _CONST:
                hi = rpop()
                lo = rpop()
                if lo == hi:
                    r = lo
                else:
                    v = ~x
                    key = (v, lo, hi)
                    r = uget(key)
                    if r is None:
                        r = len(var)
                        var.append(v)
                        low.append(lo)
                        high.append(hi)
                        unique[key] = r
                cache[y] = r
                rpush(r)
            else:
                rpush(y)
        stats = self.stats
        stats.cache_hits += hits
        stats.cache_misses += misses
        self._note_peak()
        return results[-1]

    def apply_xor(self, f: int, g: int) -> int:
        """Symmetric difference ``f XOR g``."""
        self.stats.ops_xor += 1
        if f == g:
            return FALSE
        if f == FALSE:
            return g
        if g == FALSE:
            return f
        if f == TRUE:
            return self.apply_not(g)
        if g == TRUE:
            return self.apply_not(f)
        var = self._var
        low = self._low
        high = self._high
        cache = self._xor_cache
        not_cache = self._not_cache
        unique = self._unique
        cget = cache.get
        nget = not_cache.get
        uget = unique.get
        hits = misses = 0
        results: List[int] = []
        rpush = results.append
        rpop = results.pop
        frames: List[Tuple[int, int]] = [(f, g) if f < g else (g, f)]
        fpush = frames.append
        fpop = frames.pop
        while frames:
            x, y = fpop()
            if x >= 0:
                k = (x << 32) | y
                r = cget(k)
                if r is not None:
                    hits += 1
                    rpush(r)
                    continue
                misses += 1
                vx = var[x]
                vy = var[y]
                if vx <= vy:
                    v = vx
                    a0 = low[x]
                    a1 = high[x]
                else:
                    v = vy
                    a0 = a1 = x
                if vy <= vx:
                    b0 = low[y]
                    b1 = high[y]
                else:
                    b0 = b1 = y
                fpush((~v, k))
                if a1 == b1:
                    hi = FALSE
                elif a1 == FALSE:
                    hi = b1
                elif b1 == FALSE:
                    hi = a1
                elif a1 == TRUE or b1 == TRUE:
                    other = b1 if a1 == TRUE else a1
                    hi = nget(other)
                    if hi is None:
                        hi = self.apply_not(other)
                else:
                    hi = -1
                if a0 == b0:
                    lo = FALSE
                elif a0 == FALSE:
                    lo = b0
                elif b0 == FALSE:
                    lo = a0
                elif a0 == TRUE or b0 == TRUE:
                    other = b0 if a0 == TRUE else a0
                    lo = nget(other)
                    if lo is None:
                        lo = self.apply_not(other)
                else:
                    lo = -1
                if lo >= 0:
                    rpush(lo)
                    if hi >= 0:
                        rpush(hi)
                    else:
                        fpush((a1, b1) if a1 < b1 else (b1, a1))
                else:
                    if hi >= 0:
                        fpush((_CONST, hi))
                    else:
                        fpush((a1, b1) if a1 < b1 else (b1, a1))
                    fpush((a0, b0) if a0 < b0 else (b0, a0))
            elif x != _CONST:
                hi = rpop()
                lo = rpop()
                if lo == hi:
                    r = lo
                else:
                    v = ~x
                    key = (v, lo, hi)
                    r = uget(key)
                    if r is None:
                        r = len(var)
                        var.append(v)
                        low.append(lo)
                        high.append(hi)
                        unique[key] = r
                cache[y] = r
                rpush(r)
            else:
                rpush(y)
        stats = self.stats
        stats.cache_hits += hits
        stats.cache_misses += misses
        self._note_peak()
        return results[-1]

    def apply_not(self, f: int) -> int:
        """Complement ``NOT f`` — a linear walk over ``f``'s sub-DAG.

        The memo is persistent and stores the involution both ways, so
        complementing a complement is a dict lookup.
        """
        self.stats.ops_not += 1
        memo = self._not_cache
        r = memo.get(f)  # seeds cover the terminals
        if r is not None:
            self.stats.cache_hits += 1
            return r
        var = self._var
        low = self._low
        high = self._high
        unique = self._unique
        mget = memo.get
        uget = unique.get
        hits = misses = 0
        results: List[int] = []
        rpush = results.append
        rpop = results.pop
        # Unary walk: frames are bare ints — ``n >= 0`` expands node ``n``,
        # ``~n`` combines it.  Terminals resolve through the memo seeds.
        frames: List[int] = [f]
        fpush = frames.append
        fpop = frames.pop
        while frames:
            n = fpop()
            if n >= 0:
                r = mget(n)
                if r is not None:
                    hits += 1
                    rpush(r)
                    continue
                misses += 1
                fpush(~n)
                fpush(high[n])
                fpush(low[n])
            else:
                n = ~n
                hi = rpop()
                lo = rpop()
                # lo != hi always holds here: complement preserves node
                # distinctness, so the reduction collapse cannot trigger.
                key = (var[n], lo, hi)
                r = uget(key)
                if r is None:
                    r = len(var)
                    var.append(key[0])
                    low.append(lo)
                    high.append(hi)
                    unique[key] = r
                memo[n] = r
                memo[r] = n
                rpush(r)
        stats = self.stats
        stats.cache_hits += hits
        stats.cache_misses += misses
        self._note_peak()
        return results[-1]

    # ------------------------------------------------------------------
    # Derived predicates
    # ------------------------------------------------------------------
    def implies(self, f: int, g: int) -> bool:
        """True iff ``f`` is a subset of ``g`` as a packet set."""
        return self.apply_diff(f, g) == FALSE

    def equal(self, f: int, g: int) -> bool:
        """Canonical form makes equality a pointer comparison."""
        return f == g

    def is_false(self, f: int) -> bool:
        return f == FALSE

    def is_true(self, f: int) -> bool:
        return f == TRUE

    def overlaps(self, f: int, g: int) -> bool:
        """True iff the two packet sets intersect."""
        return self.apply_and(f, g) != FALSE

    def exists(self, node: int, variables: FrozenSet[int]) -> int:
        """Existentially quantify the given variables out of ``node``.

        Used to implement packet transformations: rewriting a header field to
        a constant is "forget the old bits, then constrain to the new value".
        Results are memoized at the manager level keyed by
        ``(node, variables)``, so repeated transformations over the same LEC
        (the common case: every UPDATE round re-applies the same rewrites)
        reuse the entire sub-walk instead of re-deriving it per call.
        """
        self.stats.ops_exists += 1
        if node == FALSE or node == TRUE:
            return node
        variables = frozenset(variables)
        var = self._var
        low = self._low
        high = self._high
        cache = self._exists_cache
        mk = self._mk
        apply_or = self.apply_or
        hits = misses = 0
        results: List[int] = []
        frames: List[Tuple[int, int]] = [(_EXPAND, node)]
        while frames:
            phase, n = frames.pop()
            if phase == _EXPAND:
                if n == FALSE or n == TRUE:
                    results.append(n)
                    continue
                r = cache.get((n, variables))
                if r is not None:
                    hits += 1
                    results.append(r)
                    continue
                misses += 1
                frames.append((_COMBINE, n))
                frames.append((_EXPAND, high[n]))
                frames.append((_EXPAND, low[n]))
            else:
                hi = results.pop()
                lo = results.pop()
                v = var[n]
                if v in variables:
                    r = apply_or(lo, hi)
                else:
                    r = mk(v, lo, hi)
                cache[(n, variables)] = r
                results.append(r)
        stats = self.stats
        stats.cache_hits += hits
        stats.cache_misses += misses
        self._note_peak()
        return results[-1]

    # ------------------------------------------------------------------
    # Cube / assignment construction
    # ------------------------------------------------------------------
    def cube(self, literals: Dict[int, bool]) -> int:
        """Conjunction of variables set to fixed values.

        ``literals`` maps variable index -> required boolean value.
        """
        result = TRUE
        # Build bottom-up in reverse variable order for linear-time _mk use.
        for index in sorted(literals, reverse=True):
            if literals[index]:
                result = self._mk(index, FALSE, result)
            else:
                result = self._mk(index, result, FALSE)
        self._note_peak()
        return result

    # ------------------------------------------------------------------
    # Model counting and enumeration
    # ------------------------------------------------------------------
    def count(self, node: int) -> int:
        """Number of satisfying assignments over all ``num_vars`` variables."""
        self.stats.ops_count += 1
        num_vars = self.num_vars
        if not num_vars:
            return 1 if node == TRUE else 0
        if node == FALSE:
            return 0
        if node == TRUE:
            return 1 << num_vars
        var = self._var
        low = self._low
        high = self._high
        # The cache stores each node's count assuming enumeration starts at
        # the node's own variable; callers scale by the skipped levels.
        cache = self._count_cache
        stack = [node]
        while stack:
            n = stack[-1]
            if n in cache:
                stack.pop()
                continue
            lo = low[n]
            hi = high[n]
            pending = False
            if lo > TRUE and lo not in cache:
                stack.append(lo)
                pending = True
            if hi > TRUE and hi not in cache:
                stack.append(hi)
                pending = True
            if pending:
                continue
            v = var[n]
            if lo == FALSE:
                lo_count = 0
            elif lo == TRUE:
                lo_count = 1 << (num_vars - v - 1)
            else:
                lo_count = cache[lo] << (var[lo] - v - 1)
            if hi == FALSE:
                hi_count = 0
            elif hi == TRUE:
                hi_count = 1 << (num_vars - v - 1)
            else:
                hi_count = cache[hi] << (var[hi] - v - 1)
            cache[n] = lo_count + hi_count
            stack.pop()
        return cache[node] << var[node]

    def pick_one(self, node: int) -> Optional[Dict[int, bool]]:
        """Return one satisfying assignment (partial: only forced variables).

        Returns ``None`` when the function is unsatisfiable.  Unmentioned
        variables may take either value.
        """
        if node == FALSE:
            return None
        assignment: Dict[int, bool] = {}
        while node != TRUE:
            if self._low[node] != FALSE:
                assignment[self._var[node]] = False
                node = self._low[node]
            else:
                assignment[self._var[node]] = True
                node = self._high[node]
        return assignment

    def iter_cubes(self, node: int) -> Iterator[Dict[int, bool]]:
        """Yield disjoint cubes (partial assignments) covering the function."""
        if node == FALSE:
            return
        path: Dict[int, bool] = {}

        # Recursion depth is bounded by num_vars (ROBDD path length), so the
        # generator form is safe here.
        def walk(n: int) -> Iterator[Dict[int, bool]]:
            if n == TRUE:
                yield dict(path)
                return
            if n == FALSE:
                return
            v = self._var[n]
            path[v] = False
            yield from walk(self._low[n])
            path[v] = True
            yield from walk(self._high[n])
            del path[v]

        yield from walk(node)

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------
    def register_root(self, holder: object) -> None:
        """Track ``holder`` (an object with a mutable ``node`` attribute) as
        a GC root.  Weakly referenced: dropping the holder un-roots it."""
        ref = weakref.ref(holder, self._forget_root)
        self._roots[id(ref)] = ref

    def _forget_root(self, ref: "weakref.ref") -> None:
        self._roots.pop(id(ref), None)

    def pin(self, node: int) -> None:
        """Keep a raw node id alive across collections (no holder object).

        The pinned id is remapped internally on sweep; re-read it via the
        holder-object protocol if you need the post-sweep id.
        """
        self._pinned.add(node)

    def unpin(self, node: int) -> None:
        self._pinned.discard(node)

    def register_invalidation_hook(self, hook: Callable[[], None]) -> None:
        """Run ``hook`` after every sweep that remapped node ids.

        External memos keyed by node id (the :mod:`repro.bdd.serialize`
        node↔bytes tables) must register here or they silently corrupt."""
        self._invalidation_hooks.append(hook)

    def register_remap_hook(self, hook: Callable[[Dict[int, int]], None]) -> None:
        """Run ``hook(remap)`` after every sweep, once holders are remapped.

        Unlike an invalidation hook, a remap hook receives the old→new node
        id mapping (dead nodes absent), so an external memo keyed by node id
        can *rekey* its live entries instead of dropping them wholesale —
        the difference between re-deriving every cached result after a GC
        and paying one dict rebuild."""
        self._remap_hooks.append(hook)

    def _root_holders(self) -> List[object]:
        holders: List[object] = []
        for ref in list(self._roots.values()):
            obj = ref()
            if obj is not None:
                holders.append(obj)
        return holders

    def _root_nodes(self) -> Set[int]:
        roots = {holder.node for holder in self._root_holders()}
        roots.update(self._pinned)
        return roots

    def collect(self) -> int:
        """Mark-sweep the node table; return the number of reclaimed nodes.

        Marks from every registered root holder and pinned id, compacts the
        parallel arrays, rewrites each live holder's ``node`` attribute to
        its new id, and drops every operation cache plus registered external
        memos (they hold stale ids).  Must only be called at a safe point:
        no raw node id held in a local variable survives a sweep.
        """
        stats = self.stats
        stats.gc_runs += 1
        old_len = len(self._var)
        if old_len > stats.peak_nodes:
            stats.peak_nodes = old_len
        holders = self._root_holders()
        roots = {holder.node for holder in holders}
        roots.update(self._pinned)
        live = self._reachable(roots)
        reclaimed = old_len - len(live)
        if reclaimed == 0:
            stats.gc_last_live = old_len
            return 0

        # Sweep: children always precede parents in the table (``_mk``
        # appends), so one ascending pass can remap child ids in place.
        old_var = self._var
        old_low = self._low
        old_high = self._high
        remap: Dict[int, int] = {FALSE: FALSE, TRUE: TRUE}
        new_var: List[int] = [_TERMINAL_VAR, _TERMINAL_VAR]
        new_low: List[int] = [0, 1]
        new_high: List[int] = [0, 1]
        for n in range(2, old_len):
            if n not in live:
                continue
            remap[n] = len(new_var)
            new_var.append(old_var[n])
            new_low.append(remap[old_low[n]])
            new_high.append(remap[old_high[n]])
        self._var = new_var
        self._low = new_low
        self._high = new_high
        self._unique = {
            (new_var[i], new_low[i], new_high[i]): i
            for i in range(2, len(new_var))
        }

        # Every cache holds pre-sweep ids; all of them must go.
        self._and_cache.clear()
        self._or_cache.clear()
        self._diff_cache.clear()
        self._xor_cache.clear()
        self._ite_cache.clear()
        self._count_cache.clear()
        self._exists_cache.clear()
        self._not_cache = {FALSE: TRUE, TRUE: FALSE}
        for hook in self._invalidation_hooks:
            hook()

        # Remap the live world.
        for holder in holders:
            holder.node = remap[holder.node]
        self._pinned = {remap[n] for n in self._pinned}
        for hook in self._remap_hooks:
            hook(remap)

        stats.gc_reclaimed += reclaimed
        stats.gc_last_live = len(new_var)
        return reclaimed

    def maybe_collect(self) -> int:
        """GC iff the table crossed :attr:`gc_threshold`; returns reclaimed.

        After a sweep the threshold is raised to at least twice the live
        table size, so a workload whose live set genuinely grows does not
        thrash in back-to-back collections.
        """
        threshold = self.gc_threshold
        if threshold is None or len(self._var) < threshold:
            return 0
        reclaimed = self.collect()
        self.gc_threshold = max(threshold, 2 * len(self._var))
        return reclaimed

    # ------------------------------------------------------------------
    # Housekeeping
    # ------------------------------------------------------------------
    def clear_caches(self) -> None:
        """Drop operation caches (node table is kept)."""
        self._and_cache.clear()
        self._or_cache.clear()
        self._diff_cache.clear()
        self._xor_cache.clear()
        self._ite_cache.clear()
        self._count_cache.clear()
        self._exists_cache.clear()
        self._not_cache = {FALSE: TRUE, TRUE: FALSE}

    def profile(self) -> Dict[str, int]:
        """Stats snapshot plus current table / live-node footprint."""
        out = self.stats.snapshot()
        out["table_nodes"] = self.node_count()
        out["live_nodes"] = self.live_node_count()
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BddManager(num_vars={self.num_vars}, nodes={self.node_count()})"
