"""The scenario model checker: enumerate a fault family, POR-pruned.

:func:`explore_family` systematically executes every scenario of a
:class:`~repro.core.scenario.ScenarioFamily` — each is a fresh deployment
driven through :func:`repro.sim.scenario.run_script` — and classifies the
final converged outcome.  Interleavings whose adjacent steps the
:class:`~repro.core.scenario.IndependenceRelation` proves commutative are
pruned before execution (one canonical representative per Mazurkiewicz
trace class); the report counts explored / pruned / budget-skipped
scenarios so nothing is dropped silently.

On a failing scenario (a VIOLATED or UNKNOWN invariant, or
non-convergence) the explorer greedily minimizes the script — dropping
whole fault elements while the failure persists — re-executes the minimal
script under a tracer, and emits a ``tulkun-trace-v1`` counterexample that
``python -m repro replay`` re-verifies byte-identically.  When the
harness's input texts are available the certification round-trips through
the full self-contained replay path, exactly what CI does with the
artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.scenario import (
    IndependenceRelation,
    ScenarioFamily,
    ScenarioStep,
    interleavings,
)
from repro.sim.scenario import StepOutcome, run_script
from repro.telemetry import TraceFile, Tracer, replay_trace

__all__ = [
    "Counterexample",
    "ExploreReport",
    "ScenarioResult",
    "explore_family",
    "outcome_key",
]

# A harness builds one fresh deployment per scenario execution:
# harness(tracer, channel) -> (runner, rules_by_device).  Fresh state per
# run is what makes outcomes functions of the scenario alone.
Harness = Callable[..., Tuple[object, Dict[str, Sequence]]]

# Hard ceiling on scripts enumerated per family — a guard against
# accidentally exponential families, far above anything explorable.
MAX_ENUMERATED = 100_000


def outcome_key(runner) -> Tuple:
    """Canonical verdict-outcome fingerprint of a converged run.

    Statuses, convergence and the violation evidence (serialized ROBDD
    region bytes, counts, messages) — equality is byte-identity of
    everything verdict-relevant, so it is stable across predicate-index
    modes, record/replay and equivalent interleavings.  Timing and
    transport counters are deliberately excluded: they are schedule
    artifacts, not verdicts.
    """
    from repro.bdd.serialize import serialize_predicate

    network = runner.network
    violations = []
    for inv in runner.invariants:
        for violation in network.violations(inv.name):
            violations.append(
                (
                    inv.name,
                    violation.ingress,
                    serialize_predicate(violation.region).hex(),
                    tuple(sorted(tuple(vec) for vec in violation.counts)),
                    violation.message or "",
                )
            )
    return (
        tuple(sorted(runner.statuses().items())),
        bool(network.converged),
        tuple(sorted(violations)),
    )


@dataclass(frozen=True)
class ScenarioResult:
    """One explored scenario and its verdict outcome."""

    steps: Tuple[ScenarioStep, ...]
    outcome: Tuple
    statuses: Dict[str, str]
    converged: bool
    trajectory: Tuple[StepOutcome, ...]

    @property
    def failing(self) -> bool:
        """Any non-HOLDS invariant at the final quiescence point, or a
        network that never converged."""
        return not self.converged or any(
            status != "HOLDS" for status in self.statuses.values()
        )

    def to_json(self) -> Dict:
        return {
            "steps": [step.to_json() for step in self.steps],
            "statuses": dict(self.statuses),
            "converged": self.converged,
            "failing": self.failing,
            "trajectory": [
                {
                    "step": out.step.to_json() if out.step else "burst",
                    "statuses": dict(out.statuses),
                    "converged": out.converged,
                }
                for out in self.trajectory
            ],
        }


@dataclass
class Counterexample:
    """A minimized failing scenario, certified by replay."""

    steps: Tuple[ScenarioStep, ...]
    minimized_from: int
    trace: TraceFile
    replay_ok: Optional[bool] = None
    path: Optional[str] = None

    def to_json(self) -> Dict:
        return {
            "steps": [step.to_json() for step in self.steps],
            "minimized_from": self.minimized_from,
            "replay_ok": self.replay_ok,
            "path": self.path,
        }


@dataclass
class ExploreReport:
    """What a family exploration covered and what it found."""

    family: ScenarioFamily
    por: bool
    exhaustive_scenarios: int
    explored: int = 0
    pruned: int = 0
    skipped: int = 0
    results: List[ScenarioResult] = field(default_factory=list)
    counterexamples: List[Counterexample] = field(default_factory=list)

    @property
    def violated(self) -> int:
        return sum(1 for result in self.results if result.failing)

    @property
    def prune_ratio(self) -> float:
        if not self.exhaustive_scenarios:
            return 0.0
        return self.pruned / self.exhaustive_scenarios

    def outcome_keys(self) -> Set[Tuple]:
        """The distinct verdict outcomes reached — the object the
        exhaustive-vs-POR differential test compares."""
        return {result.outcome for result in self.results}

    def to_json(self) -> Dict:
        return {
            "family": self.family.to_json(),
            "por": self.por,
            "exhaustive_scenarios": self.exhaustive_scenarios,
            "explored": self.explored,
            "pruned": self.pruned,
            "skipped": self.skipped,
            "violated": self.violated,
            "distinct_outcomes": len(self.outcome_keys()),
            "prune_ratio": round(self.prune_ratio, 6),
            "scenarios": [result.to_json() for result in self.results],
            "counterexamples": [
                cex.to_json() for cex in self.counterexamples
            ],
        }


def _execute(
    harness: Harness, steps: Sequence[ScenarioStep], tracer=None, channel=None
):
    """Run one scenario on a fresh deployment; return (runner, result)."""
    runner, rules = harness(tracer=tracer, channel=channel)
    trajectory = tuple(run_script(runner, rules, steps))
    final = trajectory[-1]
    result = ScenarioResult(
        steps=tuple(steps),
        outcome=outcome_key(runner),
        statuses=dict(final.statuses),
        converged=final.converged,
        trajectory=trajectory,
    )
    return runner, result


def _elements_of(steps: Sequence[ScenarioStep]) -> List[Tuple]:
    """Distinct element keys, in first-appearance order."""
    seen: List[Tuple] = []
    for step in steps:
        key = step.element_key
        if key not in seen:
            seen.append(key)
    return seen


def _minimize(
    harness: Harness, steps: Tuple[ScenarioStep, ...]
) -> Tuple[ScenarioStep, ...]:
    """Greedy 1-minimal reduction: drop whole fault elements (keeping the
    surviving interleaving order) while the scenario still fails."""
    current = steps
    progress = True
    while progress:
        progress = False
        for key in _elements_of(current):
            candidate = tuple(
                step for step in current if step.element_key != key
            )
            runner, result = _execute(harness, candidate)
            runner.close()
            if result.failing:
                current = candidate
                progress = True
                break
    return current


def _certify(
    harness: Harness,
    steps: Tuple[ScenarioStep, ...],
    trace_inputs: Optional[Dict[str, str]],
) -> Counterexample:
    """Re-execute a failing script under a tracer, snapshot it as a
    replayable trace, and immediately verify the replay is byte-identical.

    With ``trace_inputs`` (topology/fib/spec texts) the certification runs
    the full self-contained path — fresh parse, fresh context — exactly as
    ``python -m repro replay`` would on the emitted file.  Without texts
    the harness itself re-runs the script on the recorded fate schedule.
    """
    tracer = Tracer()
    runner, _result = _execute(harness, steps, tracer=tracer)
    trace = TraceFile.from_run(
        runner,
        tracer,
        inputs=trace_inputs,
        scenario="script",
        script=list(steps),
    )
    runner.close()
    if trace_inputs is not None:
        replayed = replay_trace(trace)
    else:
        replayed, _r = _execute(
            harness, steps, channel=trace.replay_channel()
        )
    mismatches = trace.verify(replayed)
    replayed.close()
    return Counterexample(
        steps=steps,
        minimized_from=0,  # caller fills in
        trace=trace,
        replay_ok=not mismatches,
    )


def explore_family(
    family: ScenarioFamily,
    harness: Harness,
    *,
    por: bool = True,
    budget: Optional[int] = None,
    minimize: bool = True,
    max_counterexamples: int = 5,
    trace_inputs: Optional[Dict[str, str]] = None,
) -> ExploreReport:
    """Model-check a scenario family; return the coverage/verdict report.

    ``budget`` caps *executed* scenarios (enumeration is cheap and always
    completes, so skipped work is counted, never silent).  One
    counterexample is certified per distinct failing outcome, up to
    ``max_counterexamples``.
    """
    probe, _rules = harness(tracer=None, channel=None)
    relation = IndependenceRelation(probe.topology, probe.task_sets)
    probe.close()

    report = ExploreReport(
        family=family,
        por=por,
        exhaustive_scenarios=family.exhaustive_scenarios(),
    )

    scripts: List[Tuple[ScenarioStep, ...]] = []
    for subset in family.subsets():
        chains = [element.steps() for element in subset]
        for script in interleavings(chains, relation if por else None):
            scripts.append(script)
            if len(scripts) > MAX_ENUMERATED:
                raise ValueError(
                    f"family enumerates more than {MAX_ENUMERATED} "
                    "scenarios; tighten max_faults or the element set"
                )
    report.pruned = report.exhaustive_scenarios - len(scripts)

    failing_outcomes: Set[Tuple] = set()
    for index, script in enumerate(scripts):
        if budget is not None and report.explored >= budget:
            report.skipped = len(scripts) - index
            break
        runner, result = _execute(harness, script)
        runner.close()
        report.explored += 1
        report.results.append(result)
        if not result.failing:
            continue
        if result.outcome in failing_outcomes:
            continue
        failing_outcomes.add(result.outcome)
        if len(report.counterexamples) >= max_counterexamples:
            continue
        minimal = _minimize(harness, script) if minimize else script
        cex = _certify(harness, minimal, trace_inputs)
        cex.minimized_from = len(script)
        report.counterexamples.append(cex)
    return report
