"""Scenario explorer: model-check fault families, certified by replay.

Built on the PR 4–5 substrate (seeded chaos channels, crash/restart
drivers, deterministic record/replay, causal provenance), this package
turns "replay one hand-picked schedule" into "certify a scenario family":
enumerate every execution of a fault family, prune interleavings the
protocol-orderings commutativity results prove equivalent (partial-order
reduction over disjoint (device, invariant) flows), check all invariants
plus convergence on each, and emit minimized, replay-certified
counterexample traces for whatever fails.
"""

from repro.core.scenario import (
    FaultElement,
    IndependenceRelation,
    ScenarioFamily,
    ScenarioStep,
    interleavings,
)
from repro.explore.explorer import (
    Counterexample,
    ExploreReport,
    ScenarioResult,
    explore_family,
    outcome_key,
)

__all__ = [
    "Counterexample",
    "ExploreReport",
    "FaultElement",
    "IndependenceRelation",
    "ScenarioFamily",
    "ScenarioResult",
    "ScenarioStep",
    "explore_family",
    "interleavings",
    "outcome_key",
]
