"""Discrete-event simulation kernel.

A minimal, deterministic event loop: events are (time, sequence, callback)
triples popped from a heap.  Equal-time events run in scheduling order, which
keeps runs reproducible — a timer and a message delivery scheduled for the
same instant fire in the order they were scheduled, regardless of what kind
of event they are.

``schedule_at``/``schedule_in`` return a :class:`Timer` handle.  Cancelled
timers stay in the heap but are discarded unexecuted when popped (lazy
cancellation): they do not run, do not advance the clock, and do not count
against the event budget.  The transport layer leans on this to disarm
retransmission timers when an ACK arrives.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError

__all__ = ["SimKernel", "Timer"]


class Timer:
    """Handle for a scheduled event; ``cancel()`` disarms it in O(1)."""

    __slots__ = ("time", "cancelled")

    def __init__(self, time: float) -> None:
        self.time = time
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    @property
    def active(self) -> bool:
        return not self.cancelled


class SimKernel:
    """The simulator's clock and event queue."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[
            Tuple[float, int, Timer, Callable[[], None]]
        ] = []
        self._seq = itertools.count()
        self._events_processed = 0
        # Optional telemetry sink (repro.telemetry.Tracer): each run()
        # window is recorded as a span on the kernel track.  None (the
        # default) keeps the loop untouched.
        self.tracer = None

    def schedule_at(self, time: float, action: Callable[[], None]) -> Timer:
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past ({time} < {self.now})"
            )
        timer = Timer(time)
        heapq.heappush(self._queue, (time, next(self._seq), timer, action))
        return timer

    def schedule_in(self, delay: float, action: Callable[[], None]) -> Timer:
        if delay < 0:
            raise SimulationError("negative delay")
        return self.schedule_at(self.now + delay, action)

    @property
    def pending(self) -> int:
        """Scheduled events not yet popped (cancelled ones included)."""
        return len(self._queue)

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Run to quiescence (or ``until``); return the final clock value.

        Events scheduled strictly after ``until`` are *not* discarded: they
        stay queued and fire on the next ``run()`` call.  This is load-bearing
        for the transport layer — a retransmission timer armed just before an
        ``until`` horizon must survive into the next run so reliability is
        unaffected by how the caller slices simulated time.
        """
        run_start = self.now
        events_before = self._events_processed
        while self._queue:
            time, _seq, timer, action = self._queue[0]
            if until is not None and time > until:
                break
            if timer.cancelled:
                heapq.heappop(self._queue)
                continue
            # Budget check happens *before* taking the next event: a run of
            # exactly ``max_events`` events completes, event max_events+1
            # trips the livelock guard.
            if self._events_processed >= max_events:
                raise SimulationError("event budget exhausted (livelock?)")
            heapq.heappop(self._queue)
            self.now = time
            # A fired timer is no longer armed: ``active`` turns False so
            # holders can distinguish "still pending" from "already ran".
            timer.cancelled = True
            action()
            self._events_processed += 1
        if until is not None and self.now < until:
            self.now = until
        if self.tracer is not None:
            self.tracer.kernel_run(
                run_start,
                self.now,
                self._events_processed - events_before,
                self.pending,
            )
        return self.now
