"""Discrete-event simulation kernel.

A minimal, deterministic event loop: events are (time, sequence, callback)
triples popped from a heap.  Equal-time events run in scheduling order, which
keeps runs reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError

__all__ = ["SimKernel"]


class SimKernel:
    """The simulator's clock and event queue."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._events_processed = 0

    def schedule_at(self, time: float, action: Callable[[], None]) -> None:
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past ({time} < {self.now})"
            )
        heapq.heappush(self._queue, (time, next(self._seq), action))

    def schedule_in(self, delay: float, action: Callable[[], None]) -> None:
        if delay < 0:
            raise SimulationError("negative delay")
        self.schedule_at(self.now + delay, action)

    @property
    def pending(self) -> int:
        return len(self._queue)

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Run to quiescence (or ``until``); return the final clock value."""
        while self._queue:
            time, _seq, action = self._queue[0]
            if until is not None and time > until:
                break
            # Budget check happens *before* taking the next event: a run of
            # exactly ``max_events`` events completes, event max_events+1
            # trips the livelock guard.
            if self._events_processed >= max_events:
                raise SimulationError("event budget exhausted (livelock?)")
            heapq.heappop(self._queue)
            self.now = time
            action()
            self._events_processed += 1
        if until is not None and self.now < until:
            self.now = until
        return self.now
