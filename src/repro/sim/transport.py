"""Reliable DVM transport over unreliable simulated channels.

The seed simulator modelled the DVM session as a perfect TCP stand-in:
every message delivered exactly once, in order, over devices that never
restart.  This module drops that assumption.  A :class:`Channel` decides the
fate of each physical transmission (deliver / drop / duplicate / delay); the
:class:`DvmTransport` state machine on top restores exactly-once in-order
delivery per flow with sequence numbers, cumulative acks, timeout/backoff
retransmission and a receive-side reorder buffer — so the verifiers above it
still see the per-channel FIFO semantics the DVM protocol assumes, and the
converged fixpoint is byte-identical to a run over a perfect network.

Determinism: a :class:`FaultyChannel` seeds a private PRNG per *physical
transmission* from ``(seed, src, dst, link_seq)`` where ``link_seq`` is a
per-directed-link transmission counter.  Python seeds :class:`random.Random`
from the SHA-512 of a string seed, so fates are stable across processes and
platforms.  With ``cpu_scale=0`` the whole simulation is event-order
deterministic, hence two runs with the same chaos config are identical
event for event.

Flows are keyed ``(sender, receiver, invariant)`` — the paper's per-task DVM
session — and carry an *epoch* that is bumped whenever an endpoint restarts,
so segments from a previous incarnation are recognised and discarded instead
of corrupting a resynchronising CIB.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

__all__ = [
    "ChaosConfig",
    "Channel",
    "ReliableChannel",
    "FaultyChannel",
    "Segment",
    "TransportConfig",
    "DvmTransport",
]


# ----------------------------------------------------------------------
# Channels: per-transmission fate assignment
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChaosConfig:
    """Fault-injection knobs for a :class:`FaultyChannel`.

    ``p_reorder`` is the probability a transmission is held back long enough
    to land behind later traffic on the same link; ``jitter`` scales the
    extra delay (in units of the link latency).
    """

    seed: int = 0
    p_loss: float = 0.0
    p_dup: float = 0.0
    p_reorder: float = 0.0
    jitter: float = 3.0

    def __post_init__(self) -> None:
        for name in ("p_loss", "p_dup", "p_reorder"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.p_loss == 1.0:
            raise ValueError("p_loss=1.0 can never converge")

    @classmethod
    def parse(cls, spec: str) -> "ChaosConfig":
        """Parse the CLI form ``seed,p_loss[,p_dup[,p_reorder]]``."""
        parts = [part.strip() for part in spec.split(",")]
        if not 2 <= len(parts) <= 4:
            raise ValueError(
                "chaos spec must be 'seed,p_loss[,p_dup[,p_reorder]]', "
                f"got {spec!r}"
            )
        seed = int(parts[0])
        probs = [float(part) for part in parts[1:]]
        probs += [0.0] * (3 - len(probs))
        return cls(seed, *probs)


class Channel:
    """Decides the fate of one physical transmission on a directed link.

    ``transmit`` returns the list of arrival delays for the copies that make
    it across (empty = lost, one entry = normal, several = duplicated).
    """

    def transmit(self, src: str, dst: str, latency: float) -> List[float]:
        raise NotImplementedError

    def stats(self) -> Dict[str, int]:
        return {}


class ReliableChannel(Channel):
    """Every transmission arrives exactly once after the link latency."""

    def transmit(self, src: str, dst: str, latency: float) -> List[float]:
        return [latency]


class FaultyChannel(Channel):
    """Seeded loss/duplication/reordering, deterministic per transmission."""

    def __init__(self, config: ChaosConfig) -> None:
        self.config = config
        self._link_seq: Dict[Tuple[str, str], "itertools.count"] = {}
        self.transmissions = 0
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0

    def _rng(self, src: str, dst: str) -> random.Random:
        counter = self._link_seq.get((src, dst))
        if counter is None:
            counter = itertools.count()
            self._link_seq[(src, dst)] = counter
        link_seq = next(counter)
        key = f"{self.config.seed}:{src}>{dst}:{link_seq}"
        return random.Random(key)

    def transmit(self, src: str, dst: str, latency: float) -> List[float]:
        cfg = self.config
        rng = self._rng(src, dst)
        self.transmissions += 1
        if rng.random() < cfg.p_loss:
            self.dropped += 1
            return []
        delay = latency
        if rng.random() < cfg.p_reorder:
            # Hold this copy back past the link's natural spacing so later
            # transmissions overtake it.
            delay += latency * cfg.jitter * (0.5 + rng.random())
            self.delayed += 1
        delays = [delay]
        if rng.random() < cfg.p_dup:
            delays.append(delay + latency * rng.random())
            self.duplicated += 1
        return delays

    def stats(self) -> Dict[str, int]:
        return {
            "transmissions": self.transmissions,
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "delayed": self.delayed,
        }


# ----------------------------------------------------------------------
# Wire segments
# ----------------------------------------------------------------------
_SEGMENT_HEADER_BYTES = 24  # flow id + epoch + seq + kind


@dataclass(frozen=True)
class Segment:
    """One transport-layer PDU: DATA carries a DVM message, ACK a cumulative
    acknowledgement (highest in-order sequence delivered)."""

    kind: str  # "data" | "ack"
    src: str
    dst: str
    invariant: Optional[str]
    epoch: int
    seq: int
    payload: object = None

    def wire_size(self) -> int:
        size = _SEGMENT_HEADER_BYTES
        if self.payload is not None and hasattr(self.payload, "wire_size"):
            size += self.payload.wire_size()
        return size


@dataclass(frozen=True)
class TransportConfig:
    """Retransmission policy.  ``None`` fields are derived from the topology
    at deploy time (RTO = 4x the slowest link, capped backoff)."""

    rto_initial: Optional[float] = None
    rto_max: Optional[float] = None
    max_retries: int = 12


# ----------------------------------------------------------------------
# Per-flow state machines
# ----------------------------------------------------------------------
@dataclass
class _Pending:
    payload: object
    attempts: int = 0
    timer: object = None  # kernel Timer


@dataclass
class _SenderFlow:
    epoch: int
    next_seq: int = 1
    unacked: Dict[int, _Pending] = field(default_factory=dict)
    dead: bool = False


@dataclass
class _ReceiverFlow:
    epoch: int = 0
    next_expected: int = 1
    buffer: Dict[int, object] = field(default_factory=dict)


FlowKey = Tuple[str, str, Optional[str]]  # (sender, receiver, invariant)


class DvmTransport:
    """Seq/ack reliability layer between :class:`SimNetwork` and a
    :class:`Channel`.

    The network hands every outgoing DVM message to :meth:`send`; the
    transport sequences it, pushes physical copies through the channel, and
    retransmits on timeout with exponential backoff.  Receive side, segments
    are deduplicated and reorder-buffered per flow, then dispatched to the
    verifier strictly in send order.  After ``max_retries`` timeouts a flow
    is declared *dead* and recorded in :attr:`unreachable` — graceful
    degradation instead of a livelock; link recovery or a device restart
    revives it with a fresh epoch.
    """

    def __init__(self, network, channel: Channel, config: TransportConfig) -> None:
        self.network = network
        self.channel = channel
        max_latency = max(
            (link.latency for link in network.topology.links()), default=0.0
        )
        rto = config.rto_initial
        if rto is None:
            rto = max(4.0 * max_latency, 1e-9)
        rto_max = config.rto_max
        if rto_max is None:
            rto_max = 64.0 * rto
        self.rto_initial = rto
        self.rto_max = rto_max
        self.max_retries = config.max_retries
        self._epochs = itertools.count(1)
        self.senders: Dict[FlowKey, _SenderFlow] = {}
        self.receivers: Dict[FlowKey, _ReceiverFlow] = {}
        # Flows that exhausted their retries: (sender, receiver, invariant).
        self.unreachable: Set[FlowKey] = set()

    # ------------------------------------------------------------------
    # Sender side
    # ------------------------------------------------------------------
    def _sender(self, key: FlowKey) -> _SenderFlow:
        flow = self.senders.get(key)
        if flow is None:
            flow = _SenderFlow(epoch=next(self._epochs))
            self.senders[key] = flow
        return flow

    def rto(self, attempts: int) -> float:
        """Backoff schedule: doubles per attempt, capped at ``rto_max``."""
        return min(self.rto_initial * (2.0 ** attempts), self.rto_max)

    def send(
        self,
        src: str,
        dst: str,
        invariant: Optional[str],
        payload: object,
        at: float,
        latency: float,
    ) -> None:
        key: FlowKey = (src, dst, invariant)
        flow = self._sender(key)
        if flow.dead:
            # The flow already gave up; the destination stays marked
            # unreachable until a recovery event revives the flow.
            self.unreachable.add(key)
            return
        seq = flow.next_seq
        flow.next_seq += 1
        pending = _Pending(payload)
        flow.unacked[seq] = pending
        self._transmit(key, flow, seq, pending, at, latency)

    def _transmit(
        self,
        key: FlowKey,
        flow: _SenderFlow,
        seq: int,
        pending: _Pending,
        at: float,
        latency: float,
    ) -> None:
        src, dst, invariant = key
        segment = Segment("data", src, dst, invariant, flow.epoch, seq, pending.payload)
        tracer = getattr(self.network, "tracer", None)
        if tracer is not None:
            kind = "transport_send" if pending.attempts == 0 else "transport_retransmit"
            tracer.transport_event(
                kind, src, at,
                dst=dst, invariant=invariant, seq=seq,
                epoch=flow.epoch, attempts=pending.attempts,
            )
        for delay in self.channel.transmit(src, dst, latency):
            self.network.schedule_segment(segment, at + delay)
        timeout = self.rto(pending.attempts)

        def on_timeout() -> None:
            self._on_timeout(key, seq)

        pending.timer = self.network.kernel.schedule_at(at + timeout, on_timeout)

    def _on_timeout(self, key: FlowKey, seq: int) -> None:
        flow = self.senders.get(key)
        if flow is None or flow.dead:
            return
        pending = flow.unacked.get(seq)
        if pending is None:
            return  # acked after the timer was armed (lazy cancel race)
        pending.attempts += 1
        src, _dst, _invariant = key
        metrics = self.network.metrics.device(src)
        if pending.attempts > self.max_retries:
            self._give_up(key, flow)
            return
        metrics.retransmits += 1
        latency = self.network.path_latency(*key[:2])
        self._transmit(key, flow, seq, pending, self.network.kernel.now, latency)

    def _give_up(self, key: FlowKey, flow: _SenderFlow) -> None:
        flow.dead = True
        for pending in flow.unacked.values():
            if pending.timer is not None:
                pending.timer.cancel()
        flow.unacked.clear()
        self.unreachable.add(key)
        self.network.metrics.device(key[0]).flows_given_up += 1
        tracer = getattr(self.network, "tracer", None)
        if tracer is not None:
            tracer.transport_event(
                "transport_giveup", key[0], self.network.kernel.now,
                dst=key[1], invariant=key[2], epoch=flow.epoch,
            )

    def _handle_ack(self, segment: Segment) -> None:
        # An ACK travels data-receiver → data-sender, so the data flow it
        # acknowledges is keyed (ack.dst, ack.src).  It carries the data
        # flow's epoch and the highest in-order seq delivered (cumulative).
        key: FlowKey = (segment.dst, segment.src, segment.invariant)
        flow = self.senders.get(key)
        metrics = self.network.metrics.device(segment.dst)
        if flow is None or flow.dead or segment.epoch != flow.epoch:
            return
        acked = [seq for seq in flow.unacked if seq <= segment.seq]
        if not acked:
            metrics.dup_acks_ignored += 1
            return
        for seq in acked:
            pending = flow.unacked.pop(seq)
            if pending.timer is not None:
                pending.timer.cancel()
        tracer = getattr(self.network, "tracer", None)
        if tracer is not None:
            tracer.transport_event(
                "transport_ack", segment.dst, self.network.kernel.now,
                src=segment.src, invariant=segment.invariant,
                acked_through=segment.seq, newly_acked=len(acked),
            )

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------
    def _receiver(self, key: FlowKey) -> _ReceiverFlow:
        flow = self.receivers.get(key)
        if flow is None:
            flow = _ReceiverFlow()
            self.receivers[key] = flow
        return flow

    def handle_segment(self, segment: Segment, size: int) -> None:
        """Process an arriving segment (called by the network at delivery
        time; link/device liveness has already been checked)."""
        if segment.kind == "ack":
            self._handle_ack(segment)
            return
        key: FlowKey = (segment.src, segment.dst, segment.invariant)
        flow = self._receiver(key)
        metrics = self.network.metrics.device(segment.dst)
        if segment.epoch < flow.epoch:
            return  # stale incarnation: the sender restarted since
        if segment.epoch > flow.epoch:
            # New incarnation of the sender: its sequence space restarted.
            flow.epoch = segment.epoch
            flow.next_expected = 1
            flow.buffer.clear()
        tracer = getattr(self.network, "tracer", None)
        if segment.seq < flow.next_expected or segment.seq in flow.buffer:
            metrics.dup_drops += 1
            if tracer is not None:
                tracer.transport_event(
                    "transport_dup_drop", segment.dst,
                    self.network.kernel.now,
                    src=segment.src, invariant=segment.invariant,
                    seq=segment.seq,
                )
        elif segment.seq == flow.next_expected:
            self._deliver_in_order(key, flow, segment.payload)
        else:
            metrics.reorder_buffered += 1
            flow.buffer[segment.seq] = segment.payload
            if tracer is not None:
                tracer.transport_event(
                    "transport_buffer", segment.dst,
                    self.network.kernel.now,
                    src=segment.src, invariant=segment.invariant,
                    seq=segment.seq, expected=flow.next_expected,
                )
        self._send_ack(key, flow)

    def _deliver_in_order(self, key: FlowKey, flow: _ReceiverFlow, payload) -> None:
        src, dst, invariant = key
        self.network.dispatch(src, dst, invariant, payload)
        flow.next_expected += 1
        while flow.next_expected in flow.buffer:
            queued = flow.buffer.pop(flow.next_expected)
            self.network.dispatch(src, dst, invariant, queued)
            flow.next_expected += 1

    def _send_ack(self, key: FlowKey, flow: _ReceiverFlow) -> None:
        src, dst, invariant = key
        ack = Segment(
            "ack", dst, src, invariant, flow.epoch, flow.next_expected - 1
        )
        self.network.metrics.device(dst).acks_sent += 1
        latency = self.network.path_latency(dst, src)
        at = self.network.kernel.now
        for delay in self.channel.transmit(dst, src, latency):
            self.network.schedule_segment(ack, at + delay)

    # ------------------------------------------------------------------
    # Recovery hooks
    # ------------------------------------------------------------------
    def _reset_flow(self, key: FlowKey) -> None:
        sender = self.senders.pop(key, None)
        if sender is not None:
            for pending in sender.unacked.values():
                if pending.timer is not None:
                    pending.timer.cancel()
        # Receiver state stays: its epoch guard discards stale segments, and
        # a revived sender's higher epoch resets it on first contact.
        self.unreachable.discard(key)

    def link_restored(self, a: str, b: str) -> None:
        """A failed link came back: revive the flows crossing it.

        Unacked payloads of a dead flow are *not* replayed — the link-up
        handlers force a full re-announcement of the CIB, which subsumes
        anything lost while the flow was down.
        """
        for key in list(self.senders):
            if {key[0], key[1]} == {a, b}:
                self._reset_flow(key)
        self.unreachable = {
            key for key in self.unreachable if {key[0], key[1]} != {a, b}
        }

    def device_crashed(self, dev: str) -> None:
        """A device lost its RAM: silence its sender flows (a dead device
        transmits nothing) and wipe its receiver state.  Flows *toward* the
        device keep retransmitting — their senders cannot observe the crash
        and either reach the restarted incarnation or give up."""
        for key in list(self.senders):
            if key[0] == dev:
                flow = self.senders.pop(key)
                for pending in flow.unacked.values():
                    if pending.timer is not None:
                        pending.timer.cancel()
        for key in list(self.receivers):
            if key[1] == dev:
                del self.receivers[key]

    def device_restarted(self, dev: str) -> None:
        """A device came back from a crash: reset every flow touching it."""
        for key in list(self.senders):
            if dev in (key[0], key[1]):
                self._reset_flow(key)
        for key in list(self.receivers):
            if key[1] == dev:
                # The restarted receiver lost its reorder state; a fresh
                # record (epoch 0) accepts whatever epoch arrives next.
                del self.receivers[key]
        self.unreachable = {
            key for key in self.unreachable if dev not in (key[0], key[1])
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def quiescent(self) -> bool:
        """No unacked data anywhere (dead flows dropped theirs)."""
        return all(not flow.unacked for flow in self.senders.values())

    def unreachable_invariants(self) -> Set[str]:
        return {inv for (_src, _dst, inv) in self.unreachable if inv}

    def unacked_segments(self) -> int:
        return sum(len(flow.unacked) for flow in self.senders.values())
