"""Simulated network of on-device verifiers.

Each :class:`SimDevice` owns a data plane and one verifier per invariant and
processes events *serially* — the clock advances by the measured wall time of
every handler (scaled to model the device CPU), so the dependency-chain
parallelism that gives Tulkun its speedup shows up faithfully: independent
devices overlap in simulated time, chained DVM hops serialize.

By default links are in-order reliable channels with propagation latency
(the TCP stand-in).  Messages crossing a failed link are dropped; verifiers
resynchronize on recovery.  With a ``chaos`` config (or an explicit
``channel``) the network instead runs every DVM message through the
:mod:`repro.sim.transport` reliability layer: a seeded
:class:`~repro.sim.transport.FaultyChannel` drops/duplicates/delays physical
copies, and per-flow seq/ack retransmission plus receive-side reorder
buffering restore the exactly-once in-order semantics the verifiers assume —
so the converged verdicts are byte-identical to the reliable run.  Devices
can also crash and restart (:meth:`SimNetwork.crash_device` /
:meth:`SimNetwork.restart_device`) with CIB resync via re-subscription.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.bdd.predicate import PacketSpaceContext
from repro.core.tasks import TaskSet
from repro.core.verifier import OnDeviceVerifier, Outgoing
from repro.dataplane.device import DevicePlane
from repro.dataplane.rule import Rule
from repro.errors import SimulationError
from repro.sim.kernel import SimKernel
from repro.sim.metrics import MetricsCollector
from repro.sim.transport import (
    ChaosConfig,
    Channel,
    DvmTransport,
    FaultyChannel,
    Segment,
    TransportConfig,
)
from repro.topology.graph import Topology, canonical_link

__all__ = ["SimDevice", "SimNetwork"]


class SimDevice:
    """One network device: data plane + verification agents."""

    def __init__(
        self,
        name: str,
        plane: DevicePlane,
        network: "SimNetwork",
    ) -> None:
        self.name = name
        self.plane = plane
        self.network = network
        self.verifiers: Dict[str, OnDeviceVerifier] = {}
        self.busy_until: float = 0.0

    def add_task(self, task_set: TaskSet) -> None:
        task = task_set.tasks.get(self.name)
        if task is not None:
            self.verifiers[task_set.invariant_name] = OnDeviceVerifier(
                task, self.plane,
                predicate_index=self.network.predicate_index,
                tracer=self.network.tracer,
                invariant=task_set.invariant_name,
            )

    # ------------------------------------------------------------------
    def process(
        self,
        handler: Callable[[], List[Outgoing]],
        invariant: Optional[str] = None,
        record_message_cost: bool = False,
        record_init_cost: bool = False,
        label: str = "task",
    ) -> None:
        """Run a handler now; advance device time; route outgoing messages.

        The handler executes at event-pop time (device events are serial, so
        state order equals processing order); its wall-clock cost, scaled by
        the network's CPU factor, becomes the simulated processing time.
        """
        kernel = self.network.kernel
        start = max(kernel.now, self.busy_until)
        t0 = _time.perf_counter()
        outgoing = handler() or []
        cost = (_time.perf_counter() - t0) * self.network.cpu_scale
        finish = start + cost
        self.busy_until = finish

        metrics = self.network.metrics.device(self.name)
        metrics.events_processed += 1
        metrics.busy_time += cost
        if record_message_cost:
            metrics.message_costs.append(cost)
        if record_init_cost:
            metrics.init_cost += cost
        self.network.note_activity(finish)
        if self.network.tracer is not None:
            self.network.tracer.task_span(
                self.name, label, invariant, start, finish
            )

        for dest, message in outgoing:
            self.network.send(self.name, dest, message, invariant, at=finish)


class SimNetwork:
    """The whole simulated deployment for a set of invariants."""

    def __init__(
        self,
        topology: Topology,
        ctx: PacketSpaceContext,
        planes: Mapping[str, DevicePlane],
        task_sets: Sequence[TaskSet],
        cpu_scale: float = 1.0,
        serialize_messages: bool = False,
        proxies: Optional[Mapping[str, str]] = None,
        gc_threshold: Optional[int] = None,
        predicate_index: str = "atoms",
        chaos: Optional[ChaosConfig] = None,
        channel: Optional[Channel] = None,
        transport_config: Optional[TransportConfig] = None,
        tracer=None,
    ) -> None:
        """``serialize_messages`` round-trips every DVM message through the
        byte codec (exact wire accounting + end-to-end codec exercise).

        ``proxies`` maps devices to the hosts their verifiers run on — the
        §7 *incremental deployment* mode where off-device instances play
        verifier for devices without one (RCDC generalization).  Messages
        then travel proxy-to-proxy along lowest-latency paths, and local
        data plane events pay the device→proxy hop.

        ``gc_threshold`` arms the BDD engine's node-table garbage collector:
        verifiers sweep at event-handler boundaries once the shared table
        crosses this many nodes (``None`` keeps GC off).

        ``predicate_index`` selects the verifiers' region representation:
        ``"atoms"`` (default, shared dynamic atom index) or ``"bdd"`` (raw
        predicates).  Verdicts and wire bytes are identical either way.

        ``chaos`` (or an explicit ``channel``) switches DVM messaging onto
        the seq/ack transport layer over an unreliable channel; see
        :mod:`repro.sim.transport`.  ``transport_config`` tunes the
        retransmission policy (defaults derive the RTO from the slowest
        link).  Without either, the transport is bypassed entirely and the
        network behaves exactly like the reliable seed simulator.

        ``tracer`` (a :class:`repro.telemetry.Tracer`) arms the causal
        event log: handler spans, DVM sends/deliveries (with Lamport
        clocks), transport fates, GC sweeps and lifecycle events are
        recorded, and any active channel is wrapped so its per-transmission
        fate schedule becomes replayable.  ``None`` (the default) keeps
        every hot path on a single pointer check.
        """
        self.topology = topology
        self.ctx = ctx
        self.predicate_index = predicate_index
        self.kernel = SimKernel()
        if tracer is not None and not tracer.enabled:
            tracer = None
        self.tracer = tracer
        if tracer is not None:
            tracer.bind_clock(lambda: self.kernel.now)
            self.kernel.tracer = tracer
            # GC sweeps invalidate external memos via this hook; piggyback
            # on it to log each sweep with the engine's own counters.
            mgr = ctx.mgr

            def _trace_gc() -> None:
                tracer.gc_event(
                    "",
                    self.kernel.now,
                    engine="serial",
                    gc_runs=mgr.stats.gc_runs,
                    live_nodes=mgr.stats.gc_last_live,
                    reclaimed_total=mgr.stats.gc_reclaimed,
                )

            mgr.register_invalidation_hook(_trace_gc)
        self.cpu_scale = cpu_scale
        self.serialize_messages = serialize_messages
        self.proxies: Dict[str, str] = dict(proxies or {})
        self._proxy_latency: Dict[str, Dict[str, float]] = {}
        self.metrics = MetricsCollector()
        self.devices: Dict[str, SimDevice] = {}
        self.task_sets = list(task_sets)
        self.failed_links: Set[Tuple[str, str]] = set()
        self.devices_down: Set[str] = set()
        self.last_activity: float = 0.0
        # Per directed (src, dst) channel: last delivery time (FIFO/TCP).
        self._last_delivery: Dict[Tuple[str, str], float] = {}
        if gc_threshold is not None:
            ctx.mgr.gc_threshold = gc_threshold
        if channel is None and chaos is not None:
            channel = FaultyChannel(chaos)
        if channel is not None and tracer is not None:
            # Record the per-transmission fate schedule for replay.
            from repro.telemetry.record import RecordingChannel

            channel = RecordingChannel(channel, tracer)
        self.channel = channel
        self.transport: Optional[DvmTransport] = None
        if channel is not None:
            self.transport = DvmTransport(
                self, channel, transport_config or TransportConfig()
            )

        for name in topology.devices:
            plane = planes.get(name)
            if plane is None:
                plane = DevicePlane(name, ctx)
            if predicate_index == "atoms":
                # Single-rule updates on this plane run on atom-set algebra
                # over the same shared index the verifiers use (the LEC
                # deltas they produce are byte-identical to the BDD path).
                plane.enable_atom_algebra(ctx.atom_index())
            device = SimDevice(name, plane, self)
            for task_set in self.task_sets:
                device.add_task(task_set)
            self.devices[name] = device

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _latency_between(self, a: str, b: str) -> float:
        """Lowest-latency path delay between two hosts (proxy routing)."""
        if a == b:
            return 0.0
        table = self._proxy_latency.get(a)
        if table is None:
            table = self.topology.latency_distances_from(a)
            self._proxy_latency[a] = table
        latency = table.get(b)
        if latency is None:
            raise SimulationError(f"no path between proxies {a!r} and {b!r}")
        return latency

    def path_latency(self, src: str, dst: str) -> float:
        """Propagation latency for a DVM message ``src`` → ``dst``."""
        if self.proxies:
            # Proxy deployment: messages ride the management paths between
            # the hosts running the verifiers.
            src_host = self.proxies.get(src, src)
            dst_host = self.proxies.get(dst, dst)
            return self._latency_between(src_host, dst_host)
        if not self.topology.has_link(src, dst):
            raise SimulationError(f"no link {src!r}-{dst!r} for DVM message")
        return self.topology.latency(src, dst)

    def send(
        self,
        src: str,
        dst: str,
        message,
        invariant: Optional[str],
        at: float,
    ) -> None:
        if self.transport is None and not self.proxies:
            if canonical_link(src, dst) in self.failed_links:
                return  # the TCP connection is down; resync on recovery
        latency = self.path_latency(src, dst)
        if self.serialize_messages:
            from repro.core.wire import decode_message, encode_message

            message = decode_message(self.ctx, encode_message(message))
        metrics = self.metrics.device(src)
        metrics.messages_sent += 1
        size = message.wire_size() if hasattr(message, "wire_size") else 64
        metrics.bytes_sent += size
        if self.metrics.collect_logs:
            metrics.message_log.append(
                (src, dst, type(message).__name__, size)
            )
        if self.tracer is not None:
            self.tracer.dvm_send(src, dst, invariant, message, size, at)
        if self.transport is not None:
            self.transport.send(src, dst, invariant, message, at, latency)
            return
        key = (src, dst)
        arrival = max(at + latency, self._last_delivery.get(key, 0.0))
        self._last_delivery[key] = arrival
        self.kernel.schedule_at(
            arrival, lambda: self.dispatch(src, dst, invariant, message)
        )

    def schedule_segment(self, segment: Segment, arrival: float) -> None:
        """Schedule a transport segment's arrival (transport mode only).

        Liveness is checked at *arrival* time: a segment in flight when its
        link fails or its destination crashes is lost, and the sender's
        retransmission timer is what recovers it.
        """

        def deliver() -> None:
            if segment.dst in self.devices_down:
                return
            if not self.proxies and (
                canonical_link(segment.src, segment.dst) in self.failed_links
            ):
                return
            self.transport.handle_segment(segment, segment.wire_size())

        self.kernel.schedule_at(arrival, deliver)

    def dispatch(
        self, src: str, dst: str, invariant: Optional[str], message
    ) -> None:
        """Hand one in-order DVM message to the destination verifier."""
        if dst in self.devices_down:
            return
        device = self.devices[dst]
        recv = self.metrics.device(dst)
        recv.messages_received += 1
        size = message.wire_size() if hasattr(message, "wire_size") else 64
        recv.bytes_received += size
        if self.tracer is not None:
            self.tracer.dvm_deliver(
                src, dst, invariant, message, size, self.kernel.now
            )
        verifier = device.verifiers.get(invariant) if invariant else None
        if verifier is None:
            return
        from repro.core.dvm import SubscribeMessage, UpdateMessage

        if isinstance(message, UpdateMessage):
            device.process(
                lambda: verifier.handle_update(message),
                invariant,
                record_message_cost=True,
                label="update",
            )
        elif isinstance(message, SubscribeMessage):
            device.process(
                lambda: verifier.handle_subscribe(message),
                invariant,
                record_message_cost=True,
                label="subscribe",
            )
        else:
            raise SimulationError(f"unknown message type {type(message)}")

    def note_activity(self, at: float) -> None:
        if at > self.last_activity:
            self.last_activity = at

    # ------------------------------------------------------------------
    # Scenario drivers
    # ------------------------------------------------------------------
    def initialize(self, at: float = 0.0) -> None:
        """Kick off the initialization phase on every device."""
        for name, device in self.devices.items():
            for inv_name, verifier in device.verifiers.items():
                def make(dev=device, ver=verifier, inv=inv_name):
                    def run() -> None:
                        dev.process(
                            ver.initialize, inv,
                            record_init_cost=True, label="init",
                        )
                    return run
                self.kernel.schedule_at(at, make())

    def install_rules(self, dev: str, rules: Sequence[Rule], at: float) -> None:
        """Burst-install rules on a device (data plane + verifier deltas)."""
        device = self.devices[dev]

        def run() -> None:
            start = max(self.kernel.now, device.busy_until)
            t0 = _time.perf_counter()
            device.plane.install_many(rules)
            all_out: List[Tuple[str, object, str]] = []
            for inv_name, verifier in device.verifiers.items():
                for dest, msg in verifier.initialize():
                    all_out.append((dest, msg, inv_name))
            cost = (_time.perf_counter() - t0) * self.cpu_scale
            finish = start + cost
            device.busy_until = finish
            metrics = self.metrics.device(dev)
            metrics.events_processed += 1
            metrics.busy_time += cost
            metrics.init_cost += cost
            self.note_activity(finish)
            if self.tracer is not None:
                self.tracer.task_span(dev, "install_rules", None, start, finish)
            for dest, msg, inv_name in all_out:
                self.send(dev, dest, msg, inv_name, at=finish)

        self.kernel.schedule_at(at, run)

    def _schedule_fib_rewrite(
        self, dev: str, at: float, label: str, mutate, only=None
    ) -> None:
        """Schedule a FIB mutation on one device: ``mutate(plane)`` returns
        the LEC deltas, which every local verifier processes in the same
        handler before the outgoing DVM messages are routed.

        ``only`` (a set of invariant names) restricts which local verifiers
        see the deltas — the slicing scheduler passes the invariants of the
        touched slices, having proven the rest would no-op on them."""
        device = self.devices[dev]

        def run() -> None:
            start = max(self.kernel.now, device.busy_until)
            t0 = _time.perf_counter()
            deltas = mutate(device.plane)
            all_out: List[Tuple[str, object, str]] = []
            for inv_name, verifier in device.verifiers.items():
                if only is not None and inv_name not in only:
                    continue
                for dest, msg in verifier.handle_lec_deltas(deltas):
                    all_out.append((dest, msg, inv_name))
            cost = (_time.perf_counter() - t0) * self.cpu_scale
            finish = start + cost
            device.busy_until = finish
            metrics = self.metrics.device(dev)
            metrics.events_processed += 1
            metrics.busy_time += cost
            metrics.message_costs.append(cost)
            self.note_activity(finish)
            if self.tracer is not None:
                self.tracer.task_span(dev, label, None, start, finish)
            for dest, msg, inv_name in all_out:
                self.send(dev, dest, msg, inv_name, at=finish)

        self.kernel.schedule_at(at, run)

    def apply_rule_update(
        self,
        dev: str,
        at: float,
        install: Optional[Rule] = None,
        remove_rule_id: Optional[int] = None,
    ) -> None:
        """Incremental rule update: compute LEC deltas, drive verifiers."""
        ops: List[Tuple[str, object]] = []
        if remove_rule_id is not None:
            ops.append(("remove", remove_rule_id))
        if install is not None:
            ops.append(("install", install))
        self.apply_rule_updates(dev, at, ops)

    def apply_rule_updates(
        self,
        dev: str,
        at: float,
        ops: Sequence[Tuple[str, object]],
        only: Optional[Set[str]] = None,
    ) -> None:
        """Apply a coalesced batch of rule updates on one device.

        ``ops`` is an ordered sequence of ``("remove", rule_id)`` /
        ``("install", Rule)`` pairs.  The whole batch runs in *one* event
        handler — one plane mutation pass, one LEC-delta hand-off per
        verifier — which is the squashing win the serving mode's coalescer
        exploits; the quiescent fixpoint is identical to applying the same
        ops one handler at a time (DVM update commutativity).

        ``only`` restricts the LEC-delta hand-off to the named invariants
        (slicing: untouched verifiers provably no-op on these deltas).
        """
        if dev not in self.devices:
            raise SimulationError(f"unknown device {dev!r}")

        def mutate(plane) -> list:
            deltas = []
            for kind, arg in ops:
                if kind == "remove":
                    deltas.extend(plane.remove_rule(arg))
                elif kind == "install":
                    deltas.extend(plane.install_rule(arg))
                else:
                    raise SimulationError(f"unknown rule op {kind!r}")
            return deltas

        self._schedule_fib_rewrite(dev, at, "rule_update", mutate, only=only)

    def drain_device(self, dev: str, at: float) -> None:
        """Maintenance drain: withdraw every rule from a device's FIB.

        The device and its verifiers stay up — this is the rolling-upgrade
        precondition where traffic is steered away before the box is
        touched.  All removals run in one handler (one LEC recomputation),
        and the resulting deltas propagate through the verifiers exactly
        like any other rule update, so invariants are re-verified *under
        the drained FIB*.
        """
        if dev not in self.devices:
            raise SimulationError(f"unknown device {dev!r}")

        def mutate(plane) -> list:
            deltas = []
            for rule in list(plane.rules):
                deltas.extend(plane.remove_rule(rule.rule_id))
            return deltas

        self._schedule_fib_rewrite(dev, at, "drain", mutate)

    def restore_rules(self, dev: str, rules: Sequence[Rule], at: float) -> None:
        """Reinstall a drained device's FIB (the rolling-upgrade epilogue):
        one handler installs every rule and propagates the LEC deltas."""
        if dev not in self.devices:
            raise SimulationError(f"unknown device {dev!r}")

        def mutate(plane) -> list:
            deltas = []
            for rule in rules:
                deltas.extend(plane.install_rule(rule))
            return deltas

        self._schedule_fib_rewrite(dev, at, "restore", mutate)

    def change_link(self, a: str, b: str, is_up: bool, at: float) -> None:
        """Fail or recover a link; both endpoints react locally."""
        link = canonical_link(a, b)

        def run() -> None:
            if self.tracer is not None:
                self.tracer.link_event(a, b, is_up, self.kernel.now)
            if is_up:
                self.failed_links.discard(link)
                if self.transport is not None:
                    self.transport.link_restored(a, b)
            else:
                self.failed_links.add(link)
            for endpoint, other in ((a, b), (b, a)):
                device = self.devices[endpoint]
                for inv_name, verifier in device.verifiers.items():
                    def make(dev=device, ver=verifier, inv=inv_name, neigh=other):
                        def handler() -> List[Outgoing]:
                            return ver.handle_link_change(neigh, is_up)
                        return lambda: dev.process(handler, inv, label="link_change")
                    make()()

        self.kernel.schedule_at(at, run)

    def crash_device(self, dev: str, at: float) -> None:
        """Crash a device: verifier RAM is lost, adjacent links go down.

        Neighbors observe the adjacency loss (their TCP sessions reset) and
        zero the counts they attributed through the crashed device, exactly
        as for a link failure.  The crashed device's transport state is
        wiped — a dead device sends nothing, and whatever was in flight to
        it is recovered by the senders' retransmission (or gives up into
        ``UNKNOWN`` if the device never returns).
        """
        if dev not in self.devices:
            raise SimulationError(f"unknown device {dev!r}")

        def run() -> None:
            if self.tracer is not None:
                self.tracer.crash(dev, self.kernel.now)
            self.devices_down.add(dev)
            for neighbor in self.topology.neighbors(dev):
                self.failed_links.add(canonical_link(dev, neighbor))
            if self.transport is not None:
                self.transport.device_crashed(dev)
            for neighbor in self.topology.neighbors(dev):
                device = self.devices[neighbor]
                for inv_name, verifier in device.verifiers.items():
                    def make(ndev=device, ver=verifier, inv=inv_name):
                        def handler() -> List[Outgoing]:
                            return ver.handle_link_change(dev, False)
                        return lambda: ndev.process(handler, inv, label="neighbor_crash")
                    make()()

        self.kernel.schedule_at(at, run)

    def restart_device(self, dev: str, at: float) -> None:
        """Restart a crashed device and resynchronize its CIB state.

        The data plane (FIB hardware) survives the crash; the verifiers are
        rebuilt from scratch and re-run initialization, which re-announces
        their counts and re-issues their subscriptions.  Each neighbor
        clears its subscription bookkeeping toward the restarted device and
        force-re-announces its full CIB (``handle_neighbor_restart``), so
        the fresh verifiers recover every counting result they lost.
        Transport flows touching the device restart with a fresh epoch;
        stale in-flight segments from the previous incarnation are
        discarded by the epoch guard.
        """
        if dev not in self.devices:
            raise SimulationError(f"unknown device {dev!r}")

        def run() -> None:
            if self.tracer is not None:
                self.tracer.restart(dev, self.kernel.now)
            self.devices_down.discard(dev)
            for neighbor in self.topology.neighbors(dev):
                self.failed_links.discard(canonical_link(dev, neighbor))
            if self.transport is not None:
                self.transport.device_restarted(dev)
            device = self.devices[dev]
            device.verifiers.clear()
            for task_set in self.task_sets:
                device.add_task(task_set)
            for inv_name, verifier in device.verifiers.items():
                def make_init(rdev=device, ver=verifier, inv=inv_name):
                    return lambda: rdev.process(
                        ver.initialize, inv, record_init_cost=True,
                        label="init",
                    )
                make_init()()
            for neighbor in self.topology.neighbors(dev):
                ndev = self.devices[neighbor]
                for inv_name, verifier in ndev.verifiers.items():
                    def make(nd=ndev, ver=verifier, inv=inv_name):
                        def handler() -> List[Outgoing]:
                            return ver.handle_neighbor_restart(dev)
                        return lambda: nd.process(
                            handler, inv, label="neighbor_restart"
                        )
                    make()()

        self.kernel.schedule_at(at, run)

    def add_task_sets(self, task_sets: Sequence[TaskSet], at: float) -> None:
        """Deploy additional invariants onto the live network.

        Each live device gains a verifier for every new task set and runs
        its initialization (count announcement + subscriptions) in place —
        no redeploy, no disturbance to the verifiers already converged.
        Crashed devices are skipped here; their restart path rebuilds
        verifiers from ``self.task_sets``, which now includes the new ones.
        """
        task_sets = list(task_sets)
        self.task_sets.extend(task_sets)

        def run() -> None:
            for task_set in task_sets:
                for name, device in self.devices.items():
                    if name in self.devices_down:
                        continue
                    device.add_task(task_set)
                    verifier = device.verifiers.get(task_set.invariant_name)
                    if verifier is None:
                        continue

                    def make(dev=device, ver=verifier, inv=task_set.invariant_name):
                        return lambda: dev.process(
                            ver.initialize, inv,
                            record_init_cost=True, label="init",
                        )

                    self.kernel.schedule_at(self.kernel.now, make())

        self.kernel.schedule_at(at, run)

    def remove_task_sets(self, names: Sequence[str], at: float) -> None:
        """Retire invariants from the live network.

        Verifiers for the named invariants are dropped on every device;
        DVM messages still in flight for them are discarded on delivery
        (dispatch finds no verifier).  ``self.task_sets`` shrinks too, so a
        later device restart does not resurrect them.
        """
        doomed = set(names)
        self.task_sets = [
            ts for ts in self.task_sets if ts.invariant_name not in doomed
        ]

        def run() -> None:
            for device in self.devices.values():
                for name in doomed:
                    device.verifiers.pop(name, None)
            self.note_activity(self.kernel.now)

        self.kernel.schedule_at(at, run)

    def activate_scene(self, scene_id: Optional[int], at: float) -> None:
        """Switch every verifier to a precomputed fault scene (§6)."""

        def run() -> None:
            for device in self.devices.values():
                for inv_name, verifier in device.verifiers.items():
                    def make(dev=device, ver=verifier, inv=inv_name):
                        def handler() -> List[Outgoing]:
                            return ver.activate_scene(scene_id)
                        return lambda: dev.process(handler, inv, label="scene")
                    make()()

        self.kernel.schedule_at(at, run)

    # ------------------------------------------------------------------
    # Run + results
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Run to quiescence; returns the time of the last activity."""
        self.kernel.run(until=until)
        return self.last_activity

    @property
    def converged(self) -> bool:
        """Quiescence: no queued events, no unacked transport segments, and
        no flow that gave up (a partition prevented convergence)."""
        if self.kernel.pending:
            return False
        if self.transport is None:
            return True
        return self.transport.quiescent() and not self.transport.unreachable

    def invariant_status(
        self, invariant: str, within: Optional[Sequence[str]] = None
    ) -> str:
        """``HOLDS`` / ``VIOLATED``, or ``UNKNOWN(unreachable_upstream)``
        when a transport flow carrying this invariant's results gave up —
        the surviving counts are stale, so no verdict is reported.

        ``within`` limits the verdict gathering to the named devices (the
        slicing scheduler passes the invariant's footprint — verifiers
        cannot exist elsewhere, so the answer is unchanged)."""
        if (
            self.transport is not None
            and invariant in self.transport.unreachable_invariants()
        ):
            return "UNKNOWN(unreachable_upstream)"
        return "HOLDS" if self.all_hold(invariant, within) else "VIOLATED"

    def transport_summary(self) -> Dict[str, int]:
        """Aggregate transport/channel counters (zeros without transport)."""
        totals = self.metrics.transport_totals()
        if self.channel is not None:
            for key, value in self.channel.stats().items():
                totals[f"channel_{key}"] = value
        totals["unreachable_flows"] = (
            len(self.transport.unreachable) if self.transport else 0
        )
        totals["unacked_segments"] = (
            self.transport.unacked_segments() if self.transport else 0
        )
        return totals

    def verdicts(
        self, invariant: str, within: Optional[Sequence[str]] = None
    ) -> Dict[str, Tuple[bool, list]]:
        """Per-ingress verdicts gathered from source-node devices.

        ``within`` restricts the scan to the named devices — sound when it
        covers the invariant's footprint, since verifiers exist nowhere
        else; turns the gather from O(all devices) into O(footprint)."""
        verdicts: Dict[str, Tuple[bool, list]] = {}
        if within is None:
            devices = self.devices.values()
        else:
            devices = [
                self.devices[dev] for dev in within if dev in self.devices
            ]
        for device in devices:
            verifier = device.verifiers.get(invariant)
            if verifier is not None:
                verdicts.update(verifier.verdicts)
        return verdicts

    def all_hold(
        self, invariant: str, within: Optional[Sequence[str]] = None
    ) -> bool:
        verdicts = self.verdicts(invariant, within)
        return bool(verdicts) and all(ok for ok, _violations in verdicts.values())

    def violations(self, invariant: str) -> list:
        out = []
        for _ingress, (_ok, violations) in self.verdicts(invariant).items():
            out.extend(violations)
        return out

    def snapshot_memory(self) -> None:
        """Record each verifier's memory proxy into the metrics."""
        for name, device in self.devices.items():
            total = sum(v.memory_proxy() for v in device.verifiers.values())
            metrics = self.metrics.device(name)
            metrics.memory_proxy_peak = max(metrics.memory_proxy_peak, total)

    def snapshot_engines(self) -> None:
        """Record the shared BDD engine's profile into the metrics.

        The serial simulator runs every device on one shared manager, so
        there is a single honest engine row (per-device attribution would
        just split one cache arbitrarily)."""
        self.metrics.record_engine("serial", self.ctx.mgr.profile())
        if self.predicate_index == "atoms" and self.ctx._atom_index is not None:
            self.metrics.record_atom_index(
                "serial", self.ctx.atom_index().profile()
            )
