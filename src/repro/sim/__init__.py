"""Event-driven simulator: kernel, network, transport, scenario runners,
metrics."""

from repro.sim.kernel import SimKernel, Timer
from repro.sim.metrics import DeviceMetrics, MetricsCollector, cdf_points, percentile
from repro.sim.network import SimDevice, SimNetwork
from repro.sim.runner import (
    BurstResult,
    IncrementalResult,
    TulkunRunner,
    UpdateIntent,
    apply_intents,
    random_update_intents,
)
from repro.sim.scenario import (
    StepOutcome,
    apply_step,
    rolling_upgrade_steps,
    run_script,
)
from repro.sim.transport import (
    ChaosConfig,
    Channel,
    DvmTransport,
    FaultyChannel,
    ReliableChannel,
    Segment,
    TransportConfig,
)

__all__ = [
    "BurstResult",
    "ChaosConfig",
    "Channel",
    "DeviceMetrics",
    "DvmTransport",
    "FaultyChannel",
    "IncrementalResult",
    "MetricsCollector",
    "ReliableChannel",
    "Segment",
    "SimDevice",
    "SimKernel",
    "SimNetwork",
    "StepOutcome",
    "Timer",
    "TransportConfig",
    "TulkunRunner",
    "UpdateIntent",
    "apply_intents",
    "apply_step",
    "cdf_points",
    "percentile",
    "random_update_intents",
    "rolling_upgrade_steps",
    "run_script",
]
