"""Event-driven simulator: kernel, network, transport, scenario runners,
metrics."""

from repro.sim.kernel import SimKernel, Timer
from repro.sim.metrics import DeviceMetrics, MetricsCollector, cdf_points, percentile
from repro.sim.network import SimDevice, SimNetwork
from repro.sim.runner import (
    BurstResult,
    IncrementalResult,
    TulkunRunner,
    UpdateIntent,
    apply_intents,
    random_update_intents,
)
from repro.sim.transport import (
    ChaosConfig,
    Channel,
    DvmTransport,
    FaultyChannel,
    ReliableChannel,
    Segment,
    TransportConfig,
)

__all__ = [
    "BurstResult",
    "ChaosConfig",
    "Channel",
    "DeviceMetrics",
    "DvmTransport",
    "FaultyChannel",
    "IncrementalResult",
    "MetricsCollector",
    "ReliableChannel",
    "Segment",
    "SimDevice",
    "SimKernel",
    "SimNetwork",
    "Timer",
    "TransportConfig",
    "TulkunRunner",
    "UpdateIntent",
    "apply_intents",
    "cdf_points",
    "percentile",
    "random_update_intents",
]
