"""Event-driven simulator: kernel, network, scenario runners, metrics."""

from repro.sim.kernel import SimKernel
from repro.sim.metrics import DeviceMetrics, MetricsCollector, cdf_points, percentile
from repro.sim.network import SimDevice, SimNetwork
from repro.sim.runner import (
    BurstResult,
    IncrementalResult,
    TulkunRunner,
    UpdateIntent,
    apply_intents,
    random_update_intents,
)

__all__ = [
    "BurstResult",
    "DeviceMetrics",
    "IncrementalResult",
    "MetricsCollector",
    "SimDevice",
    "SimKernel",
    "SimNetwork",
    "TulkunRunner",
    "UpdateIntent",
    "apply_intents",
    "cdf_points",
    "percentile",
    "random_update_intents",
]
