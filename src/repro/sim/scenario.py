"""Scheduled scenario driver: execute fault scripts against a runner.

A *script* is a sequence of :class:`~repro.core.scenario.ScenarioStep`\\ s.
:func:`run_script` deploys the data plane (burst install), then applies the
steps one by one, running the network to quiescence after each and
recording the per-invariant statuses — the execution engine shared by the
scenario explorer (:mod:`repro.explore`) and by trace replay
(``scenario: "script"`` in :mod:`repro.telemetry.record`), so an explored
counterexample re-executes byte-identically from its trace file.

The module also defines the rolling-upgrade maintenance workload
(drain → crash → restart → restore) as a first-class script.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.scenario import ScenarioStep
from repro.dataplane.rule import Rule
from repro.errors import SimulationError

__all__ = [
    "StepOutcome",
    "apply_step",
    "rolling_upgrade_steps",
    "run_script",
]


@dataclass(frozen=True)
class StepOutcome:
    """Observed state at the quiescence point after one step.

    ``step`` is ``None`` for the initial burst-install phase.
    """

    step: Optional[ScenarioStep]
    statuses: Dict[str, str]
    converged: bool
    duration: float

    @property
    def clean(self) -> bool:
        """Every invariant HOLDS and the network converged."""
        return self.converged and all(
            status == "HOLDS" for status in self.statuses.values()
        )


def apply_step(runner, step: ScenarioStep) -> float:
    """Apply one scenario step through the runner; return settle duration."""
    if step.op == "link_down":
        return runner.fail_links([tuple(step.args)])
    if step.op == "link_up":
        return runner.recover_links([tuple(step.args)])
    if step.op == "crash":
        return runner.crash_device(step.args[0])
    if step.op == "restart":
        return runner.restart_device(step.args[0])
    if step.op == "drain":
        return runner.drain_device(step.args[0])
    if step.op == "restore":
        return runner.restore_drained(step.args[0])
    raise SimulationError(f"unknown scenario op {step.op!r}")


def run_script(
    runner,
    rules_by_device: Mapping[str, Sequence[Rule]],
    steps: Sequence[ScenarioStep],
) -> List[StepOutcome]:
    """Burst-install the data plane, then apply ``steps`` at quiescence
    points; return one :class:`StepOutcome` per phase (burst first)."""
    burst = runner.burst_update(
        {
            dev: [Rule(r.match, r.action, r.priority) for r in dev_rules]
            for dev, dev_rules in rules_by_device.items()
        }
    )
    outcomes = [
        StepOutcome(
            step=None,
            statuses=dict(burst.statuses),
            converged=runner.network.converged,
            duration=burst.verification_time,
        )
    ]
    for step in steps:
        duration = apply_step(runner, step)
        outcomes.append(
            StepOutcome(
                step=step,
                statuses=runner.statuses(),
                converged=runner.network.converged,
                duration=duration,
            )
        )
    return outcomes


def rolling_upgrade_steps(dev: str) -> Tuple[ScenarioStep, ...]:
    """The maintenance-window script for one device: withdraw its FIB,
    take it down for the upgrade, bring it back, reinstall the FIB."""
    return (
        ScenarioStep("drain", (dev,)),
        ScenarioStep("crash", (dev,)),
        ScenarioStep("restart", (dev,)),
        ScenarioStep("restore", (dev,)),
    )
