"""High-level scenario drivers: the experiments of §9 as reusable functions.

A :class:`TulkunRunner` wires planner → task sets → simulated network and
exposes the three DPV scenarios the paper measures:

* **burst update** — install the full data plane at t=0, run to quiescence;
  verification time is the quiescence time (Fig. 11a);
* **incremental update** — apply single rule updates to a converged network
  and measure per-update convergence time (Fig. 11b/11c);
* **fault scenes** — fail links, let verifiers recount (Fig. 12).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.bdd.predicate import PacketSpaceContext
from repro.core.invariant import Invariant
from repro.core.planner import Planner
from repro.core.tasks import TaskSet
from repro.dataplane.device import DevicePlane
from repro.dataplane.rule import Rule
from repro.errors import SimulationError
from repro.sim.network import SimNetwork
from repro.sim.transport import ChaosConfig, TransportConfig
from repro.slicing import SliceRegistry
from repro.topology.graph import Topology

__all__ = ["TulkunRunner", "BurstResult", "IncrementalResult"]


@dataclass
class BurstResult:
    verification_time: float
    holds: Dict[str, bool]
    events: int
    messages: int
    bytes_sent: int
    # Per-invariant "HOLDS" / "VIOLATED" / "UNKNOWN(unreachable_upstream)".
    # The last one means a transport flow gave up (partition): the counts
    # that survive are stale, so no verdict is claimed for the invariant.
    statuses: Dict[str, str] = field(default_factory=dict)


@dataclass
class IncrementalResult:
    times: List[float] = field(default_factory=list)

    def quantile(self, q: float) -> float:
        from repro.sim.metrics import percentile

        return percentile(self.times, q)

    def fraction_below(self, threshold: float) -> float:
        if not self.times:
            return 0.0
        return sum(1 for t in self.times if t < threshold) / len(self.times)


def _schedule_start(network) -> float:
    """Earliest time a new scenario event may be scheduled.

    Normally that is the last verification activity, but with the transport
    layer active the kernel clock can run past it (final ack deliveries and
    disarmed retransmission timers are not "activity"), and the kernel
    refuses to schedule into the past."""
    return max(network.last_activity, network.kernel.now)


class TulkunRunner:
    """Plan, deploy and drive Tulkun over a simulated network."""

    def __init__(
        self,
        topology: Topology,
        ctx: PacketSpaceContext,
        invariants: Sequence[Invariant],
        cpu_scale: float = 1.0,
        prebuilt_nets: Optional[Mapping[str, object]] = None,
        backend: str = "serial",
        workers: Optional[int] = None,
        partition_strategy: str = "locality",
        gc_threshold: Optional[int] = None,
        predicate_index: str = "atoms",
        chaos: Optional[ChaosConfig] = None,
        transport_config: Optional[TransportConfig] = None,
        tracer=None,
        channel=None,
        use_shm: bool = True,
        slices: Union[None, str, Mapping[str, Sequence[str]]] = None,
    ) -> None:
        """``prebuilt_nets`` optionally maps invariant names to prebuilt
        DPVNets (e.g. fault-tolerant ones from
        :func:`repro.core.fault.compute_fault_plan`).

        ``backend`` selects the execution engine: ``"serial"`` is the
        discrete-event simulator with a modelled clock; ``"process"`` runs
        the verifiers on a pool of ``workers`` OS processes (wall-clock
        timing, :mod:`repro.parallel`).  Both produce byte-identical verdicts
        and counting results.

        ``gc_threshold`` arms BDD node-table garbage collection: each engine
        (the shared serial manager, or every worker's private copy) sweeps
        when its node table crosses this size.  ``None`` disables GC.

        ``predicate_index`` selects the verifiers' internal region algebra:
        ``"atoms"`` (default) keeps CIB/interest bookkeeping as integer atom
        sets over a shared dynamic atom index; ``"bdd"`` uses raw predicates.
        Verdicts and wire bytes are identical in both modes.

        ``chaos`` arms fault injection on the DVM transport (serial backend
        only): messages ride a seeded unreliable channel with seq/ack
        retransmission; converged verdicts stay byte-identical to the
        reliable run.  ``transport_config`` tunes the retransmission policy.

        ``tracer`` attaches a :class:`repro.telemetry.Tracer`.  On the
        serial backend it collects the causally-ordered event log; on the
        process backend it collects coordinator/worker IPC spans (flush,
        drain, idle, quiescence probes) for occupancy timelines.
        ``channel`` overrides the transport channel — used by replay to
        substitute a :class:`repro.telemetry.ReplayChannel` carrying
        recorded fates (serial backend only).

        ``use_shm`` (process backend) ships cross-worker DVM frames through
        shared-memory rings; disable to force the pipe fallback lane.

        ``slices`` enables intent-based slicing (:mod:`repro.slicing`):
        ``"auto"`` groups invariants into tenant slices by their
        ``tenant/name`` prefix; a mapping ``{tenant: [invariant names]}``
        assigns them explicitly (unlisted invariants fall back to the
        prefix convention).  With slicing on, every FIB update / link /
        lifecycle event is routed only to the slices whose footprint it
        intersects, verdict statuses of untouched slices are served from
        cache, and (process backend) disjoint-footprint slice groups are
        partitioned onto different shard workers.  Verdicts are
        byte-identical to the unsliced run.
        """
        if backend not in ("serial", "process"):
            raise ValueError(f"unknown backend {backend!r}")
        if predicate_index not in ("atoms", "bdd"):
            raise ValueError(f"unknown predicate index {predicate_index!r}")
        if chaos is not None and backend != "serial":
            raise ValueError(
                "chaos fault injection requires the serial backend"
            )
        if channel is not None and backend != "serial":
            raise ValueError(
                "a channel override requires the serial backend"
            )
        self.topology = topology
        self.ctx = ctx
        self.invariants = list(invariants)
        self.planner = Planner(topology, ctx)
        self.task_sets: List[TaskSet] = [
            self.planner.decompose(
                inv,
                net=(prebuilt_nets or {}).get(inv.name),  # type: ignore[arg-type]
            )
            for inv in self.invariants
        ]
        self.cpu_scale = cpu_scale
        self.backend = backend
        self.workers = workers
        self.partition_strategy = partition_strategy
        self.gc_threshold = gc_threshold
        self.predicate_index = predicate_index
        self.chaos = chaos
        self.transport_config = transport_config
        self.tracer = tracer
        self.channel = channel
        self.use_shm = use_shm
        self.network = None  # SimNetwork | ParallelNetwork
        # Persistent worker pool (process backend): spawned on the first
        # deployment, reused by every later one via worker resets.
        self._pool = None
        # Rules withdrawn by drain_device, keyed by device, awaiting
        # restore_drained (rolling-upgrade bookkeeping).
        self._drained: Dict[str, List[Rule]] = {}
        # Intent-based slicing (None = off): footprint router + per-slice
        # verdict bookkeeping.  ``_status_dirty`` holds invariant names whose
        # cached status a touched slice invalidated; ``touched_tenants``
        # accumulates routing verdicts until consume_touched() (the serving
        # layer drains it once per epoch for per-tenant delta fan-out).
        self.slice_registry: Optional[SliceRegistry] = None
        self._status_cache: Dict[str, str] = {}
        self._status_dirty: Set[str] = set()
        self.touched_tenants: Set[str] = set()
        self._scene_active = False
        if slices is not None:
            if isinstance(slices, str) and slices != "auto":
                raise ValueError(f"unknown slices mode {slices!r}")
            tenant_by_inv: Dict[str, str] = {}
            if not isinstance(slices, str):
                for tenant, names in slices.items():
                    for inv_name in names:
                        tenant_by_inv[inv_name] = tenant
            registry = SliceRegistry(topology)
            for inv, task_set in zip(self.invariants, self.task_sets):
                registry.add_invariant(
                    inv, task_set, tenant=tenant_by_inv.get(inv.name)
                )
            self.slice_registry = registry

    # ------------------------------------------------------------------
    def deploy(self, planes: Mapping[str, DevicePlane]):
        """Create the (serial or parallel) network with the given planes.

        On the process backend the worker pool persists across deployments:
        the first deploy forks it, later deploys reset its workers onto the
        new planes (warm BDD contexts, no re-fork)."""
        self._close_network()
        self._drained.clear()
        registry = self.slice_registry
        if registry is not None:
            registry.note_rules(
                rule for plane in planes.values() for rule in plane.rules
            )
            self._mark_touched(registry.all_tenants())
            self._status_cache.clear()
            self._status_dirty.update(inv.name for inv in self.invariants)
        if self.backend == "process":
            from repro.parallel.coordinator import ParallelNetwork

            self.network = ParallelNetwork(
                self.topology,
                self.ctx,
                planes,
                self.task_sets,
                cpu_scale=self.cpu_scale,
                num_workers=self.workers,
                partition_strategy=self.partition_strategy,
                gc_threshold=self.gc_threshold,
                predicate_index=self.predicate_index,
                pool=self._ensure_pool(),
                use_shm=self.use_shm,
                tracer=self.tracer,
                slice_groups=self._slice_groups(),
            )
        else:
            self.network = SimNetwork(
                self.topology,
                self.ctx,
                planes,
                self.task_sets,
                self.cpu_scale,
                gc_threshold=self.gc_threshold,
                predicate_index=self.predicate_index,
                chaos=self.chaos,
                transport_config=self.transport_config,
                tracer=self.tracer,
                channel=self.channel,
            )
        return self.network

    def _ensure_pool(self):
        """The runner's persistent worker pool, respawned only when its
        shape no longer fits (worker count, partition strategy, GC/index
        settings) or a worker has died."""
        from repro.parallel.coordinator import default_worker_count
        from repro.parallel.pool import WorkerPool

        num_devices = len(self.topology.devices)
        workers = self.workers if self.workers else default_worker_count()
        num_workers = max(1, min(workers, num_devices))
        profile = {
            "num_workers": num_workers,
            "strategy": self.partition_strategy,
            "gc_threshold": self.gc_threshold,
            "predicate_index": self.predicate_index,
            "use_shm": self.use_shm,
            # The slice-aligned partition changes with slice membership; a
            # warm pool only fits deployments with the same assignment, so
            # the group fingerprint forces a respawn when groups move.
            "slice_groups": (
                tuple(tuple(group) for group in self._slice_groups())
                if self.slice_registry is not None
                else None
            ),
        }
        pool = self._pool
        if pool is not None and (
            pool.broken or pool.closed or pool.profile != profile
        ):
            pool.close()
            pool = None
        if pool is None:
            pool = WorkerPool(num_workers, use_shm=self.use_shm)
            pool.profile = profile
            self._pool = pool
        return pool

    def _slice_groups(self):
        """Slice-footprint device groups for the process partition (None
        when slicing is off — the configured strategy applies instead)."""
        registry = self.slice_registry
        if registry is None:
            return None
        return registry.device_groups()

    def _mark_touched(self, tenants: Set[str]) -> None:
        """Record routing verdicts: dirty the statuses of every invariant
        in a touched slice and accumulate the tenants for the serve layer."""
        registry = self.slice_registry
        if registry is None or not tenants:
            return
        self.touched_tenants.update(tenants)
        self._status_dirty.update(registry.invariants_of(tenants))

    def consume_touched(self) -> Set[str]:
        """Drain the tenants touched since the last call (serving epochs)."""
        touched = self.touched_tenants
        self.touched_tenants = set()
        return touched

    def _close_network(self) -> None:
        network = self.network
        if network is not None and hasattr(network, "close"):
            network.close()
        self.network = None

    def close(self) -> None:
        """Shut down worker processes (no-op for the serial backend)."""
        self._close_network()
        pool = self._pool
        if pool is not None:
            pool.close()
            self._pool = None

    def __enter__(self) -> "TulkunRunner":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def burst_update(
        self,
        rules_by_device: Mapping[str, Sequence[Rule]],
    ) -> BurstResult:
        """§9.3.2: all forwarding rules installed at once at t=0."""
        planes: Dict[str, DevicePlane] = {}
        network = self.deploy(planes)
        if self.slice_registry is not None:
            self.slice_registry.note_rules(
                rule for rules in rules_by_device.values() for rule in rules
            )
        for dev, rules in rules_by_device.items():
            network.install_rules(dev, list(rules), at=0.0)
        # Devices without rules still initialize (they announce zero counts).
        for dev in self.topology.devices:
            if dev not in rules_by_device:
                network.install_rules(dev, [], at=0.0)
        finish = network.run()
        network.snapshot_memory()
        network.snapshot_engines()
        return BurstResult(
            verification_time=finish,
            holds={
                inv.name: network.all_hold(inv.name) for inv in self.invariants
            },
            events=network.kernel.events_processed,
            messages=network.metrics.total_messages(),
            bytes_sent=network.metrics.total_bytes(),
            statuses=self.statuses(),
        )

    def apply_updates(
        self,
        updates: Sequence[Tuple[str, Optional[Rule], Optional[int]]],
    ) -> float:
        """Apply a burst of rule updates to the live deployment as *one*
        epoch: every update is scheduled at the same instant, per-device
        updates collapse into a single batched handler, and the network
        runs to quiescence once.  Returns the settle duration.

        This is the public "apply updates without rebuild" entry point the
        serving mode (and any other long-lived driver) reuses — two
        sequential bursts reach the same fixpoint as one combined burst.

        Each update is ``(device, rule_to_install, rule_id_to_remove)``;
        per-device order is preserved, removals within a pair run before
        the install (the :meth:`SimNetwork.apply_rule_update` contract).
        """
        network = self.network
        if network is None:
            raise RuntimeError("deploy/burst_update the network first")
        if not updates:
            return 0.0
        start = _schedule_start(network)
        per_device: Dict[str, List[Tuple[str, object]]] = {}
        order: List[str] = []
        for dev, install, remove_id in updates:
            ops = per_device.get(dev)
            if ops is None:
                ops = per_device[dev] = []
                order.append(dev)
            if remove_id is not None:
                ops.append(("remove", remove_id))
            if install is not None:
                ops.append(("install", install))
        only_by_dev = self._route_updates(updates)
        for dev in order:
            only = only_by_dev.get(dev) if only_by_dev is not None else None
            network.apply_rule_updates(dev, start, per_device[dev], only=only)
        finish = network.run()
        return max(0.0, finish - start)

    def _route_updates(
        self,
        updates: Sequence[Tuple[str, Optional[Rule], Optional[int]]],
    ) -> Optional[Dict[str, Set[str]]]:
        """Slicing router for one update burst: per device, the invariant
        names of every slice the device's ops can touch (None = slicing
        off, no filtering).

        Runs *before* any plane mutation: a removal's match predicate is
        looked up on the still-unmutated plane; a removal whose rule was
        installed earlier in the same burst resolves to ``match=None``
        (conservative: every slice on the device).  Installs carrying a
        transform action widen the registry first — packet gating is then
        off for this and every later burst."""
        registry = self.slice_registry
        if registry is None:
            return None
        network = self.network
        touched_all: Set[str] = set()
        slices_by_dev: Dict[str, Set[str]] = {}
        for dev, install, remove_id in updates:
            dev_slices = slices_by_dev.setdefault(dev, set())
            if remove_id is not None:
                rule = network.devices[dev].plane.get_rule(remove_id)
                match = rule.match if rule is not None else None
                dev_slices |= registry.touched_by_update(dev, match)
            if install is not None:
                if (
                    not registry.widened
                    and install.action.transform is not None
                ):
                    registry.widen()
                dev_slices |= registry.touched_by_update(dev, install.match)
            touched_all |= dev_slices
        self._mark_touched(touched_all)
        return {
            dev: registry.invariants_of(slices)
            for dev, slices in slices_by_dev.items()
        }

    def incremental_updates(
        self,
        updates: Sequence[Tuple[str, Optional[Rule], Optional[int]]],
    ) -> IncrementalResult:
        """Apply updates one by one to the (already deployed and converged)
        network; measure per-update convergence time.

        Each update is ``(device, rule_to_install, rule_id_to_remove)``.
        """
        network = self.network
        if network is None:
            raise RuntimeError("deploy/burst_update the network first")
        result = IncrementalResult()
        for update in updates:
            result.times.append(self.apply_updates([update]))
        network.snapshot_memory()
        network.snapshot_engines()
        return result

    def add_invariants(
        self,
        invariants: Sequence[Invariant],
        tenants: Optional[Mapping[str, str]] = None,
    ) -> float:
        """Deploy additional invariants onto the live network; return the
        settle duration (0.0 when nothing is deployed yet).

        On the serial backend the new verifiers are added and initialized
        in place.  The process backend redeploys from the live planes —
        worker processes and their warm BDD contexts are reused through the
        persistent pool, and every installed rule survives with its id.

        ``tenants`` (slicing only) maps invariant names to explicit tenant
        slices; unmapped names follow the ``tenant/name`` prefix convention.
        """
        invariants = list(invariants)
        existing = {inv.name for inv in self.invariants}
        new_sets: List[TaskSet] = []
        for inv in invariants:
            if inv.name in existing:
                raise SimulationError(
                    f"invariant {inv.name!r} is already deployed"
                )
            existing.add(inv.name)
            new_sets.append(self.planner.decompose(inv))
        self.invariants.extend(invariants)
        self.task_sets.extend(new_sets)
        registry = self.slice_registry
        if registry is not None:
            touched = set()
            for inv, task_set in zip(invariants, new_sets):
                touched.add(
                    registry.add_invariant(
                        inv, task_set, tenant=(tenants or {}).get(inv.name)
                    )
                )
            self._mark_touched(touched)
        network = self.network
        if network is None or not invariants:
            return 0.0
        if isinstance(network, SimNetwork):
            start = _schedule_start(network)
            network.add_task_sets(new_sets, at=start)
            finish = network.run()
            return max(0.0, finish - start)
        return self.redeploy()

    def remove_invariants(self, names: Sequence[str]) -> float:
        """Retire invariants from the live network by name; return the
        settle duration (0.0 when nothing is deployed yet)."""
        doomed = set(names)
        known = {inv.name for inv in self.invariants}
        missing = doomed - known
        if missing:
            raise SimulationError(
                f"unknown invariant(s): {', '.join(sorted(missing))}"
            )
        self.invariants = [
            inv for inv in self.invariants if inv.name not in doomed
        ]
        self.task_sets = [
            ts for ts in self.task_sets if ts.invariant_name not in doomed
        ]
        registry = self.slice_registry
        if registry is not None:
            touched = set()
            for name in sorted(doomed):
                tenant = registry.remove_invariant(name)
                if tenant is not None:
                    touched.add(tenant)
                self._status_cache.pop(name, None)
                self._status_dirty.discard(name)
            # Surviving slice members keep valid cached statuses; the
            # tenant is still reported touched (even when dissolved) so
            # subscribers observe the membership change.
            self.touched_tenants.update(touched)
        network = self.network
        if network is None or not doomed:
            return 0.0
        if isinstance(network, SimNetwork):
            start = _schedule_start(network)
            network.remove_task_sets(sorted(doomed), at=start)
            finish = network.run()
            return max(0.0, finish - start)
        return self.redeploy()

    def redeploy(self) -> float:
        """Rebuild the deployment from the live planes (same Rule objects,
        ids preserved; the process backend's worker pool is reused) and run
        back to quiescence under the current link state.  Returns the
        convergence time of the rebuilt deployment."""
        network = self.network
        if network is None:
            raise RuntimeError("deploy/burst_update the network first")
        if getattr(network, "devices_down", None):
            raise SimulationError(
                "cannot redeploy while devices are crashed"
            )
        if self._drained:
            raise SimulationError(
                "cannot redeploy while devices are drained"
            )
        saved = {
            dev: list(network.devices[dev].plane.rules)
            for dev in network.devices
        }
        failed = [tuple(link) for link in sorted(network.failed_links)]
        fresh = self.deploy({})
        for dev in self.topology.devices:
            fresh.install_rules(dev, saved.get(dev, []), at=0.0)
        for a, b in failed:
            fresh.change_link(a, b, is_up=False, at=0.0)
        return fresh.run()

    def fail_links(
        self, links: Sequence[Tuple[str, str]], scene_id: Optional[int] = None
    ) -> float:
        """Fail a set of links (a fault scene); return recount duration.

        With ``scene_id`` given, verifiers also switch to the precomputed
        fault-tolerant DPVNet labels for that scene after the (simulated)
        link-state flood.
        """
        network = self.network
        if network is None:
            raise RuntimeError("deploy/burst_update the network first")
        registry = self.slice_registry
        if registry is not None:
            if scene_id is not None:
                # A scene switch re-labels every verifier's DPVNet: all
                # slices recount, no footprint gating applies.
                self._scene_active = True
                self._mark_touched(registry.all_tenants())
            else:
                touched: Set[str] = set()
                for a, b in links:
                    touched |= registry.touched_by_link(a, b)
                self._mark_touched(touched)
        start = _schedule_start(network)
        for a, b in links:
            network.change_link(a, b, is_up=False, at=start)
        if scene_id is not None:
            flood = start + self._flood_latency()
            network.activate_scene(scene_id, at=flood)
        finish = network.run()
        return max(0.0, finish - start)

    def recover_links(self, links: Sequence[Tuple[str, str]]) -> float:
        network = self.network
        if network is None:
            raise RuntimeError("deploy/burst_update the network first")
        registry = self.slice_registry
        if registry is not None:
            if self._scene_active:
                # Deactivating the fault scene restores every verifier's
                # base labels — all slices recount.
                self._scene_active = False
                self._mark_touched(registry.all_tenants())
            else:
                touched = set()
                for a, b in links:
                    touched |= registry.touched_by_link(a, b)
                self._mark_touched(touched)
        start = _schedule_start(network)
        for a, b in links:
            network.change_link(a, b, is_up=True, at=start)
        if any(
            ts for ts in self.task_sets
        ):
            network.activate_scene(None, at=start + self._flood_latency())
        finish = network.run()
        return max(0.0, finish - start)

    def statuses(self) -> Dict[str, str]:
        """Per-invariant verdict status, degrading to ``UNKNOWN`` honestly.

        Backends without a transport layer (process pool) always converge
        reliably, so their statuses are plain HOLDS/VIOLATED.

        With slicing enabled, only invariants whose slice was touched since
        the last call are recomputed — and their verdict gathering is
        scoped to the slice's device footprint.  Untouched invariants are
        answered from cache, making a statuses sweep O(touched footprint)
        instead of O(invariants × devices)."""
        network = self.network
        if network is None:
            raise RuntimeError("deploy/burst_update the network first")
        status_of = getattr(network, "invariant_status", None)
        registry = self.slice_registry
        if registry is None:
            out: Dict[str, str] = {}
            for inv in self.invariants:
                if status_of is not None:
                    out[inv.name] = status_of(inv.name)
                else:
                    out[inv.name] = (
                        "HOLDS" if network.all_hold(inv.name) else "VIOLATED"
                    )
            return out
        cache = self._status_cache
        for name in self._status_dirty:
            footprint = registry.footprint_of(name)
            if footprint is None:
                continue  # invariant removed since it was dirtied
            within = sorted(footprint.devices)
            if status_of is not None:
                cache[name] = status_of(name, within=within)
            else:
                cache[name] = (
                    "HOLDS" if network.all_hold(name, within) else "VIOLATED"
                )
        self._status_dirty.clear()
        return {inv.name: cache[inv.name] for inv in self.invariants}

    def crash_device(self, dev: str) -> float:
        """Crash a device (serial backend); return the settle duration."""
        network = self._sim_network()
        if self.slice_registry is not None:
            self._mark_touched(self.slice_registry.touched_by_lifecycle(dev))
        start = _schedule_start(network)
        network.crash_device(dev, at=start)
        finish = network.run()
        return max(0.0, finish - start)

    def restart_device(self, dev: str) -> float:
        """Restart a crashed device and resync; return the settle duration."""
        network = self._sim_network()
        if self.slice_registry is not None:
            self._mark_touched(self.slice_registry.touched_by_lifecycle(dev))
        start = _schedule_start(network)
        network.restart_device(dev, at=start)
        finish = network.run()
        return max(0.0, finish - start)

    def drain_device(self, dev: str) -> float:
        """Maintenance drain (serial backend): withdraw the device's whole
        FIB and re-verify under the drained state; return settle duration.

        The withdrawn rules are kept so :meth:`restore_drained` can
        reinstall them — a crash/restart of the device in between (the
        rolling-upgrade window) does not lose them, matching real
        maintenance where the intended FIB lives in the controller.  The
        *same* Rule objects come back on restore, so their ids stay valid
        across the maintenance window (the serving mode addresses live
        rules by id through client-visible keys).
        """
        network = self._sim_network()
        if dev in self._drained:
            raise SimulationError(f"device {dev!r} is already drained")
        if self.slice_registry is not None:
            self._mark_touched(self.slice_registry.touched_by_rewrite(dev))
        self._drained[dev] = list(network.devices[dev].plane.rules)
        start = _schedule_start(network)
        network.drain_device(dev, at=start)
        finish = network.run()
        return max(0.0, finish - start)

    def restore_drained(self, dev: str) -> float:
        """Reinstall a drained device's FIB; return the settle duration."""
        network = self._sim_network()
        saved = self._drained.pop(dev, None)
        if saved is None:
            raise SimulationError(f"device {dev!r} is not drained")
        if self.slice_registry is not None:
            self.slice_registry.note_rules(saved)
            self._mark_touched(self.slice_registry.touched_by_rewrite(dev))
        start = _schedule_start(network)
        network.restore_rules(dev, saved, at=start)
        finish = network.run()
        return max(0.0, finish - start)

    def _sim_network(self) -> SimNetwork:
        network = self.network
        if network is None:
            raise RuntimeError("deploy/burst_update the network first")
        if not isinstance(network, SimNetwork):
            raise RuntimeError(
                "device crash/restart requires the serial backend"
            )
        return network

    def _flood_latency(self) -> float:
        """Approximate link-state flood completion: diameter × max latency."""
        max_latency = max(
            (link.latency for link in self.topology.links()), default=0.0
        )
        return self.topology.diameter_hops() * max_latency


@dataclass(frozen=True)
class UpdateIntent:
    """A deferred single-rule update: resolved against the live data plane
    at apply time (rule ids churn as updates are applied).

    ``neutral`` intents reinstall the same rule under a new id — a
    behaviour-preserving update (the common case in real churn: route
    refreshes, priority reshuffles).  The device still recomputes its LEC
    delta, but nothing propagates.
    """

    dev: str
    rule_index: int
    new_next_hops: Tuple[str, ...]  # empty tuple = drop
    neutral: bool = False


def random_update_intents(
    topology: Topology,
    planes: Mapping[str, DevicePlane],
    count: int,
    seed: int,
    drop_fraction: float = 0.05,
    neutral_fraction: float = 0.5,
) -> List[UpdateIntent]:
    """§9.2/§9.3.3 incremental workload: ``count`` random rule updates.

    A ``neutral_fraction`` of them are behaviour-preserving reinstalls (the
    dominant case in production churn — the paper notes that "for most rule
    updates, the number of affected devices is small"); the rest re-point a
    random installed rule at a random neighbor (occasionally a drop,
    injecting an error the verifiers must catch).
    """
    rng = random.Random(seed)
    devices = sorted(dev for dev, plane in planes.items() if plane.num_rules)
    if not devices:
        raise ValueError("no device has rules to update")
    intents: List[UpdateIntent] = []
    for _ in range(count):
        dev = rng.choice(devices)
        if rng.random() < neutral_fraction:
            intents.append(UpdateIntent(dev, rng.randrange(10**6), (), True))
            continue
        neighbors = topology.neighbors(dev)
        if rng.random() < drop_fraction or not neighbors:
            hops: Tuple[str, ...] = ()
        else:
            hops = (rng.choice(neighbors),)
        intents.append(
            UpdateIntent(dev, rng.randrange(10**6), hops)
        )
    return intents


def apply_intents(
    runner: TulkunRunner, intents: Sequence[UpdateIntent], restore: bool = True
) -> IncrementalResult:
    """Apply intents one at a time; with ``restore`` each change is undone by
    a follow-up (also measured) update, keeping the FIB near its converged
    state as the paper's per-update methodology does."""
    from repro.dataplane.action import Action

    network = runner.network
    if network is None:
        raise RuntimeError("deploy/burst_update the network first")
    result = IncrementalResult()

    def one_update(dev: str, install: Rule, remove_id: int) -> None:
        result.times.append(runner.apply_updates([(dev, install, remove_id)]))

    for intent in intents:
        plane = network.devices[intent.dev].plane
        rules = plane.rules
        if not rules:
            continue
        rule = rules[intent.rule_index % len(rules)]
        if intent.neutral:
            # Behaviour-preserving reinstall: still a rule update the
            # verifier must process (and prove quiet), so it is measured.
            clone = Rule(rule.match, rule.action, rule.priority)
            one_update(intent.dev, clone, rule.rule_id)
            continue
        if intent.new_next_hops:
            new_action = Action.forward_all(intent.new_next_hops)
        else:
            new_action = Action.drop()
        if new_action == rule.action:
            continue  # no-op re-point carries no extra signal
        changed = Rule(rule.match, new_action, rule.priority)
        one_update(intent.dev, changed, rule.rule_id)
        if restore:
            restored = Rule(rule.match, rule.action, rule.priority)
            one_update(intent.dev, restored, changed.rule_id)
    return result
