"""Measurement collection for simulation runs.

The simulator advances its clock by the *measured wall-clock cost* of each
device event handler (scaled by a CPU factor standing in for the device CPU)
plus link propagation latencies.  This module accumulates those measurements
in the shapes the paper's figures need: per-device totals and CDFs, per
message-processing times, and end-to-end verification times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import math

__all__ = [
    "DeviceMetrics",
    "WorkerMetrics",
    "MetricsCollector",
    "percentile",
    "cdf_points",
]


def percentile(values: List[float], q: float) -> float:
    """The q-quantile (0..1) of ``values`` by nearest-rank interpolation."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    frac = pos - lo
    # lo + (hi-lo)*frac is exact when the neighbors are equal, keeping the
    # result inside [min, max] under floating-point rounding.
    return ordered[lo] + (ordered[hi] - ordered[lo]) * frac


def cdf_points(values: List[float]) -> List[tuple]:
    """(value, cumulative fraction) pairs for CDF plotting/tables."""
    ordered = sorted(values)
    n = len(ordered)
    return [(value, (i + 1) / n) for i, value in enumerate(ordered)]


@dataclass
class DeviceMetrics:
    """Per-device accounting."""

    name: str
    events_processed: int = 0
    busy_time: float = 0.0            # simulated seconds spent processing
    message_costs: List[float] = field(default_factory=list)
    init_cost: float = 0.0            # initialization phase (Fig. 14)
    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    memory_proxy_peak: int = 0
    # Transport-layer counters (all zero when the reliable direct path is
    # active).  ``messages_*`` above keep counting unique DVM payloads, so
    # they stay comparable with reliable runs; the extra wire traffic the
    # unreliable channel induces shows up here instead.
    retransmits: int = 0              # sender: timeout-driven resends
    dup_drops: int = 0                # receiver: already-delivered segment
    reorder_buffered: int = 0         # receiver: arrived ahead of a gap
    acks_sent: int = 0
    dup_acks_ignored: int = 0         # sender: cumulative ack with no news
    flows_given_up: int = 0           # sender: retries exhausted
    # (src, dst, message type, bytes) per sent message; only populated when
    # the collector's ``collect_logs`` flag is on (determinism regression).
    message_log: List[tuple] = field(default_factory=list)

    def cpu_load(self, wall: float) -> float:
        """CPU time over total time (single core), Fig. 14/15's metric."""
        return self.busy_time / wall if wall > 0 else 0.0


@dataclass
class WorkerMetrics:
    """Per-worker accounting for the process backend."""

    worker_id: int
    num_devices: int = 0
    busy_time: float = 0.0            # wall seconds spent executing commands
    rounds: int = 0                   # cross-worker message rounds received


@dataclass
class MetricsCollector:
    devices: Dict[str, DeviceMetrics] = field(default_factory=dict)
    verification_times: List[float] = field(default_factory=list)
    collect_logs: bool = False        # record per-message logs (slow)
    workers: Dict[int, WorkerMetrics] = field(default_factory=dict)
    parallel_wall: float = 0.0        # coordinator wall-clock, process backend
    routed_messages: int = 0          # cross-worker DVM messages
    routed_bytes: int = 0
    # BDD-engine profiles keyed by engine name ("serial" for the simulator's
    # shared manager, "worker<N>" per process-backend worker); values are
    # ``BddManager.profile()`` snapshots.
    engines: Dict[str, Dict[str, int]] = field(default_factory=dict)
    # Atom-index profiles, same keying scheme; values are
    # ``AtomIndex.profile()`` snapshots (only populated in "atoms" mode).
    atom_indexes: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def device(self, name: str) -> DeviceMetrics:
        metrics = self.devices.get(name)
        if metrics is None:
            metrics = DeviceMetrics(name)
            self.devices[name] = metrics
        return metrics

    def worker(self, worker_id: int) -> WorkerMetrics:
        metrics = self.workers.get(worker_id)
        if metrics is None:
            metrics = WorkerMetrics(worker_id)
            self.workers[worker_id] = metrics
        return metrics

    def record_engine(self, name: str, snapshot: Dict[str, int]) -> None:
        """Store (replacing any previous) one engine's profile snapshot."""
        self.engines[name] = dict(snapshot)

    def record_atom_index(self, name: str, snapshot: Dict[str, int]) -> None:
        """Store one atom index's profile snapshot (same keys as engines)."""
        self.atom_indexes[name] = dict(snapshot)

    def worker_busy_times(self) -> List[float]:
        return [m.busy_time for m in self.workers.values()]

    def effective_parallelism(self) -> float:
        """Aggregate worker CPU time over elapsed wall time — how many cores
        the run actually kept busy (the speedup ceiling for this partition)."""
        busy = sum(self.worker_busy_times())
        return busy / self.parallel_wall if self.parallel_wall > 0 else 0.0

    def all_message_costs(self) -> List[float]:
        costs: List[float] = []
        for metrics in self.devices.values():
            costs.extend(metrics.message_costs)
        return costs

    def total_messages(self) -> int:
        return sum(m.messages_sent for m in self.devices.values())

    def total_bytes(self) -> int:
        return sum(m.bytes_sent for m in self.devices.values())

    def transport_totals(self) -> Dict[str, int]:
        """Summed transport counters across devices (chaos/retransmission)."""
        fields_ = (
            "retransmits",
            "dup_drops",
            "reorder_buffered",
            "acks_sent",
            "dup_acks_ignored",
            "flows_given_up",
        )
        return {
            name: sum(getattr(m, name) for m in self.devices.values())
            for name in fields_
        }

    def to_dict(self) -> Dict[str, object]:
        """Full collector state as JSON-serializable plain data.

        Per-device message-cost lists and message logs can be large, so they
        are summarized (count + total) rather than dumped verbatim; every
        counter, profile snapshot and aggregate is included exactly.
        """
        devices = {}
        for name in sorted(self.devices):
            m = self.devices[name]
            devices[name] = {
                "events_processed": m.events_processed,
                "busy_time": m.busy_time,
                "init_cost": m.init_cost,
                "message_cost_count": len(m.message_costs),
                "message_cost_total": sum(m.message_costs),
                "messages_sent": m.messages_sent,
                "messages_received": m.messages_received,
                "bytes_sent": m.bytes_sent,
                "bytes_received": m.bytes_received,
                "memory_proxy_peak": m.memory_proxy_peak,
                "retransmits": m.retransmits,
                "dup_drops": m.dup_drops,
                "reorder_buffered": m.reorder_buffered,
                "acks_sent": m.acks_sent,
                "dup_acks_ignored": m.dup_acks_ignored,
                "flows_given_up": m.flows_given_up,
            }
        workers = {
            str(wid): {
                "worker_id": w.worker_id,
                "num_devices": w.num_devices,
                "busy_time": w.busy_time,
                "rounds": w.rounds,
            }
            for wid, w in sorted(self.workers.items())
        }
        return {
            "devices": devices,
            "workers": workers,
            "verification_times": list(self.verification_times),
            "parallel_wall": self.parallel_wall,
            "routed_messages": self.routed_messages,
            "routed_bytes": self.routed_bytes,
            "engines": {k: dict(v) for k, v in sorted(self.engines.items())},
            "atom_indexes": {
                k: dict(v) for k, v in sorted(self.atom_indexes.items())
            },
            "totals": {
                "messages": self.total_messages(),
                "bytes": self.total_bytes(),
                "transport": self.transport_totals(),
            },
        }
