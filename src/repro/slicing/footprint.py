"""Per-invariant footprints: what part of the network an intent can see.

An invariant's **topology footprint** is the set of devices its DPVNet
places counting tasks on.  That set is *static* over FIB churn: the planner
builds the DPVNet as the product of the path regex and the topology graph,
never the data plane, so rule updates cannot grow it.  DVM messages travel
only along DPVNet edges, whose endpoints both host tasks — so every
verifier, every message and every transport flow of the invariant lives
inside the footprint.

The **packet-space footprint** is the invariant's packet space.  A rule
install/remove can only change the forwarding of packets matching the rule,
and a verifier's recomputation region is ``delta ∩ interest`` — empty
whenever the rule's match is disjoint from the packet space (the
``equal``-operator local checks likewise re-derive ``fwd(packet_space)``,
which such a rule cannot alter).  The one escape hatch is packet
transformation: SUBSCRIBE messages grow a node's interest beyond the packet
space, so a deployment containing transform rules disables packet-space
gating entirely (see :meth:`repro.slicing.registry.SliceRegistry.widen`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet

from repro.bdd.predicate import Predicate
from repro.core.invariant import Invariant
from repro.core.tasks import TaskSet

__all__ = ["SliceFootprint", "invariant_footprint"]


@dataclass(frozen=True)
class SliceFootprint:
    """Immutable footprint of one invariant (or a union over a slice)."""

    devices: FrozenSet[str]
    packet_space: Predicate

    def touches_device(self, dev: str) -> bool:
        return dev in self.devices

    def touches_link(self, a: str, b: str) -> bool:
        """A link event reaches a slice iff it owns a verifier on either
        endpoint (off-footprint endpoints host no verifier for it, and a
        footprint verifier may count packets forwarded toward *any*
        neighbor, DPVNet member or not)."""
        return a in self.devices or b in self.devices

    def touches_packets(self, match: Predicate) -> bool:
        return self.packet_space.overlaps(match)

    def union(self, other: "SliceFootprint") -> "SliceFootprint":
        return SliceFootprint(
            devices=self.devices | other.devices,
            packet_space=self.packet_space | other.packet_space,
        )


def invariant_footprint(invariant: Invariant, task_set: TaskSet) -> SliceFootprint:
    """Footprint of one deployed invariant, from its planner decomposition.

    ``task_set.tasks`` names exactly the devices hosting counting (or
    local-check) tasks; an invariant whose DPVNet is empty (disconnected
    source/destination) gets an empty footprint — no event can ever change
    its verdict, because no verifier for it exists anywhere.
    """
    return SliceFootprint(
        devices=frozenset(task_set.tasks),
        packet_space=invariant.packet_space,
    )
