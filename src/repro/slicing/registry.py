"""The slice registry: tenants, footprints and the inverted event index.

One :class:`SliceRegistry` lives on a :class:`~repro.sim.runner.TulkunRunner`
when slicing is enabled.  It groups deployed invariants into tenant slices,
keeps each slice's merged footprint, and answers the only question the
scheduler asks: *which slices does this event touch?*

Routing rules (all conservative over-approximations — see the module doc of
:mod:`repro.slicing.footprint` for why each is sound):

* **FIB update** ``(device, match)`` → slices with a verifier on the device
  whose packet space overlaps the match (packet gating is skipped once the
  deployment has been :meth:`widen`\\ ed by a transform rule).
* **drain / restore** on a device → slices with a verifier on it (a full
  FIB rewrite touches every packet space).
* **link** ``(a, b)`` → slices with a verifier on either endpoint.
* **crash / restart** of a device → slices with a verifier on the device
  or any of its topology neighbors (neighbors observe the adjacency loss).
* **invariant add/remove** → exactly the named slice.

The inverted index is device-keyed: ``device → slice names``.  Packet
overlap tests are memoized per ``(match, slice)`` — churn overwhelmingly
reinstalls known match predicates, so steady state routes with set lookups
and dictionary hits only.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.bdd.predicate import Predicate
from repro.core.invariant import Invariant
from repro.core.tasks import TaskSet
from repro.errors import SimulationError
from repro.slicing.footprint import SliceFootprint, invariant_footprint
from repro.topology.graph import Topology

__all__ = ["Slice", "SliceRegistry", "tenant_of_invariant"]


def tenant_of_invariant(name: str) -> str:
    """Default tenant of an invariant: the ``tenant/`` name prefix if the
    name carries one, else the invariant's own name (every unprefixed
    invariant is its own single-intent slice)."""
    head, sep, _rest = name.partition("/")
    return head if sep else name


class Slice:
    """One tenant intent: a named group of invariants plus their merged
    footprint.  Mutable — invariants join and leave as the tenant deploys
    and retires them; the merged footprint is rebuilt on every change."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.invariants: Set[str] = set()
        self.devices: FrozenSetStr = frozenset()
        self.packet_space: Optional[Predicate] = None

    def rebuild(self, footprints: Mapping[str, SliceFootprint]) -> None:
        devices: Set[str] = set()
        space: Optional[Predicate] = None
        for inv_name in self.invariants:
            fp = footprints[inv_name]
            devices.update(fp.devices)
            space = fp.packet_space if space is None else space | fp.packet_space
        self.devices = frozenset(devices)
        self.packet_space = space

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Slice({self.name!r}, invariants={sorted(self.invariants)}, "
            f"devices={sorted(self.devices)})"
        )


FrozenSetStr = frozenset


class SliceRegistry:
    """Slices, their footprints, and the event → touched-slices router."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self.slices: Dict[str, Slice] = {}
        self._tenant_of: Dict[str, str] = {}       # invariant -> tenant
        self._footprints: Dict[str, SliceFootprint] = {}
        self._by_device: Dict[str, Set[str]] = {}  # device -> slice names
        # Sticky: a transform rule anywhere disables packet-space gating
        # (SUBSCRIBE can grow verifier interest beyond the packet space).
        self.widened = False
        # (match predicate, slice name) -> overlap verdict.
        self._overlap_memo: Dict[Tuple[Predicate, str], bool] = {}

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def add_invariant(
        self,
        invariant: Invariant,
        task_set: TaskSet,
        tenant: Optional[str] = None,
    ) -> str:
        """Register a deployed invariant under its tenant slice; returns the
        tenant name.  ``tenant=None`` derives it from the name prefix."""
        name = invariant.name
        if name in self._tenant_of:
            raise SimulationError(f"invariant {name!r} is already sliced")
        tenant = tenant if tenant is not None else tenant_of_invariant(name)
        self._tenant_of[name] = tenant
        self._footprints[name] = invariant_footprint(invariant, task_set)
        sl = self.slices.get(tenant)
        if sl is None:
            sl = self.slices[tenant] = Slice(tenant)
        sl.invariants.add(name)
        self._reindex(sl)
        return tenant

    def remove_invariant(self, name: str) -> Optional[str]:
        """Drop an invariant; dissolves its slice when it was the last
        member.  Returns the tenant the invariant belonged to."""
        tenant = self._tenant_of.pop(name, None)
        if tenant is None:
            return None
        self._footprints.pop(name, None)
        sl = self.slices[tenant]
        sl.invariants.discard(name)
        if not sl.invariants:
            del self.slices[tenant]
            self._drop_from_index(tenant)
        else:
            self._reindex(sl)
        self._purge_memo(tenant)
        return tenant

    def _reindex(self, sl: Slice) -> None:
        self._drop_from_index(sl.name)
        sl.rebuild(self._footprints)
        for dev in sl.devices:
            self._by_device.setdefault(dev, set()).add(sl.name)
        self._purge_memo(sl.name)

    def _drop_from_index(self, tenant: str) -> None:
        for members in self._by_device.values():
            members.discard(tenant)

    def _purge_memo(self, tenant: str) -> None:
        stale = [key for key in self._overlap_memo if key[1] == tenant]
        for key in stale:
            del self._overlap_memo[key]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def tenant_of(self, invariant_name: str) -> Optional[str]:
        return self._tenant_of.get(invariant_name)

    def footprint_of(self, invariant_name: str) -> Optional[SliceFootprint]:
        return self._footprints.get(invariant_name)

    def tenants(self) -> List[str]:
        return sorted(self.slices)

    def invariants_of(self, tenants: Iterable[str]) -> Set[str]:
        out: Set[str] = set()
        for tenant in tenants:
            sl = self.slices.get(tenant)
            if sl is not None:
                out.update(sl.invariants)
        return out

    def slice_count(self) -> int:
        return len(self.slices)

    def device_groups(self) -> List[List[str]]:
        """Connected components of slices that share devices, as sorted
        device lists — the process backend's scheduling unit: slices with
        disjoint footprints land in different groups and can be spread
        across shard workers without cutting any slice in two."""
        parent: Dict[str, str] = {}

        def find(x: str) -> str:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a: str, b: str) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[max(ra, rb)] = min(ra, rb)

        for tenant in self.slices:
            parent[tenant] = tenant
        for members in self._by_device.values():
            members_sorted = sorted(members)
            for other in members_sorted[1:]:
                union(members_sorted[0], other)
        groups: Dict[str, Set[str]] = {}
        for tenant, sl in self.slices.items():
            groups.setdefault(find(tenant), set()).update(sl.devices)
        return sorted(
            (sorted(devs) for devs in groups.values()),
            key=lambda devs: (-len(devs), devs),
        )

    # ------------------------------------------------------------------
    # Conservative widening
    # ------------------------------------------------------------------
    def widen(self) -> None:
        """Disable packet-space gating permanently (transform rules seen).

        Sticky by design: a transform rule may have triggered SUBSCRIBEs
        that grew verifier interests beyond their packet spaces, and those
        extensions survive the rule's removal."""
        self.widened = True
        self._overlap_memo.clear()

    def note_rules(self, rules: Iterable) -> None:
        """Scan rules (e.g. an initial FIB) for transform actions."""
        if self.widened:
            return
        for rule in rules:
            action = getattr(rule, "action", None)
            if action is not None and getattr(action, "transform", None) is not None:
                self.widen()
                return

    # ------------------------------------------------------------------
    # Event routing
    # ------------------------------------------------------------------
    def touched_by_update(
        self, dev: str, match: Optional[Predicate]
    ) -> Set[str]:
        """Slices a rule update on ``dev`` with the given match can reach.

        ``match=None`` means the match predicate could not be resolved
        (e.g. a removal of a rule installed earlier in the same batch) —
        packet gating is skipped for that op, device gating still applies.
        """
        candidates = self._by_device.get(dev)
        if not candidates:
            return set()
        if match is None or self.widened:
            return set(candidates)
        touched: Set[str] = set()
        memo = self._overlap_memo
        for tenant in candidates:
            key = (match, tenant)
            hit = memo.get(key)
            if hit is None:
                space = self.slices[tenant].packet_space
                hit = memo[key] = (
                    space is not None and space.overlaps(match)
                )
            if hit:
                touched.add(tenant)
        return touched

    def touched_by_rewrite(self, dev: str) -> Set[str]:
        """Drain/restore: a whole-FIB rewrite touches every packet space."""
        return set(self._by_device.get(dev, ()))

    def touched_by_link(self, a: str, b: str) -> Set[str]:
        return set(self._by_device.get(a, ())) | set(self._by_device.get(b, ()))

    def touched_by_lifecycle(self, dev: str) -> Set[str]:
        """Crash/restart: the device plus every topology neighbor reacts."""
        touched = set(self._by_device.get(dev, ()))
        for neighbor in self.topology.neighbors(dev):
            touched.update(self._by_device.get(neighbor, ()))
        return touched

    def all_tenants(self) -> Set[str]:
        return set(self.slices)
