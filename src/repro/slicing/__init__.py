"""Intent-based slicing: multi-tenant verification by footprint routing.

A *slice* is one tenant intent — a named group of invariants owned by one
operator.  Every slice carries a precomputed **footprint**: the packet
space its invariants constrain and the devices/links their DPVNets can
traverse.  The :class:`SliceRegistry` keeps an inverted index over those
footprints so every FIB update, link event or lifecycle event is routed
only to the slices whose footprint intersects it — untouched slices do no
work at all and their cached verdicts are reused (Chou et al.,
"Fine-grained Distributed Data Plane Verification with Intent-based
Slicing").

The routing is *conservative* (over-approximate), which is what makes it
sound: a slice skipped by the router would provably have processed the
event into a no-op, so the sliced run converges to byte-identical
verdicts, violation regions and CIB/LEC state — pinned by
``tests/test_slicing_differential.py`` across backends and index modes.
"""

from repro.slicing.footprint import SliceFootprint, invariant_footprint
from repro.slicing.registry import Slice, SliceRegistry, tenant_of_invariant

__all__ = [
    "Slice",
    "SliceFootprint",
    "SliceRegistry",
    "invariant_footprint",
    "tenant_of_invariant",
]
