"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``verify``
    One-shot centralized verification of a specification against a topology
    and FIB snapshot::

        python -m repro verify --topology net.topo --fib net.fib \
                               --spec invariants.tulkun

``simulate``
    Full distributed verification (on-device verifiers + DVM protocol over
    the discrete-event simulator), reporting verdicts, timing and message
    counts.

``replay``
    Re-execute a trace recorded with ``simulate --trace``: the run replays
    the recorded message schedule (chaos fates included) byte-identically
    and verifies verdicts, violation regions and transport summary against
    the recording.  Also renders the trace's forensic reports
    (``--provenance``, ``--timeline``, ``--perfetto``).

``explore``
    Model-check a *family* of fault scenarios (link failures, device
    crash/restart windows, maintenance drains, rolling upgrades):
    systematically execute every interleaving, prune the ones the
    commutativity results prove equivalent (partial-order reduction,
    disable with ``--no-por``), and emit a minimized, replay-certified
    ``tulkun-trace-v1`` counterexample for every distinct failure::

        python -m repro explore --topology net.topo --fib net.fib \
                                --spec invariants.tulkun \
                                --fail-link S:A --fail-link B:D \
                                --report explore.json --traces-dir cex/

``dpvnet``
    Print the DPVNet the planner builds for each invariant (nodes, edges,
    per-device task counts) without verifying anything.

``datasets``
    List the built-in datasets with their statistics.

All file formats are the plain-text ones documented in
:mod:`repro.topology.fileformat` (topology), :mod:`repro.dataplane.fib`
(FIBs) and :mod:`repro.core.language` (invariants).
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import List, Optional

from repro.bdd import PacketSpaceContext
from repro.core.language import parse_invariants
from repro.core.planner import Planner
from repro.dataplane.fib import parse_fib_text
from repro.topology.fileformat import parse_topology_text

__all__ = ["main"]


def _load(path: str) -> str:
    return Path(path).read_text(encoding="utf-8")


def _format_packet(packet: dict) -> str:
    """Human-readable witness packet (IPs as dotted quads)."""
    from repro.bdd.fields import int_to_ip

    parts = []
    for name, value in packet.items():
        if name.endswith("_ip"):
            parts.append(f"{name}={int_to_ip(value)}")
        else:
            parts.append(f"{name}={value}")
    return ", ".join(parts)


_PROFILE_COLUMNS = (
    "ops_and",
    "ops_or",
    "ops_diff",
    "ops_not",
    "ops_ite",
    "cache_hits",
    "cache_misses",
    "peak_nodes",
    "live_nodes",
    "gc_runs",
    "gc_reclaimed",
)


def _natural_key(name: str):
    """Sort key splitting digit runs, so ``worker2`` < ``worker10``."""
    return [
        int(part) if part.isdigit() else part
        for part in re.split(r"(\d+)", name)
    ]


def _print_engine_table(engines: dict) -> None:
    """Render BDD-engine profiles (one row per manager) for ``--profile``."""
    if not engines:
        print("engine profile: no engines recorded")
        return
    header = f"{'engine':<10}" + "".join(f"{c:>13}" for c in _PROFILE_COLUMNS)
    print("engine profile:")
    print(f"  {header}")
    for name in sorted(engines, key=_natural_key):
        snap = engines[name]
        row = f"{name:<10}" + "".join(
            f"{snap.get(c, 0):>13}" for c in _PROFILE_COLUMNS
        )
        print(f"  {row}")


_ATOM_COLUMNS = (
    "atoms",
    "splits",
    "merges",
    "compactions",
    "atomize_calls",
    "atomize_hits",
    "pred_cache",
)


def _print_atom_table(atom_indexes: dict) -> None:
    """Render atom-index profiles (one row per index) for ``--profile``."""
    if not atom_indexes:
        return
    header = f"{'index':<10}" + "".join(f"{c:>14}" for c in _ATOM_COLUMNS)
    print("atom-index profile:")
    print(f"  {header}")
    for name in sorted(atom_indexes, key=_natural_key):
        snap = atom_indexes[name]
        row = f"{name:<10}" + "".join(
            f"{snap.get(c, 0):>14}" for c in _ATOM_COLUMNS
        )
        print(f"  {row}")


def _load_inputs(args):
    ctx = PacketSpaceContext()
    topology = parse_topology_text(_load(args.topology))
    planes = parse_fib_text(ctx, _load(args.fib))
    invariants = parse_invariants(ctx, _load(args.spec))
    # Devices appearing in the topology but not the FIB get empty planes.
    from repro.dataplane.device import DevicePlane

    for dev in topology.devices:
        planes.setdefault(dev, DevicePlane(dev, ctx))
    return ctx, topology, planes, invariants


def cmd_verify(args) -> int:
    ctx, topology, planes, invariants = _load_inputs(args)
    planner = Planner(topology, ctx)
    failures = 0
    for invariant in invariants:
        if args.validate:
            planner.validate(invariant)
        result = planner.verify(invariant, planes)
        print(result.summary())
        for violation in result.violations[: args.max_violations]:
            packet = violation.example_packet()
            detail = violation.message or f"counts={list(violation.counts)}"
            print(f"  [{violation.ingress}] {detail}")
            if packet and not violation.message:
                print(f"    witness packet: {_format_packet(packet)}")
        if not result.holds:
            failures += 1
    if args.profile:
        _print_engine_table({"main": ctx.mgr.profile()})
    return 1 if failures else 0


def cmd_simulate(args) -> int:
    from repro.sim import ChaosConfig, TulkunRunner

    chaos = None
    if args.chaos:
        try:
            chaos = ChaosConfig.parse(args.chaos)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    tracer = None
    if args.trace and args.backend != "serial":
        # Record/replay needs the full message schedule, which only the
        # serial channel captures; --perfetto works on both backends.
        print(
            "error: --trace requires --backend serial", file=sys.stderr
        )
        return 2
    if args.trace or args.perfetto:
        from repro.telemetry import Tracer

        tracer = Tracer()
    ctx, topology, planes, invariants = _load_inputs(args)
    try:
        runner = TulkunRunner(
            topology,
            ctx,
            invariants,
            cpu_scale=args.cpu_scale,
            backend=args.backend,
            workers=args.workers,
            gc_threshold=args.gc_threshold,
            predicate_index=args.predicate_index,
            chaos=chaos,
            tracer=tracer,
            use_shm=not args.no_shm,
        )
    except ValueError as exc:  # e.g. --chaos with --backend process
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # Fresh rules inside the runner: re-created to avoid reuse of ids.
    rules = _fresh_rules(planes)
    try:
        result = runner.burst_update(rules)
        clock = "wall" if args.backend == "process" else "simulated"
        print(
            f"verification time: {result.verification_time * 1e3:.3f} ms "
            f"({clock})"
        )
        print(f"events: {result.events}, DVM messages: {result.messages}, "
              f"bytes: {result.bytes_sent}")
        if args.backend == "process":
            network = runner.network
            print(
                f"workers: {network.num_workers}, "
                f"cut links: {network.cut_links}, "
                f"cross-worker messages: {network.metrics.routed_messages}, "
                f"effective parallelism: "
                f"{network.metrics.effective_parallelism():.2f}"
            )
        if chaos is not None:
            summary = runner.network.transport_summary()
            print(
                "chaos: "
                f"retransmits={summary['retransmits']}, "
                f"dup_drops={summary['dup_drops']}, "
                f"reorder_buffered={summary['reorder_buffered']}, "
                f"channel_dropped={summary.get('channel_dropped', 0)}, "
                f"unreachable_flows={summary['unreachable_flows']}"
            )
        failures = 0
        for name, holds in sorted(result.holds.items()):
            status = result.statuses.get(
                name, "HOLDS" if holds else "VIOLATED"
            )
            print(f"  {name}: {status}")
            if status != "HOLDS":
                failures += 1
                if status == "VIOLATED":
                    for violation in runner.network.violations(name)[: args.max_violations]:
                        print(f"    {violation}")
        if args.profile:
            _print_engine_table(runner.network.metrics.engines)
            _print_atom_table(runner.network.metrics.atom_indexes)
        if args.metrics_out:
            metrics_doc = runner.network.metrics.to_dict()
            summary = getattr(runner.network, "transport_summary", None)
            metrics_doc["transport_summary"] = (
                {k: int(v) for k, v in sorted(summary().items())}
                if summary is not None
                else {}
            )
            Path(args.metrics_out).write_text(
                json.dumps(metrics_doc, indent=1) + "\n", encoding="utf-8"
            )
            print(f"metrics written to {args.metrics_out}")
        if tracer is not None:
            if args.trace:
                from repro.telemetry import TraceFile

                trace = TraceFile.from_run(
                    runner,
                    tracer,
                    inputs={
                        "topology": _load(args.topology),
                        "fib": _load(args.fib),
                        "spec": _load(args.spec),
                    },
                )
                trace.save(args.trace)
                print(f"trace written to {args.trace}")
            if args.perfetto:
                from repro.telemetry import write_chrome_trace

                write_chrome_trace(
                    args.perfetto,
                    tracer.events,
                    metadata={"predicate_index": args.predicate_index},
                )
                print(f"perfetto trace written to {args.perfetto}")
        return 1 if failures else 0
    finally:
        runner.close()


def cmd_replay(args) -> int:
    from repro.errors import ReplayError
    from repro.telemetry import (
        TraceFile,
        convergence_timeline,
        replay_trace,
        violation_provenance,
        write_chrome_trace,
    )

    try:
        trace = TraceFile.load(args.trace)
    except (OSError, ReplayError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    # Forensic reports render from the *recorded* event log — they describe
    # the original run regardless of any predicate-index override below.
    recorded_events = trace.trace_events()
    if args.timeline:
        Path(args.timeline).write_text(
            convergence_timeline(recorded_events), encoding="utf-8"
        )
        print(f"convergence timeline written to {args.timeline}")
    if args.provenance:
        Path(args.provenance).write_text(
            violation_provenance(recorded_events), encoding="utf-8"
        )
        print(f"violation provenance written to {args.provenance}")
    if args.perfetto:
        write_chrome_trace(
            args.perfetto,
            recorded_events,
            metadata={"predicate_index": trace.predicate_index},
        )
        print(f"perfetto trace written to {args.perfetto}")

    mode = args.predicate_index or trace.predicate_index
    try:
        runner = replay_trace(trace, predicate_index=args.predicate_index)
    except ReplayError as exc:
        print(f"replay FAILED: {exc}", file=sys.stderr)
        return 1
    try:
        mismatches = trace.verify(runner)
        for name, status in sorted(runner.statuses().items()):
            print(f"  {name}: {status}")
        if mismatches:
            print(
                f"replay DIVERGED ({len(mismatches)} mismatch(es), "
                f"predicate_index={mode}):"
            )
            for line in mismatches:
                print(f"  {line}")
            return 1
        print(
            f"replay OK: outcomes byte-identical to the recording "
            f"(predicate_index={mode})"
        )
        return 0
    finally:
        runner.close()


def cmd_explore(args) -> int:
    from repro.dataplane.device import DevicePlane
    from repro.dataplane.rule import Rule
    from repro.explore import FaultElement, ScenarioFamily, explore_family
    from repro.sim import ChaosConfig, ReliableChannel, TulkunRunner

    chaos = None
    if args.chaos:
        try:
            chaos = ChaosConfig.parse(args.chaos)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    elements: List[FaultElement] = []
    for spec in args.fail_link:
        ends = tuple(spec.split(":"))
        if len(ends) != 2:
            print(f"error: --fail-link wants A:B, got {spec!r}", file=sys.stderr)
            return 2
        elements.append(FaultElement("link", ends, recover=not args.no_recover))
    for dev in args.crash_device:
        elements.append(
            FaultElement("device", (dev,), recover=not args.no_recover)
        )
    for dev in args.drain_device:
        elements.append(
            FaultElement("drain", (dev,), recover=not args.no_recover)
        )
    for dev in args.upgrade_device:
        elements.append(FaultElement("upgrade", (dev,)))
    if not elements:
        print(
            "error: give at least one fault element (--fail-link, "
            "--crash-device, --drain-device, --upgrade-device)",
            file=sys.stderr,
        )
        return 2

    topo_text = _load(args.topology)
    fib_text = _load(args.fib)
    spec_text = _load(args.spec)

    def harness(tracer=None, channel=None):
        # A fresh context/deployment per scenario: outcomes are functions
        # of the scenario alone, never of exploration order.
        ctx = PacketSpaceContext()
        topology = parse_topology_text(topo_text)
        planes = parse_fib_text(ctx, fib_text)
        invariants = parse_invariants(ctx, spec_text)
        for dev in topology.devices:
            planes.setdefault(dev, DevicePlane(dev, ctx))
        if channel is None and chaos is None and args.transport == "reliable":
            channel = ReliableChannel()
        runner = TulkunRunner(
            topology,
            ctx,
            invariants,
            cpu_scale=args.cpu_scale,
            gc_threshold=args.gc_threshold,
            predicate_index=args.predicate_index,
            chaos=None if channel is not None else chaos,
            tracer=tracer,
            channel=channel,
        )
        rules = {
            dev: [Rule(r.match, r.action, r.priority) for r in plane.rules]
            for dev, plane in planes.items()
        }
        return runner, rules

    family = ScenarioFamily(
        elements=tuple(elements), max_faults=args.max_faults
    )
    try:
        report = explore_family(
            family,
            harness,
            por=not args.no_por,
            budget=args.budget,
            minimize=not args.no_minimize,
            max_counterexamples=args.max_counterexamples,
            trace_inputs={
                "topology": topo_text,
                "fib": fib_text,
                "spec": spec_text,
            },
        )
    except ValueError as exc:  # family too large, bad element, ...
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(f"family: {family.describe()}")
    print(
        f"exhaustive: {report.exhaustive_scenarios} scenarios, "
        f"explored: {report.explored}, pruned: {report.pruned} "
        f"({report.prune_ratio:.1%}), skipped: {report.skipped}"
    )
    print(
        f"violated: {report.violated}, "
        f"distinct outcomes: {len(report.outcome_keys())}"
    )
    traces_dir = Path(args.traces_dir) if args.traces_dir else None
    if traces_dir is not None:
        traces_dir.mkdir(parents=True, exist_ok=True)
    for index, cex in enumerate(report.counterexamples):
        script = (
            " ; ".join(step.describe() for step in cex.steps) or "<baseline>"
        )
        certified = "replay-certified" if cex.replay_ok else "REPLAY DIVERGED"
        print(f"counterexample {index}: {script} ({certified})")
        if traces_dir is not None:
            path = traces_dir / f"cex-{index}.json"
            cex.trace.save(str(path))
            cex.path = str(path)
            print(f"  trace written to {path}")
    if args.report:
        Path(args.report).write_text(
            json.dumps(report.to_json(), indent=1) + "\n", encoding="utf-8"
        )
        print(f"report written to {args.report}")
    if any(not cex.replay_ok for cex in report.counterexamples):
        print("error: a counterexample failed replay certification",
              file=sys.stderr)
        return 2
    return 1 if report.violated else 0


def _fresh_rules(planes):
    """Re-create the parsed rules so ids are private to this deployment."""
    from repro.dataplane.rule import Rule

    return {
        dev: [Rule(r.match, r.action, r.priority) for r in plane.rules]
        for dev, plane in planes.items()
    }


def _parse_host_port(spec: str):
    host, sep, port = spec.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {spec!r}")
    return host or "127.0.0.1", int(port)


def cmd_serve(args) -> int:
    from repro.serve import ServeDaemon, StreamSession, serve_stdio
    from repro.sim import TulkunRunner

    ctx, topology, planes, invariants = _load_inputs(args)
    tracer = None
    if args.perfetto:
        from repro.telemetry import Tracer

        tracer = Tracer()
    try:
        runner = TulkunRunner(
            topology,
            ctx,
            invariants,
            cpu_scale=args.cpu_scale,
            backend=args.backend,
            workers=args.workers,
            gc_threshold=args.gc_threshold,
            predicate_index=args.predicate_index,
            tracer=tracer,
            use_shm=not args.no_shm,
            slices="auto" if args.slices else None,
        )
        session = StreamSession(
            runner,
            _fresh_rules(planes),
            max_pending_per_tenant=args.max_pending_per_tenant,
            max_slices_per_tenant=args.max_slices_per_tenant,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        if args.listen:
            try:
                host, port = _parse_host_port(args.listen)
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            daemon = ServeDaemon(
                session,
                host=host,
                port=port,
                coalesce_window=args.coalesce_window,
                coalesce_limit=args.coalesce_limit,
                queue_limit=args.queue_limit,
            )
            bound_host, bound_port = daemon.bind()
            print(f"listening on {bound_host}:{bound_port}", file=sys.stderr)
            sys.stderr.flush()
            daemon.serve_forever()
        else:
            serve_stdio(
                session,
                sys.stdin,
                sys.stdout,
                coalesce_limit=args.coalesce_limit,
            )
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    finally:
        if tracer is not None and args.perfetto:
            from repro.telemetry import write_chrome_trace

            write_chrome_trace(
                args.perfetto,
                tracer.events,
                metadata={"predicate_index": args.predicate_index},
            )
            print(f"perfetto trace written to {args.perfetto}",
                  file=sys.stderr)
    return 0


def cmd_serve_client(args) -> int:
    from repro.serve.client import format_report, run_script

    try:
        host, port = _parse_host_port(args.connect)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.script == "-":
        script = sys.stdin.readlines()
    else:
        script = Path(args.script).read_text(encoding="utf-8").splitlines()
    try:
        report = run_script(host, port, script, timeout=args.timeout)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_report(report, verbose=args.verbose))
    if report.errors:
        print(f"{len(report.errors)} error frame(s) received", file=sys.stderr)
    if args.expect_delta and not report.deltas:
        print("error: no delta frame received", file=sys.stderr)
        return 1
    return 0


def cmd_dpvnet(args) -> int:
    ctx, topology, _planes, invariants = _load_inputs(args)
    planner = Planner(topology, ctx)
    for invariant in invariants:
        net = planner.build_dpvnet(invariant)
        tasks = planner.decompose(invariant, net)
        print(f"{invariant.name}: {net.stats()}")
        if args.verbose:
            for nid in sorted(net.nodes):
                node = net.nodes[nid]
                children = ", ".join(
                    net.nodes[c].label for c in node.children
                )
                marker = " *" if any(node.accept) else ""
                print(f"  {node.label}{marker} -> [{children}]")
        per_device = {
            dev: task.num_nodes for dev, task in sorted(tasks.tasks.items())
        }
        print(f"  tasks per device: {per_device}")
    return 0


def cmd_datasets(_args) -> int:
    from repro.datasets import build_dataset, dataset_names

    print(f"{'name':<10} {'kind':<5} {'devices':>8} {'links':>6} {'rules':>7}")
    for name in dataset_names():
        ds = build_dataset(name, pair_limit=4)
        stats = ds.stats()
        print(
            f"{stats['name']:<10} {stats['kind']:<5} {stats['devices']:>8} "
            f"{stats['links']:>6} {stats['rules']:>7}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Tulkun: distributed, on-device data plane verification",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_io(p):
        p.add_argument("--topology", required=True, help="topology text file")
        p.add_argument("--fib", required=True, help="FIB text file")
        p.add_argument("--spec", required=True, help="invariant spec file")
        p.add_argument("--max-violations", type=int, default=5)

    p_verify = sub.add_parser("verify", help="one-shot centralized verification")
    add_io(p_verify)
    p_verify.add_argument(
        "--validate", action="store_true",
        help="run the §3 packet-space/destination consistency check",
    )
    p_verify.add_argument(
        "--profile", action="store_true",
        help="print BDD-engine statistics (op counts, cache hit rates, GC)",
    )
    p_verify.set_defaults(func=cmd_verify)

    p_sim = sub.add_parser("simulate", help="distributed verification (simulator)")
    add_io(p_sim)
    p_sim.add_argument("--cpu-scale", type=float, default=1.0)
    p_sim.add_argument(
        "--backend", choices=("serial", "process"), default="serial",
        help="serial = discrete-event simulator (modelled clock); "
             "process = multiprocessing worker pool (wall clock)",
    )
    p_sim.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for --backend process (default: cores, max 4)",
    )
    p_sim.add_argument(
        "--no-shm", action="store_true",
        help="--backend process: ship cross-worker DVM frames inline over "
             "the command pipes instead of shared-memory rings (the "
             "fallback lane; bytes and verdicts are identical)",
    )
    p_sim.add_argument(
        "--profile", action="store_true",
        help="print per-engine BDD statistics after the run",
    )
    p_sim.add_argument(
        "--gc-threshold", type=int, default=None,
        help="BDD node-table size that triggers a garbage-collection sweep "
             "(default: GC disabled)",
    )
    p_sim.add_argument(
        "--chaos", default=None, metavar="SEED,P_LOSS[,P_DUP[,P_REORDER]]",
        help="inject transport faults (serial backend): seeded per-link "
             "drop/duplicate/reorder probabilities; DVM messages then ride "
             "the seq/ack retransmission layer and converged verdicts stay "
             "byte-identical to the reliable run",
    )
    p_sim.add_argument(
        "--predicate-index", choices=("atoms", "bdd"), default="atoms",
        help="verifier region algebra: 'atoms' = dynamic atomic-predicate "
             "index (integer-set hot path), 'bdd' = raw BDD predicates; "
             "verdicts are byte-identical either way",
    )
    p_sim.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record the run (causal event log + full message schedule, "
             "chaos fates included) as a self-contained JSON trace that "
             "'repro replay' re-executes byte-identically",
    )
    p_sim.add_argument(
        "--perfetto", default=None, metavar="PATH",
        help="export the run's event log as Chrome trace-event JSON "
             "(loadable in Perfetto / chrome://tracing): one track per "
             "device, DVM messages as flow arrows",
    )
    p_sim.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the full metrics-collector state (per-device counters, "
             "engine/atom-index profiles, transport summary) as JSON",
    )
    p_sim.set_defaults(func=cmd_simulate)

    p_replay = sub.add_parser(
        "replay",
        help="re-execute a recorded trace and verify byte-identity",
    )
    p_replay.add_argument("trace", help="trace file from 'simulate --trace'")
    p_replay.add_argument(
        "--predicate-index", choices=("atoms", "bdd"), default=None,
        help="override the recorded region-algebra mode; outcomes must be "
             "byte-identical either way",
    )
    p_replay.add_argument(
        "--provenance", default=None, metavar="PATH",
        help="write the violation-provenance report (causal chain from each "
             "violated verdict back through the CIB updates it depends on)",
    )
    p_replay.add_argument(
        "--timeline", default=None, metavar="PATH",
        help="write the per-invariant convergence timeline (plain text)",
    )
    p_replay.add_argument(
        "--perfetto", default=None, metavar="PATH",
        help="export the recorded event log as Chrome trace-event JSON",
    )
    p_replay.set_defaults(func=cmd_replay)

    p_exp = sub.add_parser(
        "explore",
        help="model-check a fault-scenario family (POR + certified replay)",
    )
    add_io(p_exp)
    p_exp.add_argument(
        "--fail-link", action="append", default=[], metavar="A:B",
        help="add a link-failure fault element (repeatable)",
    )
    p_exp.add_argument(
        "--crash-device", action="append", default=[], metavar="DEV",
        help="add a device crash/restart fault element (repeatable)",
    )
    p_exp.add_argument(
        "--drain-device", action="append", default=[], metavar="DEV",
        help="add a maintenance-drain fault element (repeatable)",
    )
    p_exp.add_argument(
        "--upgrade-device", action="append", default=[], metavar="DEV",
        help="add a rolling-upgrade window (drain-crash-restart-restore) "
             "fault element (repeatable)",
    )
    p_exp.add_argument(
        "--no-recover", action="store_true",
        help="fault elements do not recover (no link_up/restart/restore "
             "steps; upgrades always run their full window)",
    )
    p_exp.add_argument(
        "--max-faults", type=int, default=2,
        help="max concurrently active fault elements per scenario "
             "(default 2)",
    )
    p_exp.add_argument(
        "--no-por", action="store_true",
        help="disable partial-order reduction (exhaustive enumeration)",
    )
    p_exp.add_argument(
        "--budget", type=int, default=None,
        help="cap on executed scenarios; the rest are counted as skipped",
    )
    p_exp.add_argument(
        "--no-minimize", action="store_true",
        help="emit failing scenarios as-is instead of greedily dropping "
             "fault elements first",
    )
    p_exp.add_argument(
        "--max-counterexamples", type=int, default=5,
        help="certify at most this many counterexamples (one per distinct "
             "failing outcome, default 5)",
    )
    p_exp.add_argument(
        "--transport", choices=("bare", "reliable"), default="reliable",
        help="'reliable' (default) arms the lossless seq/ack transport so "
             "crash windows degrade to UNKNOWN honestly; 'bare' delivers "
             "DVM messages directly",
    )
    p_exp.add_argument(
        "--chaos", default=None, metavar="SEED,P_LOSS[,P_DUP[,P_REORDER]]",
        help="explore under seeded transport faults (implies the "
             "retransmitting transport)",
    )
    p_exp.add_argument(
        "--cpu-scale", type=float, default=0.0,
        help="per-operation CPU cost scale; 0 (default) makes exploration "
             "purely event-ordered and fully deterministic",
    )
    p_exp.add_argument("--gc-threshold", type=int, default=None)
    p_exp.add_argument(
        "--predicate-index", choices=("atoms", "bdd"), default="atoms",
    )
    p_exp.add_argument(
        "--report", default=None, metavar="PATH",
        help="write the full exploration report (family, coverage, every "
             "scenario's verdicts, counterexamples) as JSON",
    )
    p_exp.add_argument(
        "--traces-dir", default=None, metavar="DIR",
        help="write each counterexample as a replayable tulkun-trace-v1 "
             "file (cex-N.json) into this directory",
    )
    p_exp.set_defaults(func=cmd_explore)

    p_serve = sub.add_parser(
        "serve",
        help="always-on verification daemon (stream updates, get deltas)",
    )
    p_serve.add_argument("--topology", required=True, help="topology text file")
    p_serve.add_argument("--fib", required=True, help="FIB text file")
    p_serve.add_argument("--spec", required=True, help="invariant spec file")
    p_serve.add_argument(
        "--listen", default=None, metavar="HOST:PORT",
        help="serve the tulkun-serve-v1 protocol on a TCP socket (port 0 "
             "picks a free port, printed to stderr); default is a "
             "deterministic stdin/stdout session",
    )
    p_serve.add_argument(
        "--coalesce-window", type=float, default=0.05, metavar="SECONDS",
        help="socket mode: quiet time after the first buffered event before "
             "an epoch fires (default 0.05s)",
    )
    p_serve.add_argument(
        "--coalesce-limit", type=int, default=64, metavar="N",
        help="buffered events that force an epoch regardless of the window "
             "(default 64)",
    )
    p_serve.add_argument("--cpu-scale", type=float, default=1.0)
    p_serve.add_argument(
        "--backend", choices=("serial", "process"), default="serial",
        help="serial = discrete-event simulator (also the only backend for "
             "crash/drain ops); process = multiprocessing worker pool",
    )
    p_serve.add_argument("--workers", type=int, default=None)
    p_serve.add_argument("--no-shm", action="store_true")
    p_serve.add_argument("--gc-threshold", type=int, default=None)
    p_serve.add_argument(
        "--predicate-index", choices=("atoms", "bdd"), default="atoms",
    )
    p_serve.add_argument(
        "--perfetto", default=None, metavar="PATH",
        help="export the serving-epoch span log as Chrome trace-event JSON "
             "on shutdown",
    )
    p_serve.add_argument(
        "--slices", action="store_true",
        help="slice invariants into tenant intents (tenant/name prefix "
             "convention): updates route only to touched slices, delta "
             "frames carry the touched tenant list",
    )
    p_serve.add_argument(
        "--max-pending-per-tenant", type=int, default=None, metavar="N",
        help="admission control: reject (tenant-backlog) requests pushing "
             "one tenant past N un-drained events; needs --slices",
    )
    p_serve.add_argument(
        "--max-slices-per-tenant", type=int, default=None, metavar="N",
        help="admission control: cap the invariants one tenant slice may "
             "hold (tenant-quota on invariant add)",
    )
    p_serve.add_argument(
        "--queue-limit", type=int, default=256, metavar="N",
        help="socket mode: outbound frames buffered per client before "
             "drop-and-flag backpressure kicks in (default 256)",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_client = sub.add_parser(
        "serve-client",
        help="stream a request script to a running serve daemon",
    )
    p_client.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="daemon address (from 'serve --listen')",
    )
    p_client.add_argument(
        "--script", default="-", metavar="PATH",
        help="newline-JSON request script ('-' = stdin); a shutdown op is "
             "appended when the script has none",
    )
    p_client.add_argument(
        "--expect-delta", action="store_true",
        help="exit 1 unless at least one delta frame arrives (CI smoke)",
    )
    p_client.add_argument("--timeout", type=float, default=60.0)
    p_client.add_argument(
        "--verbose", action="store_true", help="dump every received frame",
    )
    p_client.set_defaults(func=cmd_serve_client)

    p_net = sub.add_parser("dpvnet", help="print planner output (DPVNet + tasks)")
    add_io(p_net)
    p_net.add_argument("--verbose", action="store_true")
    p_net.set_defaults(func=cmd_dpvnet)

    p_ds = sub.add_parser("datasets", help="list built-in datasets")
    p_ds.set_defaults(func=cmd_datasets)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
