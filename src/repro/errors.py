"""Exception hierarchy for the Tulkun reproduction.

All library-raised exceptions derive from :class:`ReproError`, so callers can
catch one type to handle any failure originating in this package.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class SpecificationError(ReproError):
    """An invariant specification is malformed or internally inconsistent.

    Raised, e.g., when the destination IPs in a packet space do not match the
    destination devices of the corresponding ``path_exp`` (the consistency
    check described in §3 of the paper), or when the DSL text fails to parse.
    """


class RegexSyntaxError(SpecificationError):
    """A path regular expression could not be parsed."""


class TopologyError(ReproError):
    """A topology operation referenced an unknown device or link."""


class DataPlaneError(ReproError):
    """A data plane table or rule is malformed."""


class PlannerError(ReproError):
    """The planner could not construct a DPVNet or decompose tasks."""


class ProtocolError(ReproError):
    """A DVM protocol message is malformed or violates protocol invariants.

    The most important protocol invariant is the UPDATE message principle:
    the union of withdrawn predicates must equal the union of the predicates
    of the incoming counting results (§5.2).
    """


class SimulationError(ReproError):
    """The discrete-event simulator was driven into an invalid state."""


class DatasetError(ReproError):
    """A dataset could not be built or an unknown dataset name was used."""


class SerializationError(ReproError):
    """A BDD or message could not be serialized or deserialized."""


class ReplayError(ReproError):
    """A recorded trace could not be replayed faithfully.

    Raised when the replayed run diverges from the recorded message
    schedule (e.g. a link transmits more segments than the trace recorded),
    or when a trace file is malformed or lacks the embedded inputs needed
    for self-contained re-execution.
    """
