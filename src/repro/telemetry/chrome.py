"""Chrome trace-event (Perfetto) export.

Renders a traced run as the JSON object format Perfetto and
``chrome://tracing`` load directly: one thread track per device (plus a
``kernel`` track for run windows), ``B``/``E`` span pairs for event-handler
executions, instant events for transport/lifecycle records, and ``s``/``f``
flow events tying each DVM send to its delivery across tracks.

Timestamps are simulated seconds scaled to microseconds (the trace-event
unit).  Per track, items are sorted by ``(ts, seq, B-before-E)``; device
handler spans never overlap (devices process serially), so the emitted
stream is monotone in ``ts`` per track and every ``B`` is closed by the
next ``E`` with the same name — properties the golden-schema test pins.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from repro.telemetry.events import (
    DVM_DELIVER,
    DVM_SEND,
    SPAN_KINDS,
    TraceEvent,
)

__all__ = ["export_chrome_trace", "write_chrome_trace"]

_PID = 1
_SCALE = 1e6  # simulated seconds -> trace-event microseconds

_INSTANT_NAMES = {
    "transport_send": "tx send",
    "transport_retransmit": "tx retransmit",
    "transport_ack": "tx ack",
    "transport_giveup": "tx give-up",
    "transport_dup_drop": "tx dup-drop",
    "transport_buffer": "tx reorder-buffer",
    "gc": "bdd gc",
    "verdict": "verdict",
    "link": "link",
    "crash": "crash",
    "restart": "restart",
    DVM_SEND: "dvm send",
    DVM_DELIVER: "dvm deliver",
}


def _track_name(device: str) -> str:
    return device if device else "kernel"


def export_chrome_trace(
    events: Iterable[TraceEvent], metadata: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Build the Chrome trace-event JSON object for an event log."""
    events = list(events)
    devices = sorted({e.device for e in events})
    tids = {dev: i for i, dev in enumerate(devices)}

    trace_events: List[Dict[str, Any]] = []
    for dev in devices:
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": tids[dev],
                "ts": 0,
                "args": {"name": _track_name(dev)},
            }
        )

    # Per-track item lists; key (ts_us, seq, sub) keeps a span's B before
    # its E at equal timestamps and interleaves instants causally.
    per_track: Dict[int, List[tuple]] = {tid: [] for tid in tids.values()}

    def emit(tid: int, ts: float, seq: int, sub: int, obj: Dict[str, Any]) -> None:
        per_track[tid].append((ts * _SCALE, seq, sub, obj))

    for event in events:
        tid = tids[event.device]
        args = {
            k: v
            for k, v in event.fields.items()
            if k not in ("start", "finish")
        }
        args["lamport"] = event.lamport
        if event.kind in SPAN_KINDS:
            start = float(event.fields.get("start", event.ts))
            finish = float(event.fields.get("finish", start))
            name = str(event.fields.get("name", event.kind))
            base = {"name": name, "cat": event.kind, "pid": _PID, "tid": tid}
            emit(tid, start, event.seq, 0, {**base, "ph": "B", "args": args})
            emit(tid, finish, event.seq, 1, {**base, "ph": "E"})
            continue
        name = _INSTANT_NAMES.get(event.kind, event.kind)
        emit(
            tid,
            event.ts,
            event.seq,
            0,
            {
                "name": name,
                "cat": event.kind,
                "ph": "i",
                "s": "t",  # thread-scoped instant
                "pid": _PID,
                "tid": tid,
                "args": args,
            },
        )
        # DVM messages additionally become flow arrows between tracks.
        if event.kind == DVM_SEND:
            emit(
                tid,
                event.ts,
                event.seq,
                1,
                {
                    "name": str(event.fields.get("msg", "dvm")),
                    "cat": "dvm-flow",
                    "ph": "s",
                    "id": event.fields.get("msg_id", 0),
                    "pid": _PID,
                    "tid": tid,
                },
            )
        elif event.kind == DVM_DELIVER and event.fields.get("msg_id"):
            emit(
                tid,
                event.ts,
                event.seq,
                1,
                {
                    "name": str(event.fields.get("msg", "dvm")),
                    "cat": "dvm-flow",
                    "ph": "f",
                    "bp": "e",
                    "id": event.fields.get("msg_id", 0),
                    "pid": _PID,
                    "tid": tid,
                },
            )

    for tid in sorted(per_track):
        items = sorted(per_track[tid], key=lambda item: item[:3])
        for ts_us, _seq, _sub, obj in items:
            obj["ts"] = ts_us
            trace_events.append(obj)

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "format": "tulkun-telemetry-v1",
            **(metadata or {}),
        },
    }


def write_chrome_trace(
    path: str,
    events: Iterable[TraceEvent],
    metadata: Optional[Dict[str, Any]] = None,
) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(export_chrome_trace(events, metadata), handle, indent=1)
