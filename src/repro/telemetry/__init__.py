"""Causal tracing, exporters and deterministic record/replay.

The debugging substrate for distributed verification runs: a
:class:`Tracer` collects a causally-ordered (Lamport-stamped) event log as
the simulator executes, exporters render it as a Perfetto-loadable Chrome
trace, a per-invariant convergence timeline or a violation-provenance
report, and :class:`TraceFile` records the full message schedule (chaos
fates included) so any run — flaky seed or not — replays byte-identically.
"""

from repro.telemetry.chrome import export_chrome_trace, write_chrome_trace
from repro.telemetry.events import TraceEvent
from repro.telemetry.histogram import LatencyHistogram
from repro.telemetry.record import (
    RecordingChannel,
    ReplayChannel,
    TraceFile,
    outcome_snapshot,
    replay_trace,
)
from repro.telemetry.timeline import convergence_timeline, violation_provenance
from repro.telemetry.tracer import Tracer

__all__ = [
    "LatencyHistogram",
    "RecordingChannel",
    "ReplayChannel",
    "TraceEvent",
    "TraceFile",
    "Tracer",
    "convergence_timeline",
    "export_chrome_trace",
    "outcome_snapshot",
    "replay_trace",
    "violation_provenance",
    "write_chrome_trace",
]
