"""Deterministic record/replay of DVM simulation runs.

A traced run records, alongside the event log, the *fate schedule* of its
channel: for every physical transmission on every directed link, the list
of arrival delays the channel produced plus the fault flags (drop /
duplicate / delay) behind them.  Because the fault-injecting channel draws
fates per ``(src, dst, link_seq)`` — independent of global event
interleaving — replaying that schedule through a :class:`ReplayChannel`
re-executes the exact same protocol run, byte for byte, in either
predicate-index mode.

A :class:`TraceFile` bundles the schedule with the run configuration, the
expected outcomes (statuses, violation regions, transport summary) and the
event log.  With the input files embedded (the CLI's ``--trace`` does
this), ``python -m repro replay trace.json`` is fully self-contained: it
rebuilds the scenario, swaps the recorded schedule in for the channel, and
verifies the re-executed outcomes byte-identically — turning any flaky
chaos seed into a deterministic repro artifact.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReplayError
from repro.sim.transport import Channel, ChaosConfig, TransportConfig
from repro.telemetry.events import TraceEvent
from repro.telemetry.tracer import Tracer

__all__ = [
    "RecordingChannel",
    "ReplayChannel",
    "TraceFile",
    "outcome_snapshot",
    "replay_trace",
]

TRACE_FORMAT = "tulkun-trace-v1"

# Fate flags (bitmask per transmission).
_DROPPED = 1
_DUPLICATED = 2
_DELAYED = 4

_FLAG_FIELDS = (("dropped", _DROPPED), ("duplicated", _DUPLICATED), ("delayed", _DELAYED))


class RecordingChannel(Channel):
    """Transparent wrapper that logs every transmission's fate.

    Fault flags are recovered exactly by diffing the inner channel's
    counters around each call, so the recorded schedule reproduces not just
    behaviour but the channel's own statistics.
    """

    def __init__(self, inner: Channel, tracer: Tracer) -> None:
        self.inner = inner
        self._fates = tracer.channel_fates

    def transmit(self, src: str, dst: str, latency: float) -> List[float]:
        before = self.inner.stats()
        delays = self.inner.transmit(src, dst, latency)
        after = self.inner.stats()
        flags = 0
        for name, bit in _FLAG_FIELDS:
            if after.get(name, 0) > before.get(name, 0):
                flags |= bit
        self._fates.setdefault((src, dst), []).append((list(delays), flags))
        return delays

    def stats(self) -> Dict[str, int]:
        return self.inner.stats()


class ReplayChannel(Channel):
    """Replays a recorded fate schedule instead of drawing fresh fates."""

    def __init__(
        self,
        fates: Dict[Tuple[str, str], List[Tuple[List[float], int]]],
        stat_keys: Tuple[str, ...] = (),
    ) -> None:
        self._fates = {key: list(schedule) for key, schedule in fates.items()}
        self._pos: Dict[Tuple[str, str], int] = {}
        self._stat_keys = tuple(stat_keys)
        self.transmissions = 0
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0

    def transmit(self, src: str, dst: str, latency: float) -> List[float]:
        key = (src, dst)
        index = self._pos.get(key, 0)
        schedule = self._fates.get(key)
        if schedule is None or index >= len(schedule):
            raise ReplayError(
                f"fate schedule exhausted for link {src}->{dst} at "
                f"transmission {index}: the replayed run diverged from the "
                "recording"
            )
        self._pos[key] = index + 1
        delays, flags = schedule[index]
        self.transmissions += 1
        if flags & _DROPPED:
            self.dropped += 1
        if flags & _DUPLICATED:
            self.duplicated += 1
        if flags & _DELAYED:
            self.delayed += 1
        return list(delays)

    def stats(self) -> Dict[str, int]:
        return {key: getattr(self, key, 0) for key in self._stat_keys}


def outcome_snapshot(runner) -> Dict[str, Any]:
    """Canonical, JSON-able fingerprint of a run's converged outcomes.

    Violation regions are serialized ROBDD bytes (hex), so equality between
    snapshots is byte-identity of the verdict-relevant state — across
    predicate-index modes and across record/replay.
    """
    from repro.bdd.serialize import serialize_predicate

    network = runner.network
    violations: Dict[str, List[Dict[str, Any]]] = {}
    verdicts: Dict[str, Dict[str, bool]] = {}
    for inv in runner.invariants:
        rows = []
        for violation in network.violations(inv.name):
            rows.append(
                {
                    "ingress": violation.ingress,
                    "region": serialize_predicate(violation.region).hex(),
                    "counts": sorted(list(vec) for vec in violation.counts),
                    "message": violation.message,
                }
            )
        rows.sort(key=lambda row: (row["ingress"], row["region"], row["message"]))
        violations[inv.name] = rows
        verdicts[inv.name] = {
            ingress: bool(ok)
            for ingress, (ok, _v) in sorted(network.verdicts(inv.name).items())
        }
    return {
        "statuses": dict(runner.statuses()),
        "converged": bool(network.converged),
        "transport_summary": {
            key: int(value)
            for key, value in sorted(network.transport_summary().items())
        },
        "verdicts": verdicts,
        "violations": violations,
    }


def _diff(prefix: str, recorded: Any, replayed: Any, out: List[str]) -> None:
    if isinstance(recorded, dict) and isinstance(replayed, dict):
        for key in sorted(set(recorded) | set(replayed)):
            _diff(
                f"{prefix}.{key}" if prefix else str(key),
                recorded.get(key),
                replayed.get(key),
                out,
            )
        return
    if recorded != replayed:
        out.append(f"{prefix}: recorded {recorded!r} != replayed {replayed!r}")


@dataclass
class TraceFile:
    """The on-disk record of one traced run (JSON document)."""

    predicate_index: str
    cpu_scale: float = 0.0
    chaos: Optional[Dict[str, Any]] = None
    transport: Optional[Dict[str, Any]] = None
    scenario: str = "burst"
    # For scenario "script": the fault steps applied after the burst, as
    # JSON pairs ([op, [args...]]) decodable by ScenarioStep.from_json —
    # the scenario explorer's counterexample format.
    script: List[List] = field(default_factory=list)
    # Embedded input texts ({"topology", "fib", "spec"}) for self-contained
    # CLI replay; None for library-driven scenarios replayed in process.
    inputs: Optional[Dict[str, str]] = None
    fates: Dict[Tuple[str, str], List[Tuple[List[float], int]]] = field(
        default_factory=dict
    )
    channel_stat_keys: Tuple[str, ...] = ()
    expected: Dict[str, Any] = field(default_factory=dict)
    events: List[Dict[str, Any]] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_run(
        cls,
        runner,
        tracer: Tracer,
        inputs: Optional[Dict[str, str]] = None,
        scenario: str = "burst",
        script: Optional[List] = None,
    ) -> "TraceFile":
        """Snapshot a finished traced run into a replayable trace.

        ``script`` (for ``scenario="script"``) is the sequence of
        :class:`~repro.core.scenario.ScenarioStep` fault steps the run
        applied after its burst install.
        """
        network = runner.network
        channel = getattr(network, "channel", None)
        stat_keys: Tuple[str, ...] = ()
        if channel is not None:
            stat_keys = tuple(sorted(channel.stats().keys()))
        chaos = runner.chaos
        transport_config = runner.transport_config
        return cls(
            predicate_index=runner.predicate_index,
            cpu_scale=runner.cpu_scale,
            chaos=asdict(chaos) if chaos is not None else None,
            transport=(
                asdict(transport_config) if transport_config is not None else None
            ),
            scenario=scenario,
            script=[
                step.to_json() if hasattr(step, "to_json") else list(step)
                for step in (script or [])
            ],
            inputs=dict(inputs) if inputs else None,
            fates={
                key: [(list(delays), flags) for delays, flags in schedule]
                for key, schedule in tracer.channel_fates.items()
            },
            channel_stat_keys=stat_keys,
            expected=outcome_snapshot(runner),
            events=[event.to_dict() for event in tracer.events],
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        doc = {
            "format": TRACE_FORMAT,
            "predicate_index": self.predicate_index,
            "cpu_scale": self.cpu_scale,
            "chaos": self.chaos,
            "transport": self.transport,
            "scenario": self.scenario,
            "script": self.script,
            "inputs": self.inputs,
            "fates": {
                f"{src}>{dst}": [[delays, flags] for delays, flags in schedule]
                for (src, dst), schedule in sorted(self.fates.items())
            },
            "channel_stat_keys": list(self.channel_stat_keys),
            "expected": self.expected,
            "events": self.events,
        }
        return json.dumps(doc, indent=1)

    @classmethod
    def from_json(cls, text: str) -> "TraceFile":
        doc = json.loads(text)
        if doc.get("format") != TRACE_FORMAT:
            raise ReplayError(
                f"unknown trace format {doc.get('format')!r} "
                f"(expected {TRACE_FORMAT!r})"
            )
        fates: Dict[Tuple[str, str], List[Tuple[List[float], int]]] = {}
        for link, schedule in doc.get("fates", {}).items():
            src, _, dst = link.partition(">")
            fates[(src, dst)] = [
                ([float(d) for d in delays], int(flags))
                for delays, flags in schedule
            ]
        return cls(
            predicate_index=doc["predicate_index"],
            cpu_scale=float(doc.get("cpu_scale", 0.0)),
            chaos=doc.get("chaos"),
            transport=doc.get("transport"),
            scenario=doc.get("scenario", "burst"),
            script=list(doc.get("script", [])),
            inputs=doc.get("inputs"),
            fates=fates,
            channel_stat_keys=tuple(doc.get("channel_stat_keys", [])),
            expected=doc.get("expected", {}),
            events=list(doc.get("events", [])),
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "TraceFile":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def replay_channel(self) -> Optional[ReplayChannel]:
        """A channel replaying the recorded schedule (None if no channel
        was active — the reliable direct path needs no replay)."""
        if not self.fates and not self.chaos:
            return None
        return ReplayChannel(self.fates, self.channel_stat_keys)

    def transport_config(self) -> Optional[TransportConfig]:
        if self.transport is None:
            return None
        return TransportConfig(**self.transport)

    def trace_events(self) -> List[TraceEvent]:
        return [TraceEvent.from_dict(data) for data in self.events]

    def verify(self, runner) -> List[str]:
        """Compare a replayed run's outcomes to the recording; return the
        list of mismatches (empty = byte-identical)."""
        mismatches: List[str] = []
        _diff("", self.expected, outcome_snapshot(runner), mismatches)
        return mismatches


def replay_trace(
    trace: TraceFile,
    predicate_index: Optional[str] = None,
    tracer: Optional[Tracer] = None,
):
    """Re-execute a self-contained trace (embedded inputs).

    Supports the ``"burst"`` scenario (install everything at t=0, run to
    quiescence) and the ``"script"`` scenario (burst followed by the
    recorded fault steps — the scenario explorer's counterexamples).
    Returns the finished runner; call :meth:`TraceFile.verify` on it to
    check byte-identity.  ``predicate_index`` overrides the recorded mode —
    the outcomes must be identical either way, which is exactly what the
    cross-mode replay tests pin.
    """
    if trace.inputs is None:
        raise ReplayError(
            "trace has no embedded inputs; record it via the CLI's --trace "
            "or replay it in-process against the original scenario"
        )
    if trace.scenario not in ("burst", "script"):
        raise ReplayError(f"unknown recorded scenario {trace.scenario!r}")

    from repro.bdd import PacketSpaceContext
    from repro.core.language import parse_invariants
    from repro.dataplane.device import DevicePlane
    from repro.dataplane.fib import parse_fib_text
    from repro.dataplane.rule import Rule
    from repro.sim.runner import TulkunRunner
    from repro.topology.fileformat import parse_topology_text

    ctx = PacketSpaceContext()
    topology = parse_topology_text(trace.inputs["topology"])
    planes = parse_fib_text(ctx, trace.inputs["fib"])
    invariants = parse_invariants(ctx, trace.inputs["spec"])
    for dev in topology.devices:
        planes.setdefault(dev, DevicePlane(dev, ctx))

    runner = TulkunRunner(
        topology,
        ctx,
        invariants,
        cpu_scale=trace.cpu_scale,
        predicate_index=predicate_index or trace.predicate_index,
        chaos=ChaosConfig(**trace.chaos) if trace.chaos else None,
        transport_config=trace.transport_config(),
        channel=trace.replay_channel(),
        tracer=tracer,
    )
    rules = {
        dev: [Rule(r.match, r.action, r.priority) for r in plane.rules]
        for dev, plane in planes.items()
    }
    if trace.scenario == "script":
        from repro.core.scenario import ScenarioStep
        from repro.sim.scenario import run_script

        run_script(
            runner,
            rules,
            [ScenarioStep.from_json(step) for step in trace.script],
        )
    else:
        runner.burst_update(rules)
    return runner
