"""Typed trace-event records.

Every observable action in a traced simulation run becomes one
:class:`TraceEvent`: a kind tag, the device it happened on (``""`` for
kernel-level events), the simulated timestamp, a per-device Lamport clock
value, and kind-specific fields.  Records are plain data — exporters
(:mod:`repro.telemetry.chrome`, :mod:`repro.telemetry.timeline`) and the
provenance walker consume them without touching live simulator state, so a
trace loaded from disk is as analyzable as one captured in process.

Lamport-clock rules (documented in docs/PROTOCOL.md):

* every traced event on device ``d`` increments ``L_d`` and is stamped with
  the incremented value;
* a DVM send event carries the sender's stamped clock with the message;
* the matching deliver event first merges ``L_dst = max(L_dst, L_send)``
  and then increments — so ``deliver.lamport > send.lamport`` always holds,
  and the happens-before partial order of the run is recoverable from the
  log alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

__all__ = [
    "TraceEvent",
    "TASK",
    "DVM_SEND",
    "DVM_DELIVER",
    "TRANSPORT_SEND",
    "TRANSPORT_RETRANSMIT",
    "TRANSPORT_ACK",
    "TRANSPORT_GIVEUP",
    "TRANSPORT_DUP_DROP",
    "TRANSPORT_BUFFER",
    "GC",
    "VERDICT",
    "LINK",
    "CRASH",
    "RESTART",
    "KERNEL_RUN",
    "IPC",
    "SERVE_EPOCH",
    "SLICE_SPAN",
    "SPAN_KINDS",
]

# Span events (carry ``start``/``finish`` fields; everything else is an
# instant at ``ts``).
TASK = "task"
KERNEL_RUN = "kernel_run"
# Process-backend coordinator/worker IPC: command execution ("drain" for
# inbox deliveries), outbound-frame routing ("flush"), worker idle gaps and
# quiescence probes — the per-worker occupancy timeline.
IPC = "ipc"
# Serving-mode epochs: one span per coalesced re-verification pass through
# the always-on daemon (events ingested, ops applied, wall latency).
SERVE_EPOCH = "serve_epoch"
# Tenant-slice activity: one span per slice touched by an epoch, on a
# ``slice:<tenant>`` track — which tenants each verification pass reached.
SLICE_SPAN = "slice_span"
SPAN_KINDS = frozenset({TASK, KERNEL_RUN, IPC, SERVE_EPOCH, SLICE_SPAN})

# DVM messaging (the CIB announce / subscribe / update traffic).
DVM_SEND = "dvm_send"
DVM_DELIVER = "dvm_deliver"

# Transport reliability layer.
TRANSPORT_SEND = "transport_send"
TRANSPORT_RETRANSMIT = "transport_retransmit"
TRANSPORT_ACK = "transport_ack"
TRANSPORT_GIVEUP = "transport_giveup"
TRANSPORT_DUP_DROP = "transport_dup_drop"
TRANSPORT_BUFFER = "transport_buffer"

# Engine and lifecycle events.
GC = "gc"
VERDICT = "verdict"
LINK = "link"
CRASH = "crash"
RESTART = "restart"


@dataclass
class TraceEvent:
    """One record in the causal event log."""

    seq: int                  # global record order (monotone)
    kind: str
    device: str               # "" = kernel/network-level event
    ts: float                 # simulated time
    lamport: int              # per-device Lamport clock after this event
    fields: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "device": self.device,
            "ts": self.ts,
            "lamport": self.lamport,
            "fields": dict(self.fields),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceEvent":
        return cls(
            seq=int(data["seq"]),
            kind=str(data["kind"]),
            device=str(data["device"]),
            ts=float(data["ts"]),
            lamport=int(data["lamport"]),
            fields=dict(data.get("fields", {})),
        )
