"""The event collector threaded through kernel, network, transport, verifier.

A :class:`Tracer` is the single mutable sink for a traced run: it stamps
every record with simulated time (read from the kernel it is bound to) and a
per-device Lamport clock, assigns message ids so a send and its delivery can
be correlated across devices, and — when the run uses a fault-injecting
channel — collects the per-link fate schedule the record/replay layer needs.

Overhead discipline: the simulator's hot paths guard every call with
``if tracer is not None``; a disabled tracer (``Tracer(enabled=False)``) is
additionally inert so user code can pass one around unconditionally.  The
bench acceptance bar (<3% on ``bench_dvm_churn``/``bench_chaos_overhead``
with tracing off) holds because the disabled path is a single identity
check per event-handler, never per BDD operation.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.telemetry.events import (
    CRASH,
    DVM_DELIVER,
    DVM_SEND,
    GC,
    IPC,
    KERNEL_RUN,
    LINK,
    RESTART,
    SERVE_EPOCH,
    SLICE_SPAN,
    TASK,
    VERDICT,
    TraceEvent,
)

__all__ = ["Tracer"]


class Tracer:
    """Collects the causally-ordered event log of one simulation run."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.events: List[TraceEvent] = []
        self.clocks: Dict[str, int] = {}
        # Per-link channel fate schedule, populated by a RecordingChannel:
        # (src, dst) -> [(delays, flags), ...] in transmission order.
        self.channel_fates: Dict[Tuple[str, str], List[Tuple[List[float], int]]] = {}
        self._seq = 0
        self._clock: Optional[Callable[[], float]] = None
        # Message-identity bookkeeping: the sender stamps an id, the
        # receiver looks it up.  References are kept so ``id()`` values are
        # never recycled while the tracer is alive.
        self._msg_ids: Dict[int, int] = {}
        self._msg_refs: List[object] = []
        self._msg_clock: Dict[int, int] = {}
        self._next_msg_id = 1
        # Wall-clock origin for IPC spans (process backend), set on first
        # use so spans from successive deployments share one timeline.
        self._ipc_epoch: Optional[float] = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Set the simulated-time source (the kernel's ``now``)."""
        self._clock = clock

    def now(self) -> float:
        return self._clock() if self._clock is not None else 0.0

    # ------------------------------------------------------------------
    # Core record path
    # ------------------------------------------------------------------
    def _record(
        self, kind: str, device: str, ts: float, fields: Dict[str, Any]
    ) -> Optional[TraceEvent]:
        if not self.enabled:
            return None
        lamport = self.clocks.get(device, 0) + 1
        self.clocks[device] = lamport
        event = TraceEvent(self._seq, kind, device, ts, lamport, fields)
        self._seq += 1
        self.events.append(event)
        return event

    # ------------------------------------------------------------------
    # Device / handler spans
    # ------------------------------------------------------------------
    def task_span(
        self,
        device: str,
        name: str,
        invariant: Optional[str],
        start: float,
        finish: float,
    ) -> None:
        """One event-handler execution on a device (a span in the export)."""
        self._record(
            TASK,
            device,
            start,
            {"name": name, "invariant": invariant, "start": start, "finish": finish},
        )

    # ------------------------------------------------------------------
    # Process-backend IPC spans
    # ------------------------------------------------------------------
    def ipc_clock(self) -> float:
        """Seconds on the tracer's IPC timeline (wall clock, origin at the
        first call) — the process backend has no simulated clock to bind."""
        import time

        if self._ipc_epoch is None:
            self._ipc_epoch = time.perf_counter()
        return time.perf_counter() - self._ipc_epoch

    def ipc_span(
        self,
        track: str,
        name: str,
        start: float,
        finish: float,
        **fields: Any,
    ) -> None:
        """One coordinator/worker IPC interval (``flush`` / ``drain`` /
        ``idle`` / ``quiescence-probe``) on the given track."""
        self._record(
            IPC,
            track,
            start,
            {"name": name, "start": start, "finish": finish, **fields},
        )

    # ------------------------------------------------------------------
    # Serving-mode epochs
    # ------------------------------------------------------------------
    def epoch_span(
        self,
        epoch: int,
        reason: str,
        start: float,
        finish: float,
        **fields: Any,
    ) -> None:
        """One serving-mode re-verification epoch (a span on the ``serve``
        track): the wall interval from ingesting a coalesced batch to the
        quiescent verdicts, with the batch shape as fields (``events``
        ingested, ``ops`` applied after squashing, trigger ``reason``)."""
        self._record(
            SERVE_EPOCH,
            "serve",
            start,
            {
                "name": f"epoch-{epoch}",
                "epoch": epoch,
                "reason": reason,
                "start": start,
                "finish": finish,
                **fields,
            },
        )

    def slice_span(
        self,
        epoch: int,
        tenant: str,
        start: float,
        finish: float,
        **fields: Any,
    ) -> None:
        """One tenant slice touched by a serving epoch: the same wall
        interval as the epoch span, recorded on the slice's own track so
        per-tenant activity (and idleness) is visible in the export."""
        self._record(
            SLICE_SPAN,
            f"slice:{tenant}",
            start,
            {
                "name": tenant,
                "epoch": epoch,
                "tenant": tenant,
                "start": start,
                "finish": finish,
                **fields,
            },
        )

    # ------------------------------------------------------------------
    # DVM messaging
    # ------------------------------------------------------------------
    def dvm_send(
        self,
        src: str,
        dst: str,
        invariant: Optional[str],
        message: object,
        size: int,
        at: float,
    ) -> None:
        if not self.enabled:
            return
        msg_id = self._next_msg_id
        self._next_msg_id += 1
        self._msg_ids[id(message)] = msg_id
        self._msg_refs.append(message)
        link = getattr(message, "intended_link", None)
        event = self._record(
            DVM_SEND,
            src,
            at,
            {
                "dst": dst,
                "invariant": invariant,
                "msg": type(message).__name__,
                "size": size,
                "msg_id": msg_id,
                "link": list(link) if link is not None else None,
            },
        )
        # The message "carries" the sender's clock: delivery merges it.
        self._msg_clock[msg_id] = event.lamport

    def dvm_deliver(
        self,
        src: str,
        dst: str,
        invariant: Optional[str],
        message: object,
        size: int,
        at: float,
    ) -> None:
        if not self.enabled:
            return
        msg_id = self._msg_ids.get(id(message), 0)
        send_clock = self._msg_clock.get(msg_id, 0)
        # Lamport merge: receiver jumps past the sender's clock at send time.
        if send_clock > self.clocks.get(dst, 0):
            self.clocks[dst] = send_clock
        link = getattr(message, "intended_link", None)
        self._record(
            DVM_DELIVER,
            dst,
            at,
            {
                "src": src,
                "invariant": invariant,
                "msg": type(message).__name__,
                "size": size,
                "msg_id": msg_id,
                "send_lamport": send_clock,
                "link": list(link) if link is not None else None,
            },
        )

    # ------------------------------------------------------------------
    # Transport, lifecycle, engine
    # ------------------------------------------------------------------
    def transport_event(
        self, kind: str, device: str, at: float, **fields: Any
    ) -> None:
        self._record(kind, device, at, fields)

    def gc_event(self, engine: str, at: float, **fields: Any) -> None:
        self._record(GC, engine, at, fields)

    def verdict(
        self,
        device: str,
        invariant: Optional[str],
        ingress: str,
        ok: bool,
        violations: int,
        at: float,
    ) -> None:
        self._record(
            VERDICT,
            device,
            at,
            {
                "invariant": invariant,
                "ingress": ingress,
                "ok": ok,
                "violations": violations,
            },
        )

    def link_event(self, a: str, b: str, is_up: bool, at: float) -> None:
        self._record(LINK, a, at, {"other": b, "up": is_up})

    def crash(self, device: str, at: float) -> None:
        self._record(CRASH, device, at, {})

    def restart(self, device: str, at: float) -> None:
        self._record(RESTART, device, at, {})

    def kernel_run(
        self, start: float, finish: float, events: int, pending: int
    ) -> None:
        """One ``SimKernel.run`` window (a span on the kernel track)."""
        self._record(
            KERNEL_RUN,
            "",
            start,
            {
                "name": "run",
                "start": start,
                "finish": finish,
                "events": events,
                "pending": pending,
            },
        )
