"""Verdict-latency bookkeeping for the always-on serving mode.

A :class:`LatencyHistogram` accumulates per-epoch verdict latencies (the
wall interval from ingesting a coalesced update batch to the quiescent
verdicts) and reports the serving quantiles the streaming benchmark and the
daemon's ``stats`` frame expose: p50/p90/p99, mean and max.

Samples are kept exactly — a serving run produces one sample per *epoch*
(thousands at most), not one per update, so a reservoir or bucketed sketch
would buy nothing and cost fidelity in the p99 tail.
"""

from __future__ import annotations

import math
from typing import Dict, List

__all__ = ["LatencyHistogram"]


def _percentile(values: List[float], q: float) -> float:
    """Linear-interpolation percentile (mirrors ``repro.sim.metrics``,
    duplicated here so telemetry never imports the simulator package)."""
    if not values:
        return 0.0
    data = sorted(values)
    if len(data) == 1:
        return data[0]
    rank = q * (len(data) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return data[lo]
    frac = rank - lo
    return data[lo] * (1.0 - frac) + data[hi] * frac


class LatencyHistogram:
    """Exact-sample latency accumulator with percentile readout."""

    def __init__(self) -> None:
        self._samples: List[float] = []
        self._total = 0.0

    def record(self, latency: float) -> None:
        self._samples.append(float(latency))
        self._total += float(latency)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def count(self) -> int:
        return len(self._samples)

    def percentile(self, q: float) -> float:
        """Latency at quantile ``q`` in [0, 1] (0.0 with no samples)."""
        return _percentile(self._samples, q)

    def mean(self) -> float:
        if not self._samples:
            return 0.0
        return self._total / len(self._samples)

    def summary(self) -> Dict[str, float]:
        """The serving-latency digest: count, mean, p50/p90/p99, max."""
        return {
            "count": len(self._samples),
            "mean": self.mean(),
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
            "max": max(self._samples) if self._samples else 0.0,
        }
