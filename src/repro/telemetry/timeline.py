"""Plain-text views over a trace: convergence timelines and provenance.

Two forensic reports, both computed purely from the event log:

* :func:`convergence_timeline` — per invariant, the chronological story of
  a run: message milestones, verdict transitions, topology events and
  transport give-ups, ending with the final verdict per ingress.

* :func:`violation_provenance` — for each violated verdict, the *causal
  cone*: the chain of CIB UPDATE/SUBSCRIBE deliveries that happened-before
  the verdict under the traced Lamport order, walked transitively back
  through each message's send event.  This is the distributed analogue of a
  centralized verifier's explorable execution trace — it names exactly
  which counting-result updates a verdict depended on, in causal order.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.telemetry.events import (
    CRASH,
    DVM_DELIVER,
    DVM_SEND,
    LINK,
    RESTART,
    TRANSPORT_GIVEUP,
    VERDICT,
    TraceEvent,
)

__all__ = ["convergence_timeline", "violation_provenance"]


def _fmt_ts(ts: float) -> str:
    return f"t={ts * 1e3:.6f}ms"


def convergence_timeline(
    events: Iterable[TraceEvent],
    invariant: Optional[str] = None,
    limit: Optional[int] = None,
) -> str:
    """Per-invariant convergence timeline as plain text.

    ``invariant`` restricts the report to one invariant; ``limit`` caps the
    number of detail lines per invariant (the summary always prints).
    """
    events = sorted(events, key=lambda e: (e.ts, e.seq))
    invariants: List[str] = []
    for event in events:
        inv = event.fields.get("invariant")
        if inv and inv not in invariants:
            invariants.append(inv)
    if invariant is not None:
        invariants = [inv for inv in invariants if inv == invariant]

    global_lines: List[Tuple[float, int, str]] = []
    for event in events:
        if event.kind == LINK:
            state = "up" if event.fields.get("up") else "DOWN"
            global_lines.append(
                (event.ts, event.seq,
                 f"{_fmt_ts(event.ts)}  link {event.device}-"
                 f"{event.fields.get('other')} {state}")
            )
        elif event.kind in (CRASH, RESTART):
            global_lines.append(
                (event.ts, event.seq,
                 f"{_fmt_ts(event.ts)}  device {event.device} {event.kind}")
            )

    out: List[str] = []
    for inv in invariants:
        out.append(f"invariant {inv!r}")
        lines: List[Tuple[float, int, str]] = list(global_lines)
        sends = delivers = 0
        final_verdicts: Dict[str, Tuple[bool, int]] = {}
        for event in events:
            if event.fields.get("invariant") != inv:
                continue
            if event.kind == DVM_SEND:
                sends += 1
            elif event.kind == DVM_DELIVER:
                delivers += 1
            elif event.kind == VERDICT:
                ingress = event.fields.get("ingress", "?")
                ok = bool(event.fields.get("ok"))
                nviol = int(event.fields.get("violations", 0))
                final_verdicts[ingress] = (ok, nviol)
                status = "ok" if ok else f"VIOLATED ({nviol} region(s))"
                lines.append(
                    (event.ts, event.seq,
                     f"{_fmt_ts(event.ts)}  verdict at {event.device} "
                     f"[ingress {ingress}]: {status}")
                )
            elif event.kind == TRANSPORT_GIVEUP:
                lines.append(
                    (event.ts, event.seq,
                     f"{_fmt_ts(event.ts)}  transport GIVE-UP "
                     f"{event.device}->{event.fields.get('dst')} "
                     f"(invariant now UNKNOWN)")
                )
        lines.sort(key=lambda item: item[:2])
        shown = lines if limit is None else lines[:limit]
        for _ts, _seq, text in shown:
            out.append(f"  {text}")
        if limit is not None and len(lines) > limit:
            out.append(f"  ... {len(lines) - limit} more line(s)")
        out.append(
            f"  summary: {sends} update/subscribe send(s), "
            f"{delivers} delivery(ies)"
        )
        if final_verdicts:
            for ingress in sorted(final_verdicts):
                ok, nviol = final_verdicts[ingress]
                status = "HOLDS" if ok else f"VIOLATED ({nviol} region(s))"
                out.append(f"  final [{ingress}]: {status}")
        else:
            out.append("  final: no verdict events recorded")
        out.append("")
    if not invariants:
        out.append("no invariant-tagged events in trace")
    return "\n".join(out).rstrip() + "\n"


def _causal_cone(
    events: List[TraceEvent], verdict: TraceEvent
) -> List[TraceEvent]:
    """Deliveries that happened-before ``verdict``, walked transitively.

    Frontier entries are ``(device, lamport_bound)``: every delivery at
    ``device`` with a Lamport stamp ≤ the bound happened-before the target,
    and each such delivery extends the frontier to its sender at the send
    event's stamp.  Message ids dedupe the walk; the DPVNet is a DAG so the
    cone is finite even without the dedup.
    """
    inv = verdict.fields.get("invariant")
    delivers_by_device: Dict[str, List[TraceEvent]] = {}
    send_by_msg: Dict[int, TraceEvent] = {}
    for event in events:
        if event.fields.get("invariant") != inv:
            continue
        if event.kind == DVM_DELIVER:
            delivers_by_device.setdefault(event.device, []).append(event)
        elif event.kind == DVM_SEND:
            send_by_msg[event.fields.get("msg_id", 0)] = event

    cone: List[TraceEvent] = []
    seen_msgs: Set[int] = set()
    frontier: List[Tuple[str, int]] = [(verdict.device, verdict.lamport)]
    visited_bounds: Dict[str, int] = {}
    while frontier:
        device, bound = frontier.pop()
        if visited_bounds.get(device, -1) >= bound:
            continue
        visited_bounds[device] = bound
        for deliver in delivers_by_device.get(device, []):
            if deliver.lamport > bound:
                continue
            msg_id = deliver.fields.get("msg_id", 0)
            if msg_id in seen_msgs:
                continue
            seen_msgs.add(msg_id)
            cone.append(deliver)
            send = send_by_msg.get(msg_id)
            if send is not None:
                frontier.append((send.device, send.lamport))
    cone.sort(key=lambda e: (e.ts, e.seq))
    return cone


def violation_provenance(
    events: Iterable[TraceEvent],
    invariant: Optional[str] = None,
) -> str:
    """Walk each violated verdict back through the CIB updates it depends on.

    For every ingress whose *latest* verdict is a violation, reports the
    causal cone of DVM deliveries (UPDATE/SUBSCRIBE) under the Lamport
    order, chronologically — the counting-result flow that produced the
    violating count vectors.
    """
    events = sorted(events, key=lambda e: (e.ts, e.seq))
    latest: Dict[Tuple[str, str], TraceEvent] = {}
    for event in events:
        if event.kind != VERDICT:
            continue
        inv = event.fields.get("invariant")
        if invariant is not None and inv != invariant:
            continue
        latest[(inv, event.fields.get("ingress", "?"))] = event

    out: List[str] = []
    violated = [
        (key, ev) for key, ev in sorted(latest.items())
        if not ev.fields.get("ok")
    ]
    if not violated:
        out.append("violation provenance: no violated verdicts in trace")
        return "\n".join(out) + "\n"
    for (inv, ingress), verdict in violated:
        nviol = int(verdict.fields.get("violations", 0))
        out.append(
            f"violation provenance — invariant {inv!r}, ingress {ingress!r}"
        )
        out.append(
            f"  verdict at {verdict.device} {_fmt_ts(verdict.ts)} "
            f"(lamport {verdict.lamport}): VIOLATED, {nviol} region(s)"
        )
        cone = _causal_cone(events, verdict)
        if not cone:
            out.append(
                "  no upstream CIB updates: the violation is decided by "
                "local state alone (LEC + base vectors)"
            )
        else:
            out.append(
                f"  causal CIB updates ({len(cone)}, chronological):"
            )
            for deliver in cone:
                link = deliver.fields.get("link")
                link_txt = (
                    f" link ({link[0]},{link[1]})" if link else ""
                )
                out.append(
                    f"    {_fmt_ts(deliver.ts)}  "
                    f"{deliver.fields.get('msg', '?')} "
                    f"{deliver.fields.get('src')} -> {deliver.device}"
                    f"{link_txt}, {deliver.fields.get('size', 0)}B "
                    f"(lamport {deliver.lamport})"
                )
        out.append("")
    return "\n".join(out).rstrip() + "\n"
