"""Tulkun reproduction: distributed, on-device data plane verification.

A full Python reproduction of "Beyond a Centralized Verifier: Scaling Data
Plane Checking via Distributed, On-Device Verification" (SIGCOMM 2023):

* :mod:`repro.bdd` — the BDD predicate engine and packet spaces;
* :mod:`repro.automata` — device-alphabet regexes and minimal DFAs;
* :mod:`repro.dataplane` — match-action tables, LECs, trace semantics;
* :mod:`repro.topology` — topology model, generators, WAN zoo;
* :mod:`repro.core` — the invariant language, planner, DPVNet, counting,
  the DVM protocol and on-device verifiers, fault tolerance;
* :mod:`repro.sim` — the discrete-event simulator and scenario runners;
* :mod:`repro.baselines` — centralized DPV tools (AP, APKeep, Delta-net,
  VeriFlow, Flash);
* :mod:`repro.datasets` — the Figure 10 dataset registry and workloads.

Quickstart::

    from repro.bdd import PacketSpaceContext
    from repro.topology import fig2a_example
    from repro.core import Planner
    from repro.core.library import waypoint_reachability

    ctx = PacketSpaceContext()
    topo = fig2a_example()
    inv = waypoint_reachability(ctx.ip_prefix("10.0.0.0/23"), "S", "W", "D")
    planner = Planner(topo, ctx)
    result = planner.verify(inv, planes)   # planes: your data plane snapshot
"""

__version__ = "1.0.0"

from repro.errors import (
    DataPlaneError,
    DatasetError,
    PlannerError,
    ProtocolError,
    RegexSyntaxError,
    ReproError,
    SerializationError,
    SimulationError,
    SpecificationError,
    TopologyError,
)

__all__ = [
    "DataPlaneError",
    "DatasetError",
    "PlannerError",
    "ProtocolError",
    "RegexSyntaxError",
    "ReproError",
    "SerializationError",
    "SimulationError",
    "SpecificationError",
    "TopologyError",
    "__version__",
]
