"""Local equivalence classes (LECs).

A LEC of a device is a maximal packet set whose members all receive the same
action at that device (§5.1).  The LEC builder turns a prioritized rule list
into the minimal such partition using first-match semantics, and computes
deltas between successive tables — the deltas are what the DVM protocol
propagates on rule updates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.bdd.predicate import PacketSpaceContext, Predicate
from repro.dataplane.action import Action
from repro.dataplane.rule import Rule

__all__ = ["LecTable", "LecDelta", "compute_lec_table", "diff_lec_tables"]


@dataclass(frozen=True)
class LecDelta:
    """A region of packet space whose action changed."""

    predicate: Predicate
    old_action: Action
    new_action: Action


class LecTable:
    """Minimal (packet_space, action) partition of the whole packet space.

    Internally a dict keyed by action; the predicates are pairwise disjoint
    and their union is the universe (packets matching no rule map to drop).
    """

    def __init__(self, ctx: PacketSpaceContext, entries: Dict[Action, Predicate]) -> None:
        self.ctx = ctx
        self._entries = {
            action: pred for action, pred in entries.items() if not pred.is_empty
        }

    # ------------------------------------------------------------------
    def actions(self) -> List[Action]:
        return list(self._entries)

    def entries(self) -> List[Tuple[Predicate, Action]]:
        return [(pred, action) for action, pred in self._entries.items()]

    def predicate_for(self, action: Action) -> Predicate:
        return self._entries.get(action, self.ctx.empty)

    def action_of(self, pred: Predicate) -> List[Tuple[Predicate, Action]]:
        """Split ``pred`` along LEC boundaries: disjoint (piece, action) pairs
        covering all of ``pred``."""
        pieces: List[Tuple[Predicate, Action]] = []
        remaining = pred
        for action, lec_pred in self._entries.items():
            if remaining.is_empty:
                break
            piece = remaining & lec_pred
            if not piece.is_empty:
                pieces.append((piece, action))
                # Diff against the piece (remaining ∩ lec), not the whole
                # LEC: same result, smaller operand, and when the LEC
                # swallows everything left this hits the f == g shortcut.
                remaining = remaining - piece
        if not remaining.is_empty:
            # Every packet is in some LEC (drop is explicit); reaching here
            # means the table was built incorrectly.
            pieces.append((remaining, Action.drop()))
        return pieces

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LecTable({len(self)} classes)"


def compute_lec_table(
    ctx: PacketSpaceContext, rules: Sequence[Rule]
) -> LecTable:
    """Build the minimal LEC partition from a prioritized rule list."""
    entries: Dict[Action, int] = {}
    mgr = ctx.mgr
    remaining = ctx.universe.node
    for rule in sorted(rules, key=Rule.sort_key):
        if remaining == 0:
            break
        effective = mgr.apply_and(rule.match.node, remaining)
        if effective == 0:
            continue
        # remaining \ match == remaining \ (match ∩ remaining); the effective
        # region is the smaller operand and shares structure with remaining.
        remaining = mgr.apply_diff(remaining, effective)
        prior = entries.get(rule.action, 0)
        entries[rule.action] = mgr.apply_or(prior, effective)
    if remaining != 0:
        drop = Action.drop()
        entries[drop] = mgr.apply_or(entries.get(drop, 0), remaining)
    return LecTable(ctx, {action: ctx.wrap(node) for action, node in entries.items()})


def diff_lec_tables(old: LecTable, new: LecTable) -> List[LecDelta]:
    """Regions whose action changed between two LEC tables.

    The result is a disjoint list of deltas; its union is exactly the packet
    space where old and new disagree.  This is the "withdrawn predicates /
    incoming counting results" payload of an internal rule-update event.
    """
    ctx = new.ctx
    deltas: List[LecDelta] = []
    for new_action, new_pred in new._entries.items():  # noqa: SLF001
        # Anything in new_pred that had a *different* action before changed.
        changed = new_pred - old.predicate_for(new_action)
        if changed.is_empty:
            continue
        for old_action, old_pred in old._entries.items():  # noqa: SLF001
            if old_action == new_action:
                continue
            piece = changed & old_pred
            if not piece.is_empty:
                deltas.append(LecDelta(piece, old_action, new_action))
    return deltas
