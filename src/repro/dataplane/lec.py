"""Local equivalence classes (LECs).

A LEC of a device is a maximal packet set whose members all receive the same
action at that device (§5.1).  The LEC builder turns a prioritized rule list
into the minimal such partition using first-match semantics, and computes
deltas between successive tables — the deltas are what the DVM protocol
propagates on rule updates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.bdd.manager import FALSE
from repro.bdd.predicate import PacketSpaceContext, Predicate
from repro.dataplane.action import Action
from repro.dataplane.rule import Rule

__all__ = [
    "LecTable",
    "LecDelta",
    "compute_lec_table",
    "compute_lec_table_with_effectives",
    "diff_lec_tables",
    "install_into_table",
    "install_into_table_atoms",
    "remove_from_table",
    "remove_from_table_atoms",
]


@dataclass(frozen=True)
class LecDelta:
    """A region of packet space whose action changed."""

    predicate: Predicate
    old_action: Action
    new_action: Action


class LecTable:
    """Minimal (packet_space, action) partition of the whole packet space.

    Internally a dict keyed by action; the predicates are pairwise disjoint
    and their union is the universe (packets matching no rule map to drop).
    """

    def __init__(self, ctx: PacketSpaceContext, entries: Dict[Action, Predicate]) -> None:
        self.ctx = ctx
        self._entries = {
            action: pred for action, pred in entries.items() if not pred.is_empty
        }
        # (AtomIndex, [(AtomSet, Action)]) — atomized view, built on demand.
        self._atom_cache = None

    # ------------------------------------------------------------------
    def actions(self) -> List[Action]:
        return list(self._entries)

    def entries(self) -> List[Tuple[Predicate, Action]]:
        return [(pred, action) for action, pred in self._entries.items()]

    def predicate_for(self, action: Action) -> Predicate:
        return self._entries.get(action, self.ctx.empty)

    def action_of(self, pred: Predicate) -> List[Tuple[Predicate, Action]]:
        """Split ``pred`` along LEC boundaries: disjoint (piece, action) pairs
        covering all of ``pred``."""
        pieces: List[Tuple[Predicate, Action]] = []
        remaining = pred
        for action, lec_pred in self._entries.items():
            if remaining.is_empty:
                break
            piece = remaining & lec_pred
            if not piece.is_empty:
                pieces.append((piece, action))
                # Diff against the piece (remaining ∩ lec), not the whole
                # LEC: same result, smaller operand, and when the LEC
                # swallows everything left this hits the f == g shortcut.
                remaining = remaining - piece
        if not remaining.is_empty:
            # Every packet is in some LEC (drop is explicit); reaching here
            # means the table was built incorrectly.
            pieces.append((remaining, Action.drop()))
        return pieces

    def atom_entries(self, index) -> List[Tuple[object, Action]]:
        """The LEC partition as ``(AtomSet, Action)`` pairs, same order as
        :meth:`action_of` iterates.

        Atomizing a LEC table is what *installs* its class boundaries into
        the shared index; afterwards every region split against this table
        is pure integer-set work.  Cached per table (tables are immutable);
        AtomSets renormalize themselves if later tables refine the atoms.
        """
        cached = self._atom_cache
        if cached is not None and cached[0] is index:
            return cached[1]
        entries = [
            (index.atomize(pred), action)
            for action, pred in self._entries.items()
        ]
        self._atom_cache = (index, entries)
        return entries

    def action_of_atoms(self, region) -> List[Tuple[object, Action]]:
        """Atom-set twin of :meth:`action_of`: split an :class:`AtomSet`
        along LEC boundaries.  Same iteration order, so the resulting piece
        list (and everything downstream — counting, announcing, verdicts)
        matches the BDD path entry for entry."""
        pieces: List[Tuple[object, Action]] = []
        remaining = region
        for lec_aset, action in self.atom_entries(region.index):
            if remaining.is_empty:
                break
            piece = remaining & lec_aset
            if not piece.is_empty:
                pieces.append((piece, action))
                remaining = remaining - piece
        if not remaining.is_empty:
            pieces.append((remaining, Action.drop()))
        return pieces

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LecTable({len(self)} classes)"


def compute_lec_table(
    ctx: PacketSpaceContext, rules: Sequence[Rule]
) -> LecTable:
    """Build the minimal LEC partition from a prioritized rule list."""
    return compute_lec_table_with_effectives(ctx, rules)[0]


def compute_lec_table_with_effectives(
    ctx: PacketSpaceContext, rules: Sequence[Rule]
) -> Tuple[LecTable, Dict[int, Predicate]]:
    """Full LEC build that also returns each rule's *effective region* —
    the packets it actually wins under first-match — keyed by rule id.

    The effective map is what makes single-rule updates incremental
    (:func:`install_into_table` / :func:`remove_from_table`): an update
    only ever redistributes the effective region of the touched rule, so
    per-update cost scales with that region instead of the whole table.
    Rules shadowed into emptiness simply have no entry.
    """
    entries: Dict[Action, int] = {}
    effectives: Dict[int, Predicate] = {}
    mgr = ctx.mgr
    remaining = ctx.universe.node
    for rule in sorted(rules, key=Rule.sort_key):
        if remaining == 0:
            break
        effective = mgr.apply_and(rule.match.node, remaining)
        if effective == 0:
            continue
        # remaining \ match == remaining \ (match ∩ remaining); the effective
        # region is the smaller operand and shares structure with remaining.
        remaining = mgr.apply_diff(remaining, effective)
        prior = entries.get(rule.action, 0)
        entries[rule.action] = mgr.apply_or(prior, effective)
        effectives[rule.rule_id] = ctx.wrap(effective)
    if remaining != 0:
        drop = Action.drop()
        entries[drop] = mgr.apply_or(entries.get(drop, 0), remaining)
    table = LecTable(
        ctx, {action: ctx.wrap(node) for action, node in entries.items()}
    )
    return table, effectives


def _rebuild_with_moves(
    ctx: PacketSpaceContext,
    table: LecTable,
    moves: Dict[Tuple[Action, Action], int],
) -> Tuple[LecTable, List[LecDelta]]:
    """New table (and deltas) from moving disjoint regions between actions.

    ``moves`` maps ``(old_action, new_action)`` to the region node changing
    hands.  Entry insertion order is preserved (appended actions go last),
    which keeps :meth:`LecTable.action_of` piece order — and therefore DVM
    wire bytes — deterministic.  When the old table carries an atomized
    view, the new one is seeded from it by the same moves, so atoms mode
    never re-atomizes a whole table after an incremental update.
    """
    mgr = ctx.mgr
    entries: Dict[Action, int] = {
        action: pred.node for action, pred in table._entries.items()
    }
    deltas: List[LecDelta] = []
    region_preds: Dict[Tuple[Action, Action], Predicate] = {}
    for (old_action, new_action), node in moves.items():
        entries[old_action] = mgr.apply_diff(entries[old_action], node)
        entries[new_action] = mgr.apply_or(entries.get(new_action, FALSE), node)
        pred = ctx.wrap(node)
        region_preds[(old_action, new_action)] = pred
        deltas.append(LecDelta(pred, old_action, new_action))
    new_table = LecTable(
        ctx, {action: ctx.wrap(node) for action, node in entries.items()}
    )
    cache = table._atom_cache
    if cache is not None:
        index = cache[0]
        atom_map = {action: aset for aset, action in cache[1]}
        for (old_action, new_action), pred in region_preds.items():
            piece = index.atomize(pred)
            atom_map[old_action] = atom_map[old_action] - piece
            prior = atom_map.get(new_action, index.empty)
            atom_map[new_action] = prior | piece
        new_table._atom_cache = (
            index,
            [(atom_map[action], action) for action in new_table._entries],
        )
    return new_table, deltas


def install_into_table(
    ctx: PacketSpaceContext,
    table: LecTable,
    effectives: Dict[int, Predicate],
    sorted_rules: Sequence[Rule],
    rule: Rule,
) -> Tuple[LecTable, List[LecDelta]]:
    """Incremental LEC update for one rule install.

    ``sorted_rules`` is the post-install first-match order (containing
    ``rule``); ``effectives`` (mutated in place) is the per-rule effective
    map of ``table``.  The new rule's effective region is its match minus
    everything higher-priority rules cover; that region is then taken from
    the lower rules (in first-match order) that owned it, which yields the
    deltas directly — no table-vs-table diff.
    """
    mgr = ctx.mgr
    position = next(
        i for i, r in enumerate(sorted_rules) if r.rule_id == rule.rule_id
    )
    effective = rule.match.node
    for higher in sorted_rules[:position]:
        if effective == FALSE:
            break
        effective = mgr.apply_diff(effective, higher.match.node)
    effectives[rule.rule_id] = ctx.wrap(effective)
    if effective == FALSE:
        return table, []  # fully shadowed: behaviour unchanged
    moves: Dict[Tuple[Action, Action], int] = {}

    def take(node: int, old_action: Action) -> None:
        if old_action == rule.action:
            return  # same behaviour: no class boundary moves
        key = (old_action, rule.action)
        moves[key] = mgr.apply_or(moves.get(key, FALSE), node)

    remaining = effective
    for lower in sorted_rules[position + 1 :]:
        if remaining == FALSE:
            break
        prev = effectives.get(lower.rule_id)
        if prev is None or prev.node == FALSE:
            continue
        piece = mgr.apply_and(remaining, prev.node)
        if piece == FALSE:
            continue
        remaining = mgr.apply_diff(remaining, piece)
        effectives[lower.rule_id] = ctx.wrap(mgr.apply_diff(prev.node, piece))
        take(piece, lower.action)
    if remaining != FALSE:
        # Packets no rule owned fell through to the implicit drop class.
        take(remaining, Action.drop())
    if not moves:
        return table, []
    return _rebuild_with_moves(ctx, table, moves)


def remove_from_table(
    ctx: PacketSpaceContext,
    table: LecTable,
    effectives: Dict[int, Predicate],
    sorted_rules: Sequence[Rule],
    removed: Rule,
) -> Tuple[LecTable, List[LecDelta]]:
    """Incremental LEC update for one rule removal (inverse of
    :func:`install_into_table`); ``sorted_rules`` is the post-removal
    order.  The removed rule's effective region falls through to the
    remaining lower rules by first-match."""
    mgr = ctx.mgr
    eff = effectives.pop(removed.rule_id, None)
    if eff is None or eff.node == FALSE:
        return table, []  # the rule never won any packets
    removed_key = removed.sort_key()
    moves: Dict[Tuple[Action, Action], int] = {}

    def give(node: int, new_action: Action) -> None:
        if new_action == removed.action:
            return
        key = (removed.action, new_action)
        moves[key] = mgr.apply_or(moves.get(key, FALSE), node)

    remaining = eff.node
    for lower in sorted_rules:
        if lower.sort_key() < removed_key:
            continue  # higher priority: never matched these packets
        if remaining == FALSE:
            break
        piece = mgr.apply_and(remaining, lower.match.node)
        if piece == FALSE:
            continue
        remaining = mgr.apply_diff(remaining, piece)
        prev = effectives.get(lower.rule_id)
        prev_node = FALSE if prev is None else prev.node
        effectives[lower.rule_id] = ctx.wrap(mgr.apply_or(prev_node, piece))
        give(piece, lower.action)
    if remaining != FALSE:
        give(remaining, Action.drop())
    if not moves:
        return table, []
    return _rebuild_with_moves(ctx, table, moves)


def _rebuild_with_moves_atoms(
    ctx: PacketSpaceContext,
    index,
    table: LecTable,
    moves: Dict[Tuple[Action, Action], int],
) -> Tuple[LecTable, List[LecDelta]]:
    """Atom-set twin of :func:`_rebuild_with_moves`.

    ``moves`` carries packed leaf-slot masks instead of BDD nodes.  Each
    region is converted once through the index's memoized
    ``mask_to_predicate`` — ROBDDs are canonical, so the delta predicates
    (and the new table's entries) are byte-identical to what the BDD path
    would have produced for the same update.  The new table's atomized view
    is seeded by pure set algebra, with no re-atomization."""
    mgr = ctx.mgr
    entries: Dict[Action, int] = {
        action: pred.node for action, pred in table._entries.items()
    }
    deltas: List[LecDelta] = []
    move_sets: Dict[Tuple[Action, Action], object] = {}
    for (old_action, new_action), mask in moves.items():
        aset = index.from_mask(mask)
        pred = index.mask_to_predicate(mask)
        entries[old_action] = mgr.apply_diff(entries[old_action], pred.node)
        entries[new_action] = mgr.apply_or(
            entries.get(new_action, FALSE), pred.node
        )
        move_sets[(old_action, new_action)] = aset
        deltas.append(LecDelta(pred, old_action, new_action))
    new_table = LecTable(
        ctx, {action: ctx.wrap(node) for action, node in entries.items()}
    )
    cache = table._atom_cache
    if cache is not None and cache[0] is index:
        atom_map = {action: aset for aset, action in cache[1]}
        for (old_action, new_action), piece in move_sets.items():
            atom_map[old_action] = atom_map[old_action] - piece
            prior = atom_map.get(new_action, index.empty)
            atom_map[new_action] = prior | piece
        new_table._atom_cache = (
            index,
            [(atom_map[action], action) for action in new_table._entries],
        )
    return new_table, deltas


def install_into_table_atoms(
    ctx: PacketSpaceContext,
    index,
    table: LecTable,
    match_atoms: Dict[int, object],
    eff_atoms: Dict[int, object],
    sorted_rules: Sequence[Rule],
    rule: Rule,
) -> Tuple[LecTable, List[LecDelta]]:
    """Atom-algebra twin of :func:`install_into_table`.

    ``match_atoms`` / ``eff_atoms`` (both mutated in place) hold each rule's
    match and effective region as an :class:`AtomSet`.  The only BDD work is
    atomizing the new rule's match — one refinement walk, a cache hit
    whenever the same match predicate was seen before (route refreshes,
    re-points of an existing rule) — and the boundary conversion of the few
    moved regions; the priority scans are single-int mask AND/ANDNOTs.
    """
    # Atomize FIRST: the walk may split atoms, and every stored AtomSet
    # renormalizes itself when read afterwards.  Raw mask snapshots below
    # are safe because nothing after this point refines the forest.
    match_aset = index.atomize(rule.match)
    match_atoms[rule.rule_id] = match_aset
    position = next(
        i for i, r in enumerate(sorted_rules) if r.rule_id == rule.rule_id
    )
    effective = match_aset.mask()
    for higher in sorted_rules[:position]:
        if not effective:
            break
        prev = eff_atoms.get(higher.rule_id)
        if prev is None:
            continue
        effective &= ~prev.mask()
    eff_atoms[rule.rule_id] = index.from_mask(effective)
    if not effective:
        return table, []  # fully shadowed: behaviour unchanged
    moves: Dict[Tuple[Action, Action], int] = {}

    def take(mask: int, old_action: Action) -> None:
        if old_action == rule.action:
            return  # same behaviour: no class boundary moves
        key = (old_action, rule.action)
        moves[key] = moves.get(key, 0) | mask

    remaining = effective
    for lower in sorted_rules[position + 1 :]:
        if not remaining:
            break
        prev = eff_atoms.get(lower.rule_id)
        if prev is None or prev.is_empty:
            continue
        prev_mask = prev.mask()
        piece = remaining & prev_mask
        if not piece:
            continue
        remaining &= ~piece
        eff_atoms[lower.rule_id] = index.from_mask(prev_mask & ~piece)
        take(piece, lower.action)
    if remaining:
        # Packets no rule owned fell through to the implicit drop class.
        take(remaining, Action.drop())
    if not moves:
        return table, []
    return _rebuild_with_moves_atoms(ctx, index, table, moves)


def remove_from_table_atoms(
    ctx: PacketSpaceContext,
    index,
    table: LecTable,
    match_atoms: Dict[int, object],
    eff_atoms: Dict[int, object],
    sorted_rules: Sequence[Rule],
    removed: Rule,
) -> Tuple[LecTable, List[LecDelta]]:
    """Atom-algebra twin of :func:`remove_from_table`.

    Removal introduces no new boundaries (the match was atomized at
    install), so this is pure set algebra plus the boundary conversion of
    the moved regions."""
    eff = eff_atoms.pop(removed.rule_id, None)
    match_atoms.pop(removed.rule_id, None)
    if eff is None or eff.is_empty:
        return table, []  # the rule never won any packets
    removed_key = removed.sort_key()
    moves: Dict[Tuple[Action, Action], int] = {}

    def give(mask: int, new_action: Action) -> None:
        if new_action == removed.action:
            return
        key = (removed.action, new_action)
        moves[key] = moves.get(key, 0) | mask

    remaining = eff.mask()
    for lower in sorted_rules:
        if lower.sort_key() < removed_key:
            continue  # higher priority: never matched these packets
        if not remaining:
            break
        match = match_atoms.get(lower.rule_id)
        if match is None:
            continue
        piece = remaining & match.mask()
        if not piece:
            continue
        remaining &= ~piece
        prev = eff_atoms.get(lower.rule_id)
        prev_mask = 0 if prev is None else prev.mask()
        eff_atoms[lower.rule_id] = index.from_mask(prev_mask | piece)
        give(piece, lower.action)
    if remaining:
        give(remaining, Action.drop())
    if not moves:
        return table, []
    return _rebuild_with_moves_atoms(ctx, index, table, moves)


def diff_lec_tables(old: LecTable, new: LecTable) -> List[LecDelta]:
    """Regions whose action changed between two LEC tables.

    The result is a disjoint list of deltas; its union is exactly the packet
    space where old and new disagree.  This is the "withdrawn predicates /
    incoming counting results" payload of an internal rule-update event.
    """
    ctx = new.ctx
    deltas: List[LecDelta] = []
    for new_action, new_pred in new._entries.items():  # noqa: SLF001
        # Anything in new_pred that had a *different* action before changed.
        changed = new_pred - old.predicate_for(new_action)
        if changed.is_empty:
            continue
        for old_action, old_pred in old._entries.items():  # noqa: SLF001
            if old_action == new_action:
                continue
            piece = changed & old_pred
            if not piece.is_empty:
                deltas.append(LecDelta(piece, old_action, new_action))
    return deltas
