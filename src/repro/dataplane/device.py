"""Per-device data plane: a prioritized match-action table with LEC cache.

This is the "FIB/ACL" box of Figure 1: the forwarding state an on-device
verifier reads.  Rule installs/removals return :class:`LecDelta` lists so the
verifier can process exactly the packet-space regions whose behaviour
changed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.bdd.predicate import PacketSpaceContext, Predicate
from repro.dataplane.action import Action
from repro.dataplane.lec import (
    LecDelta,
    LecTable,
    compute_lec_table_with_effectives,
    install_into_table,
    install_into_table_atoms,
    remove_from_table,
    remove_from_table_atoms,
)
from repro.dataplane.rule import Rule
from repro.errors import DataPlaneError

__all__ = ["DevicePlane"]


class DevicePlane:
    """The data plane of one device."""

    def __init__(self, name: str, ctx: PacketSpaceContext) -> None:
        self.name = name
        self.ctx = ctx
        self._rules: Dict[int, Rule] = {}
        self._lec_cache: Optional[LecTable] = None
        # Per-rule effective regions of the cached table (rule id -> the
        # packets the rule wins).  Single-rule updates evolve the cached
        # table through this map instead of rebuilding it from scratch.
        self._effectives: Optional[Dict[int, Predicate]] = None
        # Atoms mode (enable_atom_algebra): per-rule match/effective regions
        # as AtomSets, so single-rule updates are frozenset algebra instead
        # of one BDD conjunction per lower-priority rule.  The BDD
        # ``_effectives`` map goes unmaintained once this is active (the
        # atom path never reads it; the mode never flips back mid-run).
        self._atom_index = None
        self._match_atoms: Optional[Dict[int, object]] = None
        self._eff_atoms: Optional[Dict[int, object]] = None
        #: FIB epoch: bumped on every table mutation.  Verifiers key their
        #: per-interest forwarding-split memos on it.
        self.epoch = 0

    def enable_atom_algebra(self, index) -> None:
        """Run single-rule updates on atom-set algebra over ``index``.

        Idempotent; flipped on by the network layers when the verifiers run
        with ``predicate_index="atoms"``.  Tables and LEC deltas stay
        byte-identical to the BDD path — only the internal bookkeeping
        representation changes."""
        if self._atom_index is index:
            return
        self._atom_index = index
        self._match_atoms = None
        self._eff_atoms = None

    def _ensure_atom_effectives(self) -> None:
        """Build the per-rule atom bookkeeping for the current table.

        One-time cost per device (then evolved incrementally): atomize every
        match — cache-hit deduped across rules and devices sharing prefixes
        — then derive effective regions by a first-match set-algebra sweep.
        """
        if self._eff_atoms is not None:
            return
        index = self._atom_index
        rules = self.rules
        # Two passes: atomizing any match may split atoms, so mask snapshots
        # are taken only after every boundary is installed (AtomSets
        # renormalize on read).
        match_atoms = {rule.rule_id: index.atomize(rule.match) for rule in rules}
        eff_atoms: Dict[int, object] = {}
        covered = 0
        for rule in rules:
            mask = match_atoms[rule.rule_id].mask()
            eff_atoms[rule.rule_id] = index.from_mask(mask & ~covered)
            covered |= mask
        self._match_atoms = match_atoms
        self._eff_atoms = eff_atoms

    # ------------------------------------------------------------------
    # Table manipulation
    # ------------------------------------------------------------------
    @property
    def rules(self) -> List[Rule]:
        return sorted(self._rules.values(), key=Rule.sort_key)

    @property
    def num_rules(self) -> int:
        return len(self._rules)

    def get_rule(self, rule_id: int) -> Optional[Rule]:
        """The installed rule with this id, or ``None``."""
        return self._rules.get(rule_id)

    def install_rule(self, rule: Rule) -> List[LecDelta]:
        """Install a rule; return the LEC regions whose action changed.

        Incremental: the cached LEC table is evolved by redistributing the
        new rule's effective region, costing BDD work proportional to the
        affected packets rather than the whole rule table."""
        if rule.rule_id in self._rules:
            raise DataPlaneError(
                f"rule {rule.rule_id} already installed on {self.name}"
            )
        old = self.lec_table()
        if self._atom_index is not None:
            self._ensure_atom_effectives()
            self._rules[rule.rule_id] = rule
            self._lec_cache, deltas = install_into_table_atoms(
                self.ctx, self._atom_index, old,
                self._match_atoms, self._eff_atoms, self.rules, rule,
            )
        else:
            self._rules[rule.rule_id] = rule
            self._lec_cache, deltas = install_into_table(
                self.ctx, old, self._effectives, self.rules, rule
            )
        self.epoch += 1
        return deltas

    def remove_rule(self, rule_id: int) -> List[LecDelta]:
        """Remove a rule by id; return the changed LEC regions."""
        if rule_id not in self._rules:
            raise DataPlaneError(f"rule {rule_id} not installed on {self.name}")
        old = self.lec_table()
        if self._atom_index is not None:
            self._ensure_atom_effectives()
            removed = self._rules.pop(rule_id)
            self._lec_cache, deltas = remove_from_table_atoms(
                self.ctx, self._atom_index, old,
                self._match_atoms, self._eff_atoms, self.rules, removed,
            )
        else:
            removed = self._rules.pop(rule_id)
            self._lec_cache, deltas = remove_from_table(
                self.ctx, old, self._effectives, self.rules, removed
            )
        self.epoch += 1
        return deltas

    def replace_rule(self, rule_id: int, new_rule: Rule) -> List[LecDelta]:
        """Atomically swap a rule (the §2.2.3 'B updates its action' case)."""
        deltas = self.remove_rule(rule_id)
        deltas.extend(self.install_rule(new_rule))
        return deltas

    def discard_rule(self, rule_id: int) -> None:
        """Remove a rule without LEC delta computation.

        Mirror-bookkeeping counterpart of :meth:`install_many`: the parallel
        coordinator tracks rule tables without ever paying for LEC builds
        (the workers compute the real deltas).
        """
        if rule_id not in self._rules:
            raise DataPlaneError(f"rule {rule_id} not installed on {self.name}")
        del self._rules[rule_id]
        self._lec_cache = None
        self._effectives = None
        self._match_atoms = None
        self._eff_atoms = None
        self.epoch += 1

    def install_many(self, rules: Sequence[Rule]) -> None:
        """Bulk install without delta computation (burst-update fast path)."""
        for rule in rules:
            if rule.rule_id in self._rules:
                raise DataPlaneError(
                    f"rule {rule.rule_id} already installed on {self.name}"
                )
            self._rules[rule.rule_id] = rule
        self._lec_cache = None
        self._effectives = None
        self._match_atoms = None
        self._eff_atoms = None
        self.epoch += 1

    def clear(self) -> None:
        self._rules.clear()
        self._lec_cache = None
        self._effectives = None
        self._match_atoms = None
        self._eff_atoms = None
        self.epoch += 1

    # ------------------------------------------------------------------
    # Forwarding queries
    # ------------------------------------------------------------------
    def lec_table(self) -> LecTable:
        if self._lec_cache is None:
            self._lec_cache, self._effectives = (
                compute_lec_table_with_effectives(self.ctx, self.rules)
            )
        return self._lec_cache

    def fwd(self, pred: Predicate) -> List[Tuple[Predicate, Action]]:
        """Split a packet set along LEC boundaries into (piece, action)."""
        return self.lec_table().action_of(pred)

    def fwd_atoms(self, region) -> List[Tuple[object, Action]]:
        """Atom-set twin of :meth:`fwd` (same split, integer-set algebra)."""
        return self.lec_table().action_of_atoms(region)

    def fwd_packet(self, packet: Dict[str, int]) -> Action:
        """Action applied to one concrete packet (reference semantics)."""
        pred = self.ctx.packet(**packet)
        pieces = self.fwd(pred)
        # A concrete packet lies in exactly one LEC.
        return pieces[0][1]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DevicePlane({self.name!r}, rules={self.num_rules})"
