"""Per-device data plane: a prioritized match-action table with LEC cache.

This is the "FIB/ACL" box of Figure 1: the forwarding state an on-device
verifier reads.  Rule installs/removals return :class:`LecDelta` lists so the
verifier can process exactly the packet-space regions whose behaviour
changed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.bdd.predicate import PacketSpaceContext, Predicate
from repro.dataplane.action import Action
from repro.dataplane.lec import LecDelta, LecTable, compute_lec_table, diff_lec_tables
from repro.dataplane.rule import Rule
from repro.errors import DataPlaneError

__all__ = ["DevicePlane"]


class DevicePlane:
    """The data plane of one device."""

    def __init__(self, name: str, ctx: PacketSpaceContext) -> None:
        self.name = name
        self.ctx = ctx
        self._rules: Dict[int, Rule] = {}
        self._lec_cache: Optional[LecTable] = None

    # ------------------------------------------------------------------
    # Table manipulation
    # ------------------------------------------------------------------
    @property
    def rules(self) -> List[Rule]:
        return sorted(self._rules.values(), key=Rule.sort_key)

    @property
    def num_rules(self) -> int:
        return len(self._rules)

    def get_rule(self, rule_id: int) -> Optional[Rule]:
        """The installed rule with this id, or ``None``."""
        return self._rules.get(rule_id)

    def install_rule(self, rule: Rule) -> List[LecDelta]:
        """Install a rule; return the LEC regions whose action changed."""
        if rule.rule_id in self._rules:
            raise DataPlaneError(
                f"rule {rule.rule_id} already installed on {self.name}"
            )
        old = self.lec_table()
        self._rules[rule.rule_id] = rule
        self._lec_cache = None
        return diff_lec_tables(old, self.lec_table())

    def remove_rule(self, rule_id: int) -> List[LecDelta]:
        """Remove a rule by id; return the changed LEC regions."""
        if rule_id not in self._rules:
            raise DataPlaneError(f"rule {rule_id} not installed on {self.name}")
        old = self.lec_table()
        del self._rules[rule_id]
        self._lec_cache = None
        return diff_lec_tables(old, self.lec_table())

    def replace_rule(self, rule_id: int, new_rule: Rule) -> List[LecDelta]:
        """Atomically swap a rule (the §2.2.3 'B updates its action' case)."""
        if rule_id not in self._rules:
            raise DataPlaneError(f"rule {rule_id} not installed on {self.name}")
        old = self.lec_table()
        del self._rules[rule_id]
        self._rules[new_rule.rule_id] = new_rule
        self._lec_cache = None
        return diff_lec_tables(old, self.lec_table())

    def discard_rule(self, rule_id: int) -> None:
        """Remove a rule without LEC delta computation.

        Mirror-bookkeeping counterpart of :meth:`install_many`: the parallel
        coordinator tracks rule tables without ever paying for LEC builds
        (the workers compute the real deltas).
        """
        if rule_id not in self._rules:
            raise DataPlaneError(f"rule {rule_id} not installed on {self.name}")
        del self._rules[rule_id]
        self._lec_cache = None

    def install_many(self, rules: Sequence[Rule]) -> None:
        """Bulk install without delta computation (burst-update fast path)."""
        for rule in rules:
            if rule.rule_id in self._rules:
                raise DataPlaneError(
                    f"rule {rule.rule_id} already installed on {self.name}"
                )
            self._rules[rule.rule_id] = rule
        self._lec_cache = None

    def clear(self) -> None:
        self._rules.clear()
        self._lec_cache = None

    # ------------------------------------------------------------------
    # Forwarding queries
    # ------------------------------------------------------------------
    def lec_table(self) -> LecTable:
        if self._lec_cache is None:
            self._lec_cache = compute_lec_table(self.ctx, self.rules)
        return self._lec_cache

    def fwd(self, pred: Predicate) -> List[Tuple[Predicate, Action]]:
        """Split a packet set along LEC boundaries into (piece, action)."""
        return self.lec_table().action_of(pred)

    def fwd_packet(self, packet: Dict[str, int]) -> Action:
        """Action applied to one concrete packet (reference semantics)."""
        pred = self.ctx.packet(**packet)
        pieces = self.fwd(pred)
        # A concrete packet lies in exactly one LEC.
        return pieces[0][1]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DevicePlane({self.name!r}, rules={self.num_rules})"
