"""Plain-text FIB format.

A human-editable representation of destination-prefix forwarding tables used
by the examples and the dataset tooling.  One device section per ``#``
header, one rule per line::

    # device S
    200 10.0.0.0/24 ALL A,B
    100 10.0.0.0/23 ANY B
    10  0.0.0.0/0   DROP
    # device D
    200 10.0.0.0/23 ALL @ext

Priorities are explicit (longest-prefix-match generators emit the prefix
length as priority).  ``@ext`` is delivery out an external port.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Tuple

from repro.bdd.predicate import PacketSpaceContext
from repro.dataplane.action import Action, GroupType
from repro.dataplane.device import DevicePlane
from repro.dataplane.rule import Rule
from repro.errors import DataPlaneError

__all__ = ["parse_fib_text", "format_fib_text"]


def parse_fib_text(
    ctx: PacketSpaceContext, text: str
) -> Dict[str, DevicePlane]:
    """Parse the text format into per-device planes."""
    planes: Dict[str, DevicePlane] = {}
    current: DevicePlane | None = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            header = line[1:].strip()
            if not header.lower().startswith("device"):
                continue  # ordinary comment
            name = header.split(None, 1)[1].strip()
            if not name:
                raise DataPlaneError(f"line {lineno}: missing device name")
            current = planes.setdefault(name, DevicePlane(name, ctx))
            continue
        if current is None:
            raise DataPlaneError(f"line {lineno}: rule before any device header")
        parts = line.split()
        if len(parts) not in (3, 4):
            raise DataPlaneError(f"line {lineno}: malformed rule {line!r}")
        try:
            priority = int(parts[0])
        except ValueError as exc:
            raise DataPlaneError(f"line {lineno}: bad priority {parts[0]!r}") from exc
        match = ctx.ip_prefix(parts[1])
        kind = parts[2].upper()
        if kind == "DROP":
            action = Action.drop()
        else:
            if len(parts) != 4:
                raise DataPlaneError(f"line {lineno}: missing next hops")
            hops = [hop for hop in parts[3].split(",") if hop]
            if kind == "ALL":
                action = Action.forward_all(hops)
            elif kind == "ANY":
                action = Action.forward_any(hops)
            else:
                raise DataPlaneError(f"line {lineno}: unknown action type {kind!r}")
        current.install_many([Rule(match, action, priority)])
    return planes


def format_fib_text(planes: Mapping[str, DevicePlane]) -> str:
    """Best-effort inverse of :func:`parse_fib_text`.

    Only destination-prefix rules round-trip exactly; arbitrary BDD matches
    are emitted as comments because the text format cannot express them.
    """
    lines: List[str] = []
    for name in sorted(planes):
        plane = planes[name]
        lines.append(f"# device {name}")
        for rule in plane.rules:
            action = rule.action
            if action.is_drop:
                spec = "DROP"
                hops = ""
            else:
                spec = action.group_type.value
                hops = " " + ",".join(action.group)
            prefix = _prefix_of(rule)
            if prefix is None:
                lines.append(f"# (unrepresentable match, rule {rule.rule_id})")
            else:
                lines.append(f"{rule.priority} {prefix} {spec}{hops}")
    return "\n".join(lines) + "\n"


def _prefix_of(rule: Rule) -> str | None:
    """Recover a dst_ip CIDR from a rule match if it is a pure prefix."""
    ctx = rule.match.ctx
    if not ctx.layout.has_field("dst_ip"):
        return None
    assignment = ctx.mgr.pick_one(rule.match.node)
    if assignment is None:
        return None
    value, mask = ctx.layout.decode(assignment, "dst_ip")
    # Determine prefix length: longest run of known bits from the MSB.
    length = 0
    for i in range(32):
        if mask & (1 << (31 - i)):
            length += 1
        else:
            break
    from repro.bdd.fields import int_to_ip

    candidate = ctx.prefix("dst_ip", value & _prefix_mask(length), length)
    if candidate == rule.match:
        return f"{int_to_ip(value & _prefix_mask(length))}/{length}"
    return None


def _prefix_mask(length: int) -> int:
    return ((1 << length) - 1) << (32 - length) if length else 0
