"""Match-action rules.

A rule matches a packet set (as a BDD predicate built from header fields) and
carries a forwarding action.  Tables order rules by descending priority; ties
break toward the more recently installed rule, matching how devices treat
equal-priority TCAM entries in practice.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.bdd.predicate import Predicate
from repro.dataplane.action import Action

__all__ = ["Rule"]

_rule_ids = itertools.count(1)


@dataclass
class Rule:
    """One prioritized match-action entry.

    Attributes
    ----------
    match:
        Packet set this rule matches.
    action:
        Forwarding action applied to matched packets.
    priority:
        Larger numbers win.  Longest-prefix-match FIBs encode prefix length
        as priority.
    rule_id:
        Unique per-process id used to address the rule in updates.
    """

    match: Predicate
    action: Action
    priority: int = 0
    rule_id: int = field(default_factory=lambda: next(_rule_ids))

    def sort_key(self) -> tuple:
        """Descending priority, then newest first."""
        return (-self.priority, -self.rule_id)

    def __str__(self) -> str:
        return f"Rule#{self.rule_id}(prio={self.priority}, {self.action})"
