"""Data plane model: rules, actions, devices, LECs and trace semantics."""

from repro.dataplane.action import EXTERNAL, Action, GroupType, Transform
from repro.dataplane.device import DevicePlane
from repro.dataplane.fib import format_fib_text, parse_fib_text
from repro.dataplane.lec import (
    LecDelta,
    LecTable,
    compute_lec_table,
    diff_lec_tables,
)
from repro.dataplane.rule import Rule
from repro.dataplane.trace import (
    Trace,
    TraceStatus,
    count_matching_traces,
    enumerate_universes,
)

__all__ = [
    "EXTERNAL",
    "Action",
    "DevicePlane",
    "GroupType",
    "LecDelta",
    "LecTable",
    "Rule",
    "Trace",
    "TraceStatus",
    "Transform",
    "compute_lec_table",
    "count_matching_traces",
    "diff_lec_tables",
    "enumerate_universes",
    "format_fib_text",
    "parse_fib_text",
]
