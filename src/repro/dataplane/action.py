"""Forwarding actions: ALL/ANY groups, drops and packet transformations.

The paper's data plane model (§2.1): each match-action entry forwards a
packet to a *group* of next hops.  An empty group drops.  A non-empty group
is either ALL-type (the packet is replicated to every member — multicast,
broadcast, 1+1 protection) or ANY-type (exactly one member is chosen by a
vendor-specific blackbox — ECMP, LAG).  Actions may first transform the
packet (§5.2 "Handling packet transformation"), modeled as setting header
fields to constants (the NAT/tunnel-endpoint style rewrite).

``EXTERNAL`` is the pseudo next hop meaning "deliver out an external port".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.bdd.predicate import PacketSpaceContext, Predicate
from repro.errors import DataPlaneError

__all__ = ["GroupType", "Transform", "Action", "EXTERNAL"]

EXTERNAL = "@ext"


class GroupType(enum.Enum):
    """How a multi-member next-hop group treats the packet."""

    ALL = "ALL"
    ANY = "ANY"


@dataclass(frozen=True)
class Transform:
    """A header rewrite: set each named field to a constant value.

    ``assignments`` is a sorted tuple of ``(field_name, value)`` pairs so that
    transforms hash and compare by value.
    """

    assignments: Tuple[Tuple[str, int], ...]

    @classmethod
    def set_fields(cls, **fields: int) -> "Transform":
        return cls(tuple(sorted(fields.items())))

    def apply(self, pred: Predicate) -> Predicate:
        """Image of a packet set under the rewrite."""
        ctx = pred.ctx
        node = pred.node
        for name, value in self.assignments:
            fld = ctx.layout.field(name)
            node = ctx.mgr.exists(node, frozenset(fld.bit_vars()))
            node = ctx.mgr.apply_and(node, ctx.layout.value(ctx.mgr, name, value))
        return ctx.wrap(node)

    def preimage(self, pred: Predicate) -> Predicate:
        """Packets whose rewritten form lands in ``pred``.

        For a set-to-constant rewrite the pre-image constrains every field
        except the rewritten ones, which become free.
        """
        ctx = pred.ctx
        node = pred.node
        for name, value in self.assignments:
            fld = ctx.layout.field(name)
            constrained = ctx.mgr.apply_and(
                node, ctx.layout.value(ctx.mgr, name, value)
            )
            node = ctx.mgr.exists(constrained, frozenset(fld.bit_vars()))
        return ctx.wrap(node)

    def __str__(self) -> str:
        inner = ", ".join(f"{name}={value}" for name, value in self.assignments)
        return f"set({inner})"


@dataclass(frozen=True)
class Action:
    """A forwarding action.  Immutable and hashable: LEC grouping keys on it."""

    group: Tuple[str, ...]
    group_type: GroupType = GroupType.ALL
    transform: Optional[Transform] = None

    def __post_init__(self) -> None:
        if len(set(self.group)) != len(self.group):
            raise DataPlaneError(f"duplicate next hops in group {self.group}")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def forward(
        cls,
        next_hops,
        group_type: GroupType = GroupType.ALL,
        transform: Optional[Transform] = None,
    ) -> "Action":
        hops = tuple(sorted(next_hops))
        if not hops:
            raise DataPlaneError("use Action.drop() for an empty group")
        return cls(hops, group_type, transform)

    @classmethod
    def forward_all(cls, next_hops, transform: Optional[Transform] = None) -> "Action":
        return cls.forward(next_hops, GroupType.ALL, transform)

    @classmethod
    def forward_any(cls, next_hops, transform: Optional[Transform] = None) -> "Action":
        return cls.forward(next_hops, GroupType.ANY, transform)

    @classmethod
    def deliver(cls) -> "Action":
        """Deliver out the external port (destination behaviour)."""
        return cls((EXTERNAL,), GroupType.ALL, None)

    @classmethod
    def drop(cls) -> "Action":
        return cls((), GroupType.ALL, None)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def is_drop(self) -> bool:
        return not self.group

    @property
    def delivers(self) -> bool:
        return EXTERNAL in self.group

    def internal_next_hops(self) -> Tuple[str, ...]:
        """Group members that are real devices (not the external port)."""
        return tuple(hop for hop in self.group if hop != EXTERNAL)

    def without_next_hop(self, device: str) -> "Action":
        """The action after a next hop vanished (link-down handling)."""
        remaining = tuple(hop for hop in self.group if hop != device)
        if not remaining:
            return Action.drop()
        return Action(remaining, self.group_type, self.transform)

    def __str__(self) -> str:
        if self.is_drop:
            return "drop"
        prefix = f"{self.transform}; " if self.transform else ""
        kind = self.group_type.value
        return f"{prefix}fwd({kind}, {{{', '.join(self.group)}}})"
