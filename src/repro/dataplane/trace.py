"""Reference trace/universe semantics (§2.1).

This module executes a concrete packet through the network *by brute force*
and enumerates every universe: ALL-type groups fork traces inside a universe,
ANY-type groups fork the set of universes itself (the "multiverse").  It is
deliberately simple and exponential — it exists as the ground-truth oracle
the property tests compare the DPVNet counting algorithm and the DVM protocol
against, and as the executable definition of the paper's semantics.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from repro.dataplane.action import EXTERNAL, Action, GroupType
from repro.dataplane.device import DevicePlane
from repro.errors import DataPlaneError

__all__ = ["TraceStatus", "Trace", "enumerate_universes", "count_matching_traces"]


class TraceStatus(enum.Enum):
    """Terminal fate of one packet copy."""

    DELIVERED = "delivered"  # left the network through an external port
    DROPPED = "dropped"      # matched a drop action (or no rule)
    LOOPING = "looping"      # exceeded the hop budget


@dataclass(frozen=True)
class Trace:
    """The sequence of devices one packet copy visited, and how it ended."""

    path: Tuple[str, ...]
    status: TraceStatus

    def __str__(self) -> str:
        return f"[{', '.join(self.path)}] ({self.status.value})"


Universe = FrozenSet[Trace]


def enumerate_universes(
    planes: Mapping[str, DevicePlane],
    ingress: str,
    packet: Dict[str, int],
    max_hops: int = 16,
) -> List[Universe]:
    """All universes of ``packet`` entering at ``ingress``.

    Each universe is a frozen set of traces.  Duplicated universes (identical
    trace sets arising from symmetric choices) are collapsed.
    """
    if ingress not in planes:
        raise DataPlaneError(f"unknown ingress device {ingress!r}")

    def expand(device: str, pkt: Dict[str, int], path: Tuple[str, ...]) -> List[FrozenSet[Trace]]:
        """Alternatives for the sub-multiverse rooted at (device, pkt)."""
        path = path + (device,)
        if len(path) > max_hops:
            return [frozenset({Trace(path, TraceStatus.LOOPING)})]
        plane = planes.get(device)
        if plane is None:
            return [frozenset({Trace(path, TraceStatus.DROPPED)})]
        action = plane.fwd_packet(pkt)
        if action.is_drop:
            return [frozenset({Trace(path, TraceStatus.DROPPED)})]
        next_pkt = pkt
        if action.transform is not None:
            next_pkt = dict(pkt)
            for name, value in action.transform.assignments:
                next_pkt[name] = value

        def branch(member: str) -> List[FrozenSet[Trace]]:
            if member == EXTERNAL:
                return [frozenset({Trace(path, TraceStatus.DELIVERED)})]
            return expand(member, next_pkt, path)

        if action.group_type is GroupType.ANY:
            alternatives: List[FrozenSet[Trace]] = []
            for member in action.group:
                alternatives.extend(branch(member))
            return _dedup(alternatives)

        # ALL-type: one alternative per combination of member alternatives.
        member_alternatives = [branch(member) for member in action.group]
        combined: List[FrozenSet[Trace]] = []
        for combo in itertools.product(*member_alternatives):
            merged: Set[Trace] = set()
            for alt in combo:
                merged.update(alt)
            combined.append(frozenset(merged))
        return _dedup(combined)

    return _dedup(expand(ingress, dict(packet), ()))


def _dedup(universes: Sequence[Universe]) -> List[Universe]:
    seen: Set[Universe] = set()
    unique: List[Universe] = []
    for universe in universes:
        if universe not in seen:
            seen.add(universe)
            unique.append(universe)
    return unique


def count_matching_traces(
    universes: Sequence[Universe], accepts, require_delivery: bool = True
) -> List[int]:
    """For each universe, how many traces match the path predicate.

    ``accepts`` is a callable over device-name sequences (typically
    ``dfa.accepts``).  Returns the deduplicated, sorted list of per-universe
    counts — exactly the count set Algorithm 1 computes at the DPVNet source,
    which makes this the oracle for the counting property tests.
    """
    counts: Set[int] = set()
    for universe in universes:
        n = 0
        for trace in universe:
            if require_delivery and trace.status is not TraceStatus.DELIVERED:
                continue
            if accepts(list(trace.path)):
                n += 1
        counts.add(n)
    return sorted(counts)
