"""The serving session: one live deployment driven by a request stream.

A :class:`StreamSession` owns a :class:`TulkunRunner` with a deployed
network and mediates between the wire protocol and the verification layer:

* **ingest** — :meth:`handle_line` decodes one request, validates it
  against the session's *projected* state (the deployment as it will look
  once everything already enqueued is applied), and either buffers it in
  the :class:`Coalescer` or answers directly (``status`` / ``stats``).
  Validation happens at enqueue time precisely so an invalid request is
  rejected on the same line no matter how the stream is chunked into
  epochs — the differential harness depends on that.
* **apply** — :meth:`run_epoch` atomically drains the coalescer and pushes
  the squashed segments through the runner (one quiescence run per
  segment), then emits a ``delta`` frame with the verdict changes.  The
  drain happens *before* any segment is applied, so a request arriving
  while an epoch is in flight lands in the next epoch, never mid-batch.

The session is transport-agnostic: the socket daemon, the stdio loop and
the in-process test harnesses all drive the same three methods.  Rule
identity on the wire is the client-chosen *key* (initial FIB rules are
auto-keyed ``"<device>:<index>"`` in plane order); internally a key maps to
the concrete :class:`Rule` object, so redeployments (process-backend
invariant changes) preserve key validity — the same Rule objects, and
therefore the same rule ids, survive.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.language import parse_invariants, parse_packet_space
from repro.dataplane.rule import Rule
from repro.errors import ReproError
from repro.serve.coalesce import Barrier, Coalescer, FibBatch
from repro.serve.deltas import DeltaEmitter
from repro.serve.protocol import (
    PROTOCOL,
    ControlRequest,
    DeviceRequest,
    InstallSpec,
    InvariantRequest,
    LinkRequest,
    ProtocolError,
    Request,
    SubscribeRequest,
    UpdateRequest,
    decode_line,
    decode_request,
    parse_action,
)
from repro.serve.subscribe import SUBSCRIBE_ALL, Subscription
from repro.sim.runner import TulkunRunner
from repro.slicing import tenant_of_invariant
from repro.telemetry.histogram import LatencyHistogram

__all__ = ["Reply", "StreamSession", "auto_key_rules"]


@dataclass
class Reply:
    """What one request produced: frames to send back, plus loop signals."""

    frames: List[Dict[str, object]] = field(default_factory=list)
    flush: bool = False      # client asked for an immediate epoch
    shutdown: bool = False   # client asked the daemon to stop
    # A subscribe request changes the *requesting* client's broadcast
    # filter; the transport applies it after sending the ack.
    subscribe: Optional[Subscription] = None


def auto_key_rules(
    rules_by_device: Mapping[str, Sequence[Rule]]
) -> Dict[str, Tuple[str, Rule]]:
    """Key map for an initial FIB: ``"<device>:<index>"`` in plane order."""
    keys: Dict[str, Tuple[str, Rule]] = {}
    for dev in sorted(rules_by_device):
        for index, rule in enumerate(rules_by_device[dev]):
            keys[f"{dev}:{index}"] = (dev, rule)
    return keys


class StreamSession:
    """Protocol-to-runner bridge for one always-on deployment."""

    def __init__(
        self,
        runner: TulkunRunner,
        rules_by_device: Mapping[str, Sequence[Rule]],
        histogram: Optional[LatencyHistogram] = None,
        max_pending_per_tenant: Optional[int] = None,
        max_slices_per_tenant: Optional[int] = None,
    ) -> None:
        """``max_pending_per_tenant`` caps how many un-drained events may be
        attributed to one tenant slice (needs slicing enabled on the runner,
        since attribution routes through the slice registry); excess requests
        are rejected with a ``tenant-backlog`` error.  ``max_slices_per_tenant``
        caps how many invariants one tenant slice may hold (``tenant-quota``).
        Both default to ``None`` — unlimited — which keeps admission out of
        the request/response stream entirely."""
        if max_pending_per_tenant is not None and runner.slice_registry is None:
            raise ValueError(
                "max_pending_per_tenant needs a runner with slicing enabled"
            )
        self.runner = runner
        self.rules_by_device = {
            dev: list(rules) for dev, rules in rules_by_device.items()
        }
        self.coalescer = Coalescer()
        self.deltas = DeltaEmitter()
        self.histogram = histogram if histogram is not None else LatencyHistogram()
        self.max_pending_per_tenant = max_pending_per_tenant
        self.max_slices_per_tenant = max_slices_per_tenant
        self.epoch = 0
        self.total_events = 0
        self.total_ops = 0
        # Per-tenant epoch latency (recorded for every tenant an epoch
        # touched) and the pending-event admission counters.
        self.tenant_histograms: Dict[str, LatencyHistogram] = {}
        self._pending_by_tenant: Dict[str, int] = {}
        # Transport hook: the daemon installs a callable returning its
        # per-client table (queue depth, drops, subscription) for ``stats``.
        self.stats_clients: Optional[
            Callable[[], List[Dict[str, object]]]
        ] = None
        # Projected state: the deployment after everything enqueued applies.
        self._keys: Dict[str, Tuple[str, Rule]] = {}
        self._invariant_names: Set[str] = set()
        self._tenant_of_projected: Dict[str, str] = {}
        self._devices_down: Set[str] = set()
        self._drained: Set[str] = set()
        self._links_down: Set[Tuple[str, str]] = set()
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> Dict[str, object]:
        """Deploy the initial FIB, run to quiescence, return the ``hello``
        frame (protocol id, deployment shape, initial statuses)."""
        if self._started:
            raise RuntimeError("session already started")
        self._started = True
        result = self.runner.burst_update(self.rules_by_device)
        self._keys = auto_key_rules(self.rules_by_device)
        self._invariant_names = {inv.name for inv in self.runner.invariants}
        registry = self.runner.slice_registry
        for name in self._invariant_names:
            tenant = registry.tenant_of(name) if registry is not None else None
            self._tenant_of_projected[name] = (
                tenant if tenant is not None else tenant_of_invariant(name)
            )
        if registry is not None:
            self.runner.consume_touched()  # deploy touches everything
        statuses = self.runner.statuses()
        self.deltas.diff(statuses)  # set the baseline clients start from
        return {
            "frame": "hello",
            "proto": PROTOCOL,
            "backend": self.runner.backend,
            "devices": len(self.runner.topology.devices),
            "rules": sum(len(r) for r in self.rules_by_device.values()),
            "invariants": sorted(self._invariant_names),
            "statuses": statuses,
            "deploy_time": result.verification_time,
        }

    def close(self) -> None:
        self.runner.close()

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def handle_line(self, line: str) -> Reply:
        """Process one request line; never raises on bad input."""
        try:
            request = decode_request(decode_line(line))
        except ProtocolError as exc:
            return Reply(frames=[self._error(None, exc.code, exc.detail)])
        return self.handle_request(request)

    def handle_request(self, request: Request) -> Reply:
        try:
            if isinstance(request, UpdateRequest):
                self._enqueue_update(request)
                return Reply(frames=[self._ack(request, "update")])
            if isinstance(request, LinkRequest):
                self._enqueue_link(request)
                return Reply(frames=[self._ack(request, "link")])
            if isinstance(request, DeviceRequest):
                self._enqueue_device(request)
                return Reply(frames=[self._ack(request, request.op)])
            if isinstance(request, InvariantRequest):
                self._enqueue_invariant(request)
                return Reply(frames=[self._ack(request, "invariant")])
            if isinstance(request, SubscribeRequest):
                subscription = self._subscription_for(request)
                frame = self._ack(request, "subscribe")
                frame["subscription"] = subscription.describe()
                return Reply(frames=[frame], subscribe=subscription)
            if isinstance(request, ControlRequest):
                return self._control(request)
        except ProtocolError as exc:
            return Reply(frames=[self._error(request.id, exc.code, exc.detail)])
        raise AssertionError(f"unhandled request {request!r}")

    # ------------------------------------------------------------------
    # Tenancy + admission
    # ------------------------------------------------------------------
    def tenant_of(self, invariant_name: str) -> Optional[str]:
        """Resolve an invariant's tenant through the slice registry when
        slicing is on, the projected membership otherwise, and finally the
        ``tenant/`` name-prefix convention."""
        registry = self.runner.slice_registry
        if registry is not None:
            tenant = registry.tenant_of(invariant_name)
            if tenant is not None:
                return tenant
        tenant = self._tenant_of_projected.get(invariant_name)
        if tenant is not None:
            return tenant
        return tenant_of_invariant(invariant_name)

    def _subscription_for(self, request: SubscribeRequest) -> Subscription:
        if request.all:
            return SUBSCRIBE_ALL
        if request.invariants is not None:
            for name in request.invariants:
                if name not in self._invariant_names:
                    raise ProtocolError(
                        "unknown-invariant", f"no invariant {name!r}"
                    )
            return Subscription("invariants", frozenset(request.invariants))
        assert request.tenants is not None
        # Tenant slices come and go with invariant churn, so any name is
        # accepted — an unknown tenant simply matches nothing yet.
        return Subscription("tenants", frozenset(request.tenants))

    def _admit(self, tenants: Iterable[str], cost: int = 1) -> None:
        """Charge ``cost`` pending events to each touched tenant, rejecting
        the request (before any projection commits) when a tenant would
        exceed its backlog limit.  No-op with the limit unset."""
        limit = self.max_pending_per_tenant
        if limit is None:
            return
        charged = sorted(set(tenants))
        counts = self._pending_by_tenant
        for tenant in charged:
            if counts.get(tenant, 0) + cost > limit:
                raise ProtocolError(
                    "tenant-backlog",
                    f"tenant {tenant!r} has {counts.get(tenant, 0)} pending "
                    f"events (limit {limit})",
                )
        for tenant in charged:
            counts[tenant] = counts.get(tenant, 0) + cost

    # ------------------------------------------------------------------
    # Per-op validation + enqueue (all against projected state)
    # ------------------------------------------------------------------
    def _enqueue_update(self, request: UpdateRequest) -> None:
        topology = self.runner.topology
        if not topology.has_device(request.device):
            raise ProtocolError(
                "unknown-device", f"no device {request.device!r}"
            )
        # A dead or drained box takes no FIB updates; the projection makes
        # this verdict independent of where epoch boundaries fall.
        if request.device in self._devices_down:
            raise ProtocolError(
                "device-down", f"device {request.device!r} is crashed"
            )
        if request.device in self._drained:
            raise ProtocolError(
                "device-drained", f"device {request.device!r} is drained"
            )
        remove_entry: Optional[Tuple[str, Rule]] = None
        if request.remove is not None:
            remove_entry = self._keys.get(request.remove)
            if remove_entry is None:
                raise ProtocolError(
                    "unknown-key", f"no live rule under key {request.remove!r}"
                )
            if remove_entry[0] != request.device:
                raise ProtocolError(
                    "key-device-mismatch",
                    f"key {request.remove!r} lives on {remove_entry[0]!r}, "
                    f"not {request.device!r}",
                )
        install_rule: Optional[Rule] = None
        if request.install is not None:
            install_rule = self._parse_install(request.device, request.install)
        if self.max_pending_per_tenant is not None:
            registry = self.runner.slice_registry
            touched: Set[str] = set()
            cost = 0
            if remove_entry is not None:
                touched |= registry.touched_by_update(
                    request.device, remove_entry[1].match
                )
                cost += 1
            if install_rule is not None:
                touched |= registry.touched_by_update(
                    request.device, install_rule.match
                )
                cost += 1
            self._admit(touched, cost)
        # Both halves validated — now commit projections and enqueue.
        if request.remove is not None and remove_entry is not None:
            del self._keys[request.remove]
            self.coalescer.remove(
                request.remove, request.device, remove_entry[1].rule_id
            )
            self.total_events += 1
        if request.install is not None and install_rule is not None:
            self._keys[request.install.key] = (request.device, install_rule)
            self.coalescer.install(
                request.install.key, request.device, install_rule
            )
            self.total_events += 1

    def _parse_install(self, device: str, spec: InstallSpec) -> Rule:
        if spec.key in self._keys:
            owner = self._keys[spec.key][0]
            raise ProtocolError(
                "duplicate-key",
                f"key {spec.key!r} is already live on {owner!r}",
            )
        try:
            match = parse_packet_space(self.runner.ctx, spec.match)
        except ReproError as exc:
            raise ProtocolError("bad-match", str(exc)) from None
        action, hops = parse_action(spec.action)
        neighbors = set(self.runner.topology.neighbors(device))
        for hop in hops:
            if hop not in neighbors:
                raise ProtocolError(
                    "bad-next-hop",
                    f"{hop!r} is not adjacent to {device!r}",
                )
        return Rule(match, action, spec.priority)

    def _enqueue_link(self, request: LinkRequest) -> None:
        topology = self.runner.topology
        if not topology.has_link(request.a, request.b):
            raise ProtocolError(
                "unknown-link",
                f"no link between {request.a!r} and {request.b!r}",
            )
        link = (min(request.a, request.b), max(request.a, request.b))
        if request.up and link not in self._links_down:
            raise ProtocolError(
                "link-not-down", f"link {link[0]}:{link[1]} is up"
            )
        if not request.up and link in self._links_down:
            raise ProtocolError(
                "link-already-down",
                f"link {link[0]}:{link[1]} is already down",
            )
        if self.max_pending_per_tenant is not None:
            self._admit(
                self.runner.slice_registry.touched_by_link(request.a, request.b)
            )
        if request.up:
            self._links_down.discard(link)
        else:
            self._links_down.add(link)
        self.coalescer.barrier("link", (request.a, request.b, request.up))
        self.total_events += 1

    def _enqueue_device(self, request: DeviceRequest) -> None:
        if self.runner.backend != "serial":
            raise ProtocolError(
                "serial-only",
                f"op {request.op!r} needs the serial backend "
                f"(got {self.runner.backend!r})",
            )
        dev = request.device
        if not self.runner.topology.has_device(dev):
            raise ProtocolError("unknown-device", f"no device {dev!r}")
        if request.op == "crash" and dev in self._devices_down:
            raise ProtocolError(
                "already-crashed", f"device {dev!r} is already down"
            )
        if request.op == "restart" and dev not in self._devices_down:
            raise ProtocolError("not-crashed", f"device {dev!r} is not down")
        if request.op == "drain" and dev in self._drained:
            raise ProtocolError(
                "already-drained", f"device {dev!r} is already drained"
            )
        if request.op == "restore" and dev not in self._drained:
            raise ProtocolError(
                "not-drained", f"device {dev!r} is not drained"
            )
        if self.max_pending_per_tenant is not None:
            registry = self.runner.slice_registry
            if request.op in ("crash", "restart"):
                self._admit(registry.touched_by_lifecycle(dev))
            else:  # drain / restore: whole-FIB rewrite on the device
                self._admit(registry.touched_by_rewrite(dev))
        if request.op == "crash":
            self._devices_down.add(dev)
        elif request.op == "restart":
            self._devices_down.discard(dev)
        elif request.op == "drain":
            self._drained.add(dev)
        else:
            self._drained.discard(dev)
        self.coalescer.barrier(request.op, (dev,))
        self.total_events += 1

    def _enqueue_invariant(self, request: InvariantRequest) -> None:
        if request.add_spec is not None:
            try:
                invariants = parse_invariants(
                    self.runner.ctx, request.add_spec
                )
            except ReproError as exc:
                raise ProtocolError("bad-spec", str(exc)) from None
            if not invariants:
                raise ProtocolError("bad-spec", "spec defines no invariants")
            for inv in invariants:
                if inv.name in self._invariant_names:
                    raise ProtocolError(
                        "duplicate-invariant",
                        f"invariant {inv.name!r} is already deployed",
                    )
            tenants = {
                inv.name: (
                    request.tenant
                    if request.tenant is not None
                    else tenant_of_invariant(inv.name)
                )
                for inv in invariants
            }
            if self.max_slices_per_tenant is not None:
                load: Dict[str, int] = {}
                for tenant in self._tenant_of_projected.values():
                    load[tenant] = load.get(tenant, 0) + 1
                incoming: Dict[str, int] = {}
                for tenant in tenants.values():
                    incoming[tenant] = incoming.get(tenant, 0) + 1
                for tenant in sorted(incoming):
                    if (
                        load.get(tenant, 0) + incoming[tenant]
                        > self.max_slices_per_tenant
                    ):
                        raise ProtocolError(
                            "tenant-quota",
                            f"tenant {tenant!r} holds {load.get(tenant, 0)} "
                            f"invariants "
                            f"(limit {self.max_slices_per_tenant})",
                        )
            self._admit(set(tenants.values()))
            self._invariant_names.update(tenants)
            self._tenant_of_projected.update(tenants)
            self.coalescer.barrier(
                "invariant-add", (tuple(invariants), request.tenant)
            )
        else:
            name = request.remove
            if name not in self._invariant_names:
                raise ProtocolError(
                    "unknown-invariant", f"no invariant {name!r}"
                )
            tenant = self.tenant_of(name)
            self._admit([tenant] if tenant is not None else [])
            self._invariant_names.discard(name)
            self._tenant_of_projected.pop(name, None)
            self.coalescer.barrier("invariant-remove", (name,))
        self.total_events += 1

    # ------------------------------------------------------------------
    # Control ops
    # ------------------------------------------------------------------
    def _control(self, request: ControlRequest) -> Reply:
        if request.op == "flush":
            return Reply(frames=[self._ack(request, "flush")], flush=True)
        if request.op == "status":
            return Reply(frames=[self.status_frame()])
        if request.op == "stats":
            return Reply(frames=[self.stats_frame()])
        # shutdown: the loop drains pending work, then says goodbye.
        return Reply(
            frames=[self._ack(request, "shutdown")], flush=True, shutdown=True
        )

    def status_frame(self) -> Dict[str, object]:
        return {
            "frame": "status",
            "epoch": self.epoch,
            "statuses": self.runner.statuses(),
            "pending": self.coalescer.events,
            "converged": not self.coalescer.pending,
        }

    def stats_frame(self) -> Dict[str, object]:
        frame: Dict[str, object] = {
            "frame": "stats",
            "backend": self.runner.backend,
            "epochs": self.epoch,
            "events": self.total_events,
            "ops": self.total_ops,
            "latency": self.histogram.summary(),
        }
        pool_stats = getattr(self.runner.network, "pool_stats", None)
        if pool_stats is not None:
            frame["pool"] = pool_stats()
        if self.tenant_histograms:
            frame["tenants"] = {
                tenant: hist.summary()
                for tenant, hist in sorted(self.tenant_histograms.items())
            }
        if (
            self.max_pending_per_tenant is not None
            or self.max_slices_per_tenant is not None
        ):
            frame["admission"] = {
                "max_pending_per_tenant": self.max_pending_per_tenant,
                "max_slices_per_tenant": self.max_slices_per_tenant,
                "pending": {
                    tenant: count
                    for tenant, count in sorted(self._pending_by_tenant.items())
                    if count
                },
            }
        if self.stats_clients is not None:
            frame["clients"] = self.stats_clients()
        return frame

    # ------------------------------------------------------------------
    # Epochs
    # ------------------------------------------------------------------
    @property
    def pending(self) -> bool:
        return self.coalescer.pending

    def run_epoch(self, reason: str) -> List[Dict[str, object]]:
        """Drain the coalescer and re-verify; return the frames to emit
        (any apply-time errors, then the ``delta``).  No-op → no frames."""
        if not self.coalescer.pending:
            return []
        segments, events = self.coalescer.drain()
        self._pending_by_tenant = {}
        self.epoch += 1
        epoch = self.epoch
        tracer = self.runner.tracer
        t0 = tracer.ipc_clock() if tracer is not None else 0.0
        wall_start = time.perf_counter()
        frames: List[Dict[str, object]] = []
        settle = 0.0
        ops = 0
        for segment in segments:
            try:
                settle += self._apply_segment(segment)
            except ReproError as exc:
                # Projection and deployment disagreed (should not happen;
                # surfaced rather than killing the daemon).
                frames.append(
                    self._error(None, "apply-failed", str(exc), epoch=epoch)
                )
                continue
            if isinstance(segment, FibBatch):
                ops += len(segment.ops)
            else:
                ops += 1
        latency = time.perf_counter() - wall_start
        self.histogram.record(latency)
        self.total_ops += ops
        # Sliced deployments report which tenant slices this epoch touched
        # (and record the epoch's latency against each of them); unsliced
        # deployments keep the PR 9 frame shape exactly.
        touched: Optional[List[str]] = None
        if self.runner.slice_registry is not None:
            touched = sorted(self.runner.consume_touched())
            for tenant in touched:
                hist = self.tenant_histograms.get(tenant)
                if hist is None:
                    hist = self.tenant_histograms[tenant] = LatencyHistogram()
                hist.record(latency)
        if tracer is not None:
            t1 = tracer.ipc_clock()
            tracer.epoch_span(
                epoch, reason, t0, t1, events=events, ops=ops, settle=settle
            )
            for tenant in touched or ():
                tracer.slice_span(epoch, tenant, t0, t1, events=events)
        changed = self.deltas.diff(self.runner.statuses())
        delta: Dict[str, object] = {
            "frame": "delta",
            "epoch": epoch,
            "reason": reason,
            "events": events,
            "ops": ops,
            "settle": settle,
            "changed": changed,
            "converged": True,
        }
        if touched is not None:
            delta["touched"] = touched
        frames.append(delta)
        return frames

    def _apply_segment(self, segment) -> float:
        runner = self.runner
        if isinstance(segment, FibBatch):
            return runner.apply_updates(segment.ops)
        assert isinstance(segment, Barrier)
        kind, payload = segment.kind, segment.payload
        if kind == "link":
            a, b, up = payload
            if up:
                return runner.recover_links([(a, b)])
            return runner.fail_links([(a, b)])
        if kind == "crash":
            return runner.crash_device(payload[0])
        if kind == "restart":
            return runner.restart_device(payload[0])
        if kind == "drain":
            return runner.drain_device(payload[0])
        if kind == "restore":
            return runner.restore_drained(payload[0])
        if kind == "invariant-add":
            invariants, tenant = payload
            tenant_map = (
                {inv.name: tenant for inv in invariants}
                if tenant is not None
                else None
            )
            return runner.add_invariants(list(invariants), tenants=tenant_map)
        if kind == "invariant-remove":
            return runner.remove_invariants(list(payload))
        raise AssertionError(f"unknown barrier kind {kind!r}")

    def shutdown_frames(self, reason: str = "shutdown") -> List[Dict[str, object]]:
        """Graceful stop: drain whatever is still pending, then ``bye``."""
        frames = self.run_epoch(reason)
        frames.append({"frame": "bye", "epochs": self.epoch})
        return frames

    # ------------------------------------------------------------------
    # Frame helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _ack(request: Request, op: str) -> Dict[str, object]:
        frame: Dict[str, object] = {"frame": "ack", "op": op}
        if request.id is not None:
            frame["id"] = request.id
        return frame

    @staticmethod
    def _error(
        request_id: Optional[str], code: str, detail: str, **fields: object
    ) -> Dict[str, object]:
        frame: Dict[str, object] = {
            "frame": "error", "code": code, "detail": detail, **fields,
        }
        if request_id is not None:
            frame["id"] = request_id
        return frame
