"""Always-on serving mode: stream updates into a live verification session.

The ``repro serve`` command keeps a deployment resident and re-verifies
incrementally as FIB updates, link/device events and invariant changes
stream in over the ``tulkun-serve-v1`` newline-JSON protocol — no
per-change redeploy, warm BDD engines throughout, verdict *deltas* out.

Layering (transport-agnostic core, two front ends):

* :mod:`repro.serve.protocol` — frame codec + request validation;
* :mod:`repro.serve.coalesce` — burst squashing between epochs;
* :mod:`repro.serve.deltas` — verdict-change tracking;
* :mod:`repro.serve.subscribe` — per-client delta subscriptions (tenant /
  invariant fan-out filters);
* :mod:`repro.serve.session` — the protocol→runner bridge (one epoch =
  drain + apply + delta);
* :mod:`repro.serve.daemon` — the TCP selector loop and the deterministic
  stdio loop;
* :mod:`repro.serve.client` — a scripted client (CI smoke, examples).
"""

from repro.serve.coalesce import Barrier, Coalescer, FibBatch
from repro.serve.daemon import ServeDaemon, serve_stdio
from repro.serve.deltas import DeltaEmitter
from repro.serve.protocol import (
    PROTOCOL,
    ProtocolError,
    decode_line,
    decode_request,
    encode_frame,
    parse_action,
)
from repro.serve.session import Reply, StreamSession, auto_key_rules
from repro.serve.subscribe import SUBSCRIBE_ALL, Subscription, filter_delta

__all__ = [
    "Barrier",
    "Coalescer",
    "DeltaEmitter",
    "FibBatch",
    "PROTOCOL",
    "ProtocolError",
    "Reply",
    "SUBSCRIBE_ALL",
    "ServeDaemon",
    "StreamSession",
    "Subscription",
    "auto_key_rules",
    "decode_line",
    "decode_request",
    "encode_frame",
    "filter_delta",
    "parse_action",
    "serve_stdio",
]
