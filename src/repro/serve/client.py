"""A scripted client for the serving daemon (CI smoke + examples).

Connects to a running :class:`ServeDaemon`, streams a newline-JSON request
script, and collects every response frame until the daemon says ``bye``.
A ``shutdown`` request is appended when the script does not end the
session itself, so a plain script always terminates.

This is intentionally a dumb pipe with bookkeeping — all protocol
intelligence lives server-side — but it tallies what CI needs to assert:
the frames by type, whether any ``delta`` arrived, and the last known
statuses (hello baseline + every delta applied in order).
"""

from __future__ import annotations

import json
import socket
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.serve.protocol import ProtocolError, decode_line

__all__ = ["ClientReport", "run_script"]


@dataclass
class ClientReport:
    """Everything a scripted session produced, ready for assertions."""

    frames: List[Dict[str, object]] = field(default_factory=list)
    statuses: Dict[str, str] = field(default_factory=dict)

    def by_type(self, frame_type: str) -> List[Dict[str, object]]:
        return [f for f in self.frames if f.get("frame") == frame_type]

    @property
    def deltas(self) -> List[Dict[str, object]]:
        return self.by_type("delta")

    @property
    def errors(self) -> List[Dict[str, object]]:
        return self.by_type("error")

    def apply_statuses(self) -> None:
        """Fold hello + deltas into the final per-invariant statuses."""
        for frame in self.frames:
            if frame.get("frame") == "hello":
                self.statuses = dict(frame.get("statuses", {}))
            elif frame.get("frame") == "delta":
                for name, change in dict(frame.get("changed", {})).items():
                    if change.get("to") is None:
                        self.statuses.pop(name, None)
                    else:
                        self.statuses[name] = change["to"]


def _script_has_shutdown(lines: List[str]) -> bool:
    for line in lines:
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        try:
            if decode_line(stripped).get("op") == "shutdown":
                return True
        except ProtocolError:
            continue  # malformed lines are the daemon's problem to report
    return False


def run_script(
    host: str,
    port: int,
    script: Iterable[str],
    timeout: float = 60.0,
    ensure_shutdown: bool = True,
) -> ClientReport:
    """Stream ``script`` lines to the daemon; return every frame received.

    Reads until the ``bye`` frame (or the socket closes), so the caller
    sees all broadcast deltas, including the shutdown drain.
    """
    lines = [line.rstrip("\n") for line in script]
    if ensure_shutdown and not _script_has_shutdown(lines):
        lines.append(json.dumps({"op": "shutdown"}))
    report = ClientReport()
    with socket.create_connection((host, port), timeout=timeout) as sock:
        stream = sock.makefile("rw", encoding="utf-8", newline="\n")
        for line in lines:
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            stream.write(stripped + "\n")
        stream.flush()
        for raw in stream:
            frame = json.loads(raw)
            report.frames.append(frame)
            if frame.get("frame") == "bye":
                break
    report.apply_statuses()
    return report


def format_report(report: ClientReport, verbose: bool = False) -> str:
    """Human summary for the CLI client (``--verbose`` dumps every frame)."""
    counts: Dict[str, int] = {}
    for frame in report.frames:
        kind = str(frame.get("frame", "?"))
        counts[kind] = counts.get(kind, 0) + 1
    lines = [
        "frames: "
        + ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    ]
    for name, status in sorted(report.statuses.items()):
        lines.append(f"  {name}: {status}")
    if verbose:
        lines.extend(
            json.dumps(frame, sort_keys=True) for frame in report.frames
        )
    return "\n".join(lines)
