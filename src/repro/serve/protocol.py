"""The ``tulkun-serve-v1`` line protocol: frames, codec, request parsing.

The always-on daemon (:mod:`repro.serve.daemon`) speaks newline-delimited
JSON in both directions.  Every *request* is one JSON object per line with
an ``"op"`` field; every *response* is one JSON object per line with a
``"frame"`` field.  The full specification lives in ``docs/PROTOCOL.md``
("The tulkun-serve-v1 line protocol"); this module is the reference codec.

Parsing here is purely structural — field presence, types, value grammar.
Anything needing deployment state (does the device exist? is the rule key
live?) is validated by the session, which replies with a structured
``error`` frame instead of dying.  That split keeps the malformed-input
surface small and testable: :func:`decode_line` + :func:`decode_request`
either return a typed request or raise :class:`ProtocolError`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.dataplane.action import Action

__all__ = [
    "PROTOCOL",
    "ProtocolError",
    "Request",
    "UpdateRequest",
    "InstallSpec",
    "LinkRequest",
    "DeviceRequest",
    "InvariantRequest",
    "ControlRequest",
    "SubscribeRequest",
    "decode_line",
    "decode_request",
    "encode_frame",
    "parse_action",
]

PROTOCOL = "tulkun-serve-v1"

# Ops a DeviceRequest may carry (single-device lifecycle verbs).
_DEVICE_OPS = ("crash", "restart", "drain", "restore")
# Ops a ControlRequest may carry (no payload beyond the op itself).
_CONTROL_OPS = ("flush", "status", "stats", "shutdown")


class ProtocolError(ValueError):
    """A line the daemon rejects (reply: ``error`` frame, never a crash)."""

    def __init__(self, code: str, detail: str) -> None:
        super().__init__(f"{code}: {detail}")
        self.code = code
        self.detail = detail


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Request:
    """Base: every request may carry a client correlation ``id`` echoed in
    the matching ``ack``/``error`` frame."""

    id: Optional[str]


@dataclass(frozen=True)
class InstallSpec:
    """A rule to install, in wire form (match/action still text)."""

    key: str
    match: str
    action: str
    priority: int


@dataclass(frozen=True)
class UpdateRequest(Request):
    device: str
    install: Optional[InstallSpec]
    remove: Optional[str]


@dataclass(frozen=True)
class LinkRequest(Request):
    a: str
    b: str
    up: bool


@dataclass(frozen=True)
class DeviceRequest(Request):
    op: str  # crash | restart | drain | restore
    device: str


@dataclass(frozen=True)
class InvariantRequest(Request):
    add_spec: Optional[str]   # invariant-language source text
    remove: Optional[str]     # invariant name
    tenant: Optional[str] = None  # explicit tenant slice (add only)


@dataclass(frozen=True)
class ControlRequest(Request):
    op: str  # flush | status | stats | shutdown


@dataclass(frozen=True)
class SubscribeRequest(Request):
    """Narrow (or reset) this client's share of the delta broadcast.

    Exactly one of the three selectors is set: ``tenants`` (tenant slice
    names), ``invariants`` (invariant names), or ``all=True`` (reset to
    the default full broadcast)."""

    tenants: Optional[Tuple[str, ...]]
    invariants: Optional[Tuple[str, ...]]
    all: bool


# ----------------------------------------------------------------------
# Codec
# ----------------------------------------------------------------------
def encode_frame(obj: Dict[str, object]) -> str:
    """One response frame as a wire line (compact, key-sorted, ``\\n``)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n"


def decode_line(line: str) -> Dict[str, object]:
    """Parse one request line into a JSON object, or raise ProtocolError."""
    text = line.strip()
    if not text:
        raise ProtocolError("empty-line", "blank request line")
    try:
        obj = json.loads(text)
    except ValueError as exc:
        raise ProtocolError("bad-json", str(exc)) from None
    if not isinstance(obj, dict):
        raise ProtocolError(
            "bad-request", f"expected a JSON object, got {type(obj).__name__}"
        )
    return obj


def _string(obj: Dict[str, object], field: str, *, op: str) -> str:
    value = obj.get(field)
    if not isinstance(value, str) or not value:
        raise ProtocolError(
            "bad-request", f"op {op!r} needs a non-empty string {field!r}"
        )
    return value


def _request_id(obj: Dict[str, object]) -> Optional[str]:
    value = obj.get("id")
    if value is None:
        return None
    if isinstance(value, (str, int)):
        return str(value)
    raise ProtocolError("bad-request", "'id' must be a string or integer")


def decode_request(obj: Dict[str, object]) -> Request:
    """Validate a decoded line into a typed request (structure only)."""
    op = obj.get("op")
    if not isinstance(op, str):
        raise ProtocolError("bad-request", "missing 'op' field")
    rid = _request_id(obj)

    if op == "update":
        device = _string(obj, "device", op=op)
        install_obj = obj.get("install")
        install: Optional[InstallSpec] = None
        if install_obj is not None:
            if not isinstance(install_obj, dict):
                raise ProtocolError(
                    "bad-request", "'install' must be an object"
                )
            priority = install_obj.get("priority", 0)
            if not isinstance(priority, int) or isinstance(priority, bool):
                raise ProtocolError(
                    "bad-request", "'install.priority' must be an integer"
                )
            install = InstallSpec(
                key=_string(install_obj, "key", op=op),
                match=_string(install_obj, "match", op=op),
                action=_string(install_obj, "action", op=op),
                priority=priority,
            )
        remove = obj.get("remove")
        if remove is not None and not isinstance(remove, str):
            raise ProtocolError("bad-request", "'remove' must be a rule key")
        if install is None and remove is None:
            raise ProtocolError(
                "bad-request", "op 'update' needs 'install' and/or 'remove'"
            )
        return UpdateRequest(
            id=rid, device=device, install=install, remove=remove
        )

    if op == "link":
        up = obj.get("up")
        if not isinstance(up, bool):
            raise ProtocolError("bad-request", "op 'link' needs boolean 'up'")
        return LinkRequest(
            id=rid, a=_string(obj, "a", op=op), b=_string(obj, "b", op=op),
            up=up,
        )

    if op in _DEVICE_OPS:
        return DeviceRequest(id=rid, op=op, device=_string(obj, "device", op=op))

    if op == "invariant":
        add_spec = obj.get("add")
        remove = obj.get("remove")
        tenant = obj.get("tenant")
        if add_spec is not None and not isinstance(add_spec, str):
            raise ProtocolError("bad-request", "'add' must be spec text")
        if remove is not None and not isinstance(remove, str):
            raise ProtocolError("bad-request", "'remove' must be a name")
        if (add_spec is None) == (remove is None):
            raise ProtocolError(
                "bad-request",
                "op 'invariant' needs exactly one of 'add' or 'remove'",
            )
        if tenant is not None:
            if not isinstance(tenant, str) or not tenant:
                raise ProtocolError(
                    "bad-request", "'tenant' must be a non-empty string"
                )
            if add_spec is None:
                raise ProtocolError(
                    "bad-request", "'tenant' only applies to 'add'"
                )
        return InvariantRequest(
            id=rid, add_spec=add_spec, remove=remove, tenant=tenant
        )

    if op == "subscribe":
        return _decode_subscribe(obj, rid)

    if op in _CONTROL_OPS:
        return ControlRequest(id=rid, op=op)

    raise ProtocolError("unknown-op", f"unknown op {op!r}")


def _name_list(
    obj: Dict[str, object], field: str
) -> Optional[Tuple[str, ...]]:
    value = obj.get(field)
    if value is None:
        return None
    if (
        not isinstance(value, list)
        or not value
        or not all(isinstance(n, str) and n for n in value)
    ):
        raise ProtocolError(
            "bad-request",
            f"'{field}' must be a non-empty list of non-empty strings",
        )
    return tuple(value)


def _decode_subscribe(obj: Dict[str, object], rid: Optional[str]) -> Request:
    tenants = _name_list(obj, "tenants")
    invariants = _name_list(obj, "invariants")
    all_flag = obj.get("all", False)
    if not isinstance(all_flag, bool):
        raise ProtocolError("bad-request", "'all' must be a boolean")
    selectors = sum(
        (tenants is not None, invariants is not None, bool(all_flag))
    )
    if selectors != 1:
        raise ProtocolError(
            "bad-request",
            "op 'subscribe' needs exactly one of "
            "'tenants', 'invariants' or 'all'",
        )
    return SubscribeRequest(
        id=rid, tenants=tenants, invariants=invariants, all=bool(all_flag)
    )


# ----------------------------------------------------------------------
# Action grammar
# ----------------------------------------------------------------------
def parse_action(text: str) -> Tuple[Action, Tuple[str, ...]]:
    """Parse the wire action grammar into an :class:`Action`.

    Grammar: ``drop`` | ``deliver`` | ``all D1,D2,...`` | ``any D1,D2,...``.
    Returns the action plus its next-hop tuple so the session can check
    adjacency against the topology.
    """
    stripped = text.strip()
    if stripped == "drop":
        return Action.drop(), ()
    if stripped == "deliver":
        return Action.deliver(), ()
    head, _, rest = stripped.partition(" ")
    hops = tuple(h.strip() for h in rest.split(",") if h.strip())
    if head in ("all", "any") and hops:
        if head == "all":
            return Action.forward_all(hops), hops
        return Action.forward_any(hops), hops
    raise ProtocolError(
        "bad-action",
        f"action must be 'drop', 'deliver', 'all D,..' or 'any D,..', "
        f"got {text!r}",
    )
