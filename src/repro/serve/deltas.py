"""Verdict-delta tracking for the streaming daemon.

After every epoch the session reads the per-invariant statuses
(``HOLDS`` / ``VIOLATED`` / ``UNKNOWN(...)``) off the runner and asks the
:class:`DeltaEmitter` what changed since the last epoch.  Only changes ride
the ``delta`` frame — a quiet epoch (the common case under churn that
re-proves the same verdicts) reports an empty ``changed`` map, so clients
can cheaply watch for flips instead of re-diffing full status dumps.

An invariant added mid-stream appears with ``"from": null``; one removed
mid-stream appears with ``"to": null``.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

__all__ = ["DeltaEmitter"]


class DeltaEmitter:
    """Remembers the last emitted statuses and diffs new ones against them."""

    def __init__(self) -> None:
        self._last: Dict[str, str] = {}

    @property
    def statuses(self) -> Dict[str, str]:
        """The statuses as of the last diff (what clients currently know)."""
        return dict(self._last)

    def diff(
        self, statuses: Mapping[str, str]
    ) -> Dict[str, Dict[str, Optional[str]]]:
        """Return ``{invariant: {"from": old|None, "to": new|None}}`` for
        every status that changed, and make ``statuses`` the new baseline."""
        changed: Dict[str, Dict[str, Optional[str]]] = {}
        for name, status in statuses.items():
            old = self._last.get(name)
            if old != status:
                changed[name] = {"from": old, "to": status}
        for name, old in self._last.items():
            if name not in statuses:
                changed[name] = {"from": old, "to": None}
        self._last = dict(statuses)
        return changed
