"""Burst coalescing for the always-on daemon.

Between re-verification epochs the daemon buffers incoming events here.
FIB updates accumulate into an open :class:`FibBatch` and are *squashed*
per rule key:

* install ``k`` then remove ``k`` in the same window → both cancel (the
  rule never existed as far as the verifiers are concerned);
* remove ``k`` then (re)install ``k`` → a single replace op;
* an update carrying both a remove and an install stays one replace when
  both touch the same device, else it splits into its two halves.

Everything that is *not* a FIB update — link flaps, device crash/restart,
maintenance drain/restore, invariant add/remove — is a **barrier**: it
closes the open batch and is applied in arrival order at the next epoch.
Squashing therefore never commutes an update past a topology or task-set
change, which is what makes ``apply(coalesce(burst))`` equivalent to
``apply(sequential(burst))`` at quiescence: within one batch the update
fixpoint is path-independent (the commutativity results pinned by
``tests/test_protocol_orderings.py``), and across barriers order is
preserved exactly.

The coalescer is deliberately ignorant of the wire protocol and of
deployment state — the session validates requests against its *projected*
key map before enqueueing, so an error surfaces on the same request no
matter how the stream is chunked into epochs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.dataplane.rule import Rule

__all__ = ["Barrier", "Coalescer", "FibBatch"]


class _Entry:
    """Squashed per-key state inside the open batch."""

    __slots__ = ("remove_dev", "remove_id", "install_dev", "install_rule")

    def __init__(self) -> None:
        self.remove_dev: Optional[str] = None
        self.remove_id: Optional[int] = None
        self.install_dev: Optional[str] = None
        self.install_rule: Optional[Rule] = None


@dataclass
class FibBatch:
    """One squashed batch of rule updates, applied as a single epoch burst.

    ``ops`` is in first-touch key order, each op in the
    ``(device, rule_to_install, rule_id_to_remove)`` shape
    :meth:`TulkunRunner.apply_updates` consumes.
    """

    ops: List[Tuple[str, Optional[Rule], Optional[int]]] = field(
        default_factory=list
    )


@dataclass
class Barrier:
    """A non-coalescable event: applied alone, in arrival order.

    ``kind`` is one of ``link``, ``crash``, ``restart``, ``drain``,
    ``restore``, ``invariant-add``, ``invariant-remove``; ``payload`` is the
    kind-specific tuple the session packed (already validated/parsed).
    """

    kind: str
    payload: tuple


Segment = Union[FibBatch, Barrier]


class Coalescer:
    """Accumulates events between epochs; drained atomically by the session."""

    def __init__(self) -> None:
        self._open: Dict[str, _Entry] = {}   # key -> entry, insertion-ordered
        self._order: List[str] = []
        self._events = 0
        # Interleaved segment log: indices into a conceptual sequence where
        # an open batch closes whenever a barrier arrives.
        self._closed: List[Segment] = []

    # ------------------------------------------------------------------
    @property
    def pending(self) -> bool:
        return bool(self._closed or self._open)

    @property
    def events(self) -> int:
        """Requests enqueued since the last drain (pre-squash)."""
        return self._events

    # ------------------------------------------------------------------
    def install(self, key: str, device: str, rule: Rule) -> None:
        """Enqueue an install under ``key`` (projected-absent, says session)."""
        entry = self._open.get(key)
        if entry is None:
            entry = _Entry()
            self._open[key] = entry
            self._order.append(key)
        # A live entry here can only be a pure remove (the session rejects
        # duplicate keys): remove-then-install squashes to a replace.
        entry.install_dev = device
        entry.install_rule = rule
        self._events += 1

    def remove(self, key: str, device: str, rule_id: int) -> None:
        """Enqueue a removal of ``key`` (projected-live, says session)."""
        entry = self._open.get(key)
        if entry is not None and entry.install_rule is not None:
            # The install is still pending in this window: cancel it.  If
            # the entry was a replace, its original removal survives.
            entry.install_dev = None
            entry.install_rule = None
            if entry.remove_id is None:
                del self._open[key]
                self._order.remove(key)
            self._events += 1
            return
        if entry is None:
            entry = _Entry()
            self._open[key] = entry
            self._order.append(key)
        entry.remove_dev = device
        entry.remove_id = rule_id
        self._events += 1

    def barrier(self, kind: str, payload: tuple) -> None:
        """Close the open batch and append a non-coalescable event."""
        self._close_open()
        self._closed.append(Barrier(kind, payload))
        self._events += 1

    # ------------------------------------------------------------------
    def _close_open(self) -> None:
        if not self._open:
            return
        batch = FibBatch()
        for key in self._order:
            entry = self._open[key]
            if (
                entry.remove_id is not None
                and entry.install_rule is not None
                and entry.remove_dev == entry.install_dev
            ):
                batch.ops.append(
                    (entry.install_dev, entry.install_rule, entry.remove_id)
                )
                continue
            if entry.remove_id is not None:
                batch.ops.append((entry.remove_dev, None, entry.remove_id))
            if entry.install_rule is not None:
                batch.ops.append((entry.install_dev, entry.install_rule, None))
        self._open = {}
        self._order = []
        if batch.ops:
            self._closed.append(batch)

    def drain(self) -> Tuple[List[Segment], int]:
        """Atomically take everything pending: ``(segments, event_count)``.

        The coalescer is empty afterwards, so events arriving while the
        drained segments are being applied land in the *next* epoch.
        """
        self._close_open()
        segments, events = self._closed, self._events
        self._closed = []
        self._events = 0
        return segments, events
