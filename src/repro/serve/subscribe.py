"""Per-client delta subscriptions: selective verdict fan-out.

By default every connected client receives every ``delta`` frame.  A
``subscribe`` request narrows that: a client subscribed to tenant ``A``
never receives tenant ``B``'s verdict deltas — ``changed`` is filtered to
the subscribed invariants, the ``touched`` tenant list (present when the
deployment runs with slicing) is filtered to the subscribed tenants, and a
delta frame with nothing left for this client is suppressed entirely.

Tenancy is resolved through the deployment's slice registry when slicing is
enabled, and through the ``tenant/name`` prefix convention otherwise — so
tenant subscriptions work on unsliced deployments too (they are a pure
fan-out feature; slicing only adds the ``touched`` metadata).

``ack``/``error``/``status``/``stats``/``hello``/``bye`` frames are never
filtered: they answer the requester, not the broadcast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Optional

from repro.slicing import tenant_of_invariant

__all__ = ["Subscription", "SUBSCRIBE_ALL", "filter_delta"]


@dataclass(frozen=True)
class Subscription:
    """What one client wants from the broadcast stream.

    ``mode`` is ``"all"`` (the default for every new client), ``"tenants"``
    (``names`` holds tenant slice names) or ``"invariants"`` (``names``
    holds invariant names)."""

    mode: str
    names: FrozenSet[str] = frozenset()

    def wants_invariant(self, invariant: str, tenant: Optional[str]) -> bool:
        if self.mode == "all":
            return True
        if self.mode == "invariants":
            return invariant in self.names
        if tenant is None:
            tenant = tenant_of_invariant(invariant)
        return tenant in self.names

    def wants_tenant(self, tenant: str) -> bool:
        if self.mode == "all":
            return True
        if self.mode == "tenants":
            return tenant in self.names
        # Invariant-mode subscribers see a tenant's touch only if one of
        # their invariants belongs to it (resolved per-invariant upstream);
        # conservatively keep the tenant if any subscribed name maps to it.
        return any(tenant_of_invariant(name) == tenant for name in self.names)

    def describe(self) -> Dict[str, object]:
        """Wire summary for the ``ack`` frame and the stats clients table."""
        if self.mode == "all":
            return {"mode": "all"}
        return {"mode": self.mode, "names": sorted(self.names)}


SUBSCRIBE_ALL = Subscription("all")


def filter_delta(
    frame: Dict[str, object],
    subscription: Subscription,
    tenant_of: Callable[[str], Optional[str]],
) -> Optional[Dict[str, object]]:
    """Project one broadcast frame through a client's subscription.

    Non-delta frames pass unchanged.  Delta frames get ``changed`` (and
    ``touched``, when present) filtered; a delta with no relevant change
    and no relevant touch returns ``None`` — the client never sees it.
    """
    if frame.get("frame") != "delta" or subscription.mode == "all":
        return frame
    changed = frame.get("changed")
    filtered_changed = {
        name: delta
        for name, delta in (changed or {}).items()  # type: ignore[union-attr]
        if subscription.wants_invariant(name, tenant_of(name))
    }
    out = dict(frame)
    out["changed"] = filtered_changed
    touched = frame.get("touched")
    filtered_touched = None
    if touched is not None:
        filtered_touched = [
            tenant
            for tenant in touched  # type: ignore[union-attr]
            if subscription.wants_tenant(tenant)
        ]
        out["touched"] = filtered_touched
    if not filtered_changed and not filtered_touched:
        return None
    return out
