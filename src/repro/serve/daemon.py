"""The always-on daemon: a selector loop feeding one :class:`StreamSession`.

Two transports share the session logic:

* :class:`ServeDaemon` — a non-blocking TCP server (``selectors``-based,
  single-threaded, no asyncio dependency).  Any number of clients connect
  and stream requests; ``ack``/``error`` frames go to the requester,
  ``delta`` frames are broadcast to every connected client.  Epochs fire
  when the **coalesce window** (wall-clock, armed by the first buffered
  event) expires, when the **coalesce limit** (buffered event count) is
  hit, or immediately on a client ``flush``.
* :func:`serve_stdio` — a deterministic line-at-a-time loop over file
  objects (stdin/stdout by default).  There is no wall-clock window here —
  epochs fire only on ``flush``, the coalesce limit, ``shutdown`` or EOF —
  so scripted sessions replay identically, which the protocol tests and
  the CI smoke job rely on.

Robustness contract (pinned by ``tests/test_serve_protocol.py``): a
malformed line produces an ``error`` frame, never a dead daemon; a client
disconnecting mid-epoch is dropped on the next write, never unravels the
loop; ``shutdown`` drains in-flight work before the ``bye``.

Backpressure: outbound frames go through a bounded per-client queue and are
written opportunistically (plus on ``EVENT_WRITE`` readiness) — a slow
reader can never stall the verification loop.  When a client's queue is
full the frame is *dropped and flagged*: the client's ``dropped`` counter
(visible in the ``stats`` frame's per-client table) records how many frames
it missed.  Per-client ``subscribe`` filters are applied at broadcast time,
so a client subscribed to tenant ``A`` never receives tenant ``B``'s
deltas.
"""

from __future__ import annotations

import selectors
import socket
import time
from collections import deque
from typing import Deque, Dict, List, Optional, TextIO, Tuple

from repro.serve.protocol import encode_frame
from repro.serve.session import StreamSession
from repro.serve.subscribe import SUBSCRIBE_ALL, Subscription, filter_delta

__all__ = ["ServeDaemon", "serve_stdio"]

DEFAULT_COALESCE_WINDOW = 0.05   # seconds of quiet before an epoch fires
DEFAULT_COALESCE_LIMIT = 64      # buffered events that force an epoch
DEFAULT_QUEUE_LIMIT = 256        # outbound frames buffered per client


class _Client:
    """One connected peer: socket, receive buffer, bounded send queue and
    the broadcast subscription this client asked for."""

    def __init__(self, sock: socket.socket, client_id: int) -> None:
        self.sock = sock
        self.id = client_id
        self.buffer = b""
        self.outq: Deque[bytes] = deque()
        self.dropped = 0
        self.subscription: Subscription = SUBSCRIBE_ALL

    def describe(self) -> Dict[str, object]:
        return {
            "id": self.id,
            "queued": len(self.outq),
            "dropped": self.dropped,
            "subscription": self.subscription.describe(),
        }


class ServeDaemon:
    """Single-threaded TCP front end for a :class:`StreamSession`."""

    def __init__(
        self,
        session: StreamSession,
        host: str = "127.0.0.1",
        port: int = 0,
        coalesce_window: float = DEFAULT_COALESCE_WINDOW,
        coalesce_limit: int = DEFAULT_COALESCE_LIMIT,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
    ) -> None:
        self.session = session
        self.host = host
        self.port = port
        self.coalesce_window = max(0.0, coalesce_window)
        self.coalesce_limit = max(1, coalesce_limit)
        self.queue_limit = max(1, queue_limit)
        self.address: Optional[Tuple[str, int]] = None
        self._selector = selectors.DefaultSelector()
        self._listener: Optional[socket.socket] = None
        self._clients: Dict[socket.socket, _Client] = {}
        self._next_client_id = 1
        self._hello_line: Optional[str] = None
        self._deadline: Optional[float] = None
        self._shutdown = False
        # The session's stats frame pulls the per-client table from here.
        session.stats_clients = self._client_stats

    # ------------------------------------------------------------------
    def bind(self) -> Tuple[str, int]:
        """Bind and listen (port 0 picks a free port); returns the address."""
        if self._listener is not None:
            return self.address  # type: ignore[return-value]
        listener = socket.create_server((self.host, self.port))
        listener.setblocking(False)
        self._selector.register(listener, selectors.EVENT_READ, "listen")
        self._listener = listener
        self.address = listener.getsockname()[:2]
        return self.address

    def serve_forever(self) -> None:
        """Deploy, then run the accept/ingest/epoch loop until ``shutdown``."""
        self.bind()
        if self._hello_line is None:
            self._hello_line = encode_frame(self.session.start())
        try:
            while not self._shutdown:
                timeout = self._select_timeout()
                events = self._selector.select(timeout)
                for key, mask in events:
                    if key.data == "listen":
                        self._accept()
                    else:
                        self._service(key.fileobj, mask)  # type: ignore[arg-type]
                    if self._shutdown:
                        break
                self._maybe_run_epoch()
            self._finalize()
        finally:
            self._close_all()

    # ------------------------------------------------------------------
    def _select_timeout(self) -> Optional[float]:
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - time.monotonic())

    def _accept(self) -> None:
        assert self._listener is not None
        try:
            sock, _addr = self._listener.accept()
        except OSError:
            return
        sock.setblocking(False)
        client = _Client(sock, self._next_client_id)
        self._next_client_id += 1
        self._clients[sock] = client
        self._selector.register(sock, selectors.EVENT_READ, "client")
        if self._hello_line is not None:
            self._enqueue(client, self._hello_line)

    def _service(self, sock: socket.socket, mask: int) -> None:
        client = self._clients.get(sock)
        if client is None:
            return
        if mask & selectors.EVENT_WRITE:
            self._flush(client)
            if client.sock not in self._clients:
                return
        if not mask & selectors.EVENT_READ:
            return
        try:
            data = sock.recv(65536)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._drop(client)
            return
        if not data:
            self._drop(client)
            return
        client.buffer += data
        while b"\n" in client.buffer:
            raw, client.buffer = client.buffer.split(b"\n", 1)
            line = raw.decode("utf-8", errors="replace")
            if not line.strip():
                continue
            reply = self.session.handle_line(line)
            for frame in reply.frames:
                self._enqueue(client, encode_frame(frame))
            if reply.subscribe is not None:
                client.subscription = reply.subscribe
            if reply.shutdown:
                # The finalize path drains pending work and says goodbye.
                self._shutdown = True
                return
            if reply.flush:
                self._run_epoch("flush")
        self._arm_or_fire()

    def _arm_or_fire(self) -> None:
        if not self.session.pending:
            return
        if self.session.coalescer.events >= self.coalesce_limit:
            self._run_epoch("limit")
        elif self._deadline is None:
            self._deadline = time.monotonic() + self.coalesce_window

    def _maybe_run_epoch(self) -> None:
        if self._shutdown or self._deadline is None:
            return
        if time.monotonic() >= self._deadline:
            self._run_epoch("window")

    def _run_epoch(self, reason: str) -> None:
        self._deadline = None
        frames = self.session.run_epoch(reason)
        if frames:
            self._broadcast(frames)

    def _finalize(self) -> None:
        self._broadcast(self.session.shutdown_frames())
        # Last chance to deliver: the loop is about to close every socket,
        # so drain each queue with one best-effort blocking write.
        for client in list(self._clients.values()):
            self._drain_blocking(client)

    # ------------------------------------------------------------------
    def _client_stats(self) -> List[Dict[str, object]]:
        return [
            client.describe()
            for client in sorted(self._clients.values(), key=lambda c: c.id)
        ]

    def _broadcast(self, frames: List[Dict[str, object]]) -> None:
        # Encode once for full-broadcast subscribers; clients with a
        # narrowed subscription get their own projection of each frame
        # (irrelevant deltas are suppressed entirely).
        default_lines = [encode_frame(f) for f in frames]
        tenant_of = self.session.tenant_of
        # Iterate over a snapshot: a dead client is dropped mid-loop.
        for client in list(self._clients.values()):
            if client.subscription.mode == "all":
                for line in default_lines:
                    self._enqueue(client, line)
                continue
            for frame in frames:
                projected = filter_delta(frame, client.subscription, tenant_of)
                if projected is not None:
                    self._enqueue(client, encode_frame(projected))

    def _enqueue(self, client: _Client, line: str) -> None:
        """Queue one outbound frame, dropping (and flagging) when the
        client's queue is full; then write as much as the socket takes."""
        if len(client.outq) >= self.queue_limit:
            client.dropped += 1
            return
        client.outq.append(line.encode("utf-8"))
        self._flush(client)

    def _flush(self, client: _Client) -> None:
        """Non-blocking drain of the client's queue; a dead peer drops the
        client, never the daemon (the disconnect-mid-epoch regression)."""
        try:
            while client.outq:
                chunk = client.outq[0]
                sent = client.sock.send(chunk)
                if sent < len(chunk):
                    client.outq[0] = chunk[sent:]
                    break
                client.outq.popleft()
        except (BlockingIOError, InterruptedError):
            pass
        except OSError:
            self._drop(client)
            return
        self._update_interest(client)

    def _update_interest(self, client: _Client) -> None:
        mask = selectors.EVENT_READ
        if client.outq:
            mask |= selectors.EVENT_WRITE
        try:
            self._selector.modify(client.sock, mask, "client")
        except (KeyError, ValueError):
            pass

    def _drain_blocking(self, client: _Client) -> None:
        if not client.outq:
            return
        try:
            client.sock.setblocking(True)
            client.sock.sendall(b"".join(client.outq))
        except OSError:
            pass
        client.outq.clear()

    def _drop(self, client: _Client) -> None:
        self._clients.pop(client.sock, None)
        try:
            self._selector.unregister(client.sock)
        except (KeyError, ValueError):
            pass
        try:
            client.sock.close()
        except OSError:
            pass

    def _close_all(self) -> None:
        for client in list(self._clients.values()):
            self._drop(client)
        if self._listener is not None:
            try:
                self._selector.unregister(self._listener)
            except (KeyError, ValueError):
                pass
            self._listener.close()
            self._listener = None
        self._selector.close()
        self.session.close()


def serve_stdio(
    session: StreamSession,
    lines_in,
    out: TextIO,
    coalesce_limit: int = DEFAULT_COALESCE_LIMIT,
) -> int:
    """Deterministic one-client loop over text streams (the stdio mode).

    Blank lines and ``#`` comments are skipped so script files stay
    readable.  Epochs fire on ``flush``, the coalesce limit, ``shutdown``
    and EOF — never on wall-clock, so a script replays identically.
    Returns the number of epochs run.
    """

    subscription = SUBSCRIBE_ALL

    def emit(frames) -> None:
        for frame in frames:
            out.write(encode_frame(frame))
        out.flush()

    def emit_broadcast(frames) -> None:
        # The single stdio client is still a subscriber: its ``subscribe``
        # filter applies to the epoch frames exactly as over a socket.
        projected = [
            filter_delta(frame, subscription, session.tenant_of)
            for frame in frames
        ]
        emit([frame for frame in projected if frame is not None])

    emit([session.start()])
    try:
        for line in lines_in:
            if not line.strip() or line.lstrip().startswith("#"):
                continue
            reply = session.handle_line(line)
            emit(reply.frames)
            if reply.subscribe is not None:
                subscription = reply.subscribe
            if reply.shutdown:
                emit_broadcast(session.shutdown_frames())
                return session.epoch
            if reply.flush:
                emit_broadcast(session.run_epoch("flush"))
            elif session.coalescer.events >= coalesce_limit:
                emit_broadcast(session.run_epoch("limit"))
        emit_broadcast(session.shutdown_frames(reason="eof"))
        return session.epoch
    finally:
        session.close()
