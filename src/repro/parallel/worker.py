"""Worker process: hosts a partition's verifiers and drains local messages.

Each worker owns the devices of one partition block: their data planes, one
:class:`OnDeviceVerifier` per (device, invariant), and a private BDD context
rebuilt from the coordinator's header layout.  A worker executes *commands*
(burst install, DVM round, link change, scene switch, rule update) and after
each one drains its local message queue to quiescence — messages between
co-located devices never leave the process.  Only messages whose destination
lives on another worker are returned, already encoded with
:mod:`repro.core.wire`, for the coordinator to route.

Determinism: every message carries a ``(source device, per-device sequence)``
key.  Batches are sorted by key and grouped by sorted ``(device, invariant)``
before delivery, so a fixed partition always replays identically — and the
DVM fixpoint itself is order-independent, which is what makes the result
equal to the serial simulator's byte for byte.
"""

from __future__ import annotations

import time
import traceback
from typing import Dict, List, Optional, Set, Tuple

from repro.bdd.serialize import serialize_predicate
from repro.core.verifier import OnDeviceVerifier
from repro.core.wire import decode_message, encode_message
from repro.dataplane.device import DevicePlane
from repro.parallel import shipping
from repro.parallel.parity import canonical_source_counts
from repro.topology.graph import canonical_link

__all__ = ["VerifierHost", "worker_main"]

# (source device, per-source sequence number): a total, partition-independent
# order over the messages any one device emits.
MessageKey = Tuple[str, int]
RemoteEntry = Tuple[MessageKey, str, str, bytes]  # key, dst dev, invariant, blob


def _fresh_stats() -> Dict[str, int]:
    return {
        "events_processed": 0,
        "messages_sent": 0,
        "bytes_sent": 0,
        "messages_received": 0,
        "bytes_received": 0,
    }


class VerifierHost:
    """The in-process state of one worker.

    Constructed from live objects inherited across the coordinator's fork
    (context, planes, tasks — no deserialization).  After the fork these are
    private copies; every later state change arrives as an explicit command,
    with rules and DVM messages crossing the pipe as BDD wire bytes.
    """

    def __init__(self, init: Dict[str, object]) -> None:
        self.wid: int = init["wid"]  # type: ignore[assignment]
        self.ctx = init["ctx"]
        self.assignment: Dict[str, int] = dict(init["assignment"])  # type: ignore[arg-type]
        self.planes: Dict[str, DevicePlane] = dict(init["planes"])  # type: ignore[arg-type]
        self.verifiers: Dict[Tuple[str, str], OnDeviceVerifier] = {}
        self._by_dev: Dict[str, List[Tuple[str, OnDeviceVerifier]]] = {
            dev: [] for dev in self.planes
        }
        self.predicate_index: str = init.get("predicate_index", "atoms")  # type: ignore[assignment]
        if self.predicate_index == "atoms":
            # Post-fork: these planes are this worker's private copies, and
            # the index is private to this worker's context copy.
            index = self.ctx.atom_index()  # type: ignore[attr-defined]
            for plane in self.planes.values():
                plane.enable_atom_algebra(index)
        for task in init["tasks"]:  # type: ignore[union-attr]
            verifier = OnDeviceVerifier(
                task, self.planes[task.dev],
                predicate_index=self.predicate_index,
            )
            self.verifiers[(task.dev, task.invariant_name)] = verifier
            self._by_dev[task.dev].append((task.invariant_name, verifier))
        for pairs in self._by_dev.values():
            pairs.sort(key=lambda pair: pair[0])

        # Arm the per-worker BDD engine's garbage collector if requested.
        # Verifiers sweep at event boundaries; messages queued during a
        # drain hold Predicates (GC roots), so mid-drain sweeps are safe.
        gc_threshold = init.get("gc_threshold")
        if gc_threshold is not None:
            self.ctx.mgr.gc_threshold = gc_threshold  # type: ignore[attr-defined]

        self.failed: Set[Tuple[str, str]] = set()
        self._queue: List[Tuple[MessageKey, str, str, object]] = []
        self._seq: Dict[str, int] = {}
        self.stats: Dict[str, Dict[str, int]] = {
            dev: _fresh_stats() for dev in self.planes
        }
        self.busy = 0.0
        self.rounds = 0

    # ------------------------------------------------------------------
    # Message routing
    # ------------------------------------------------------------------
    def _route(
        self,
        src: str,
        invariant: str,
        outgoing,
        remote: List[RemoteEntry],
    ) -> None:
        stats = self.stats[src]
        for dst, message in outgoing:
            if canonical_link(src, dst) in self.failed:
                continue  # the DVM channel is down; resync on recovery
            seq = self._seq.get(src, 0)
            self._seq[src] = seq + 1
            key = (src, seq)
            stats["messages_sent"] += 1
            stats["bytes_sent"] += message.wire_size()
            if self.assignment[dst] == self.wid:
                self._queue.append((key, dst, invariant, message))
            else:
                remote.append((key, dst, invariant, encode_message(message)))

    def _drain(self) -> List[RemoteEntry]:
        """Deliver queued local messages in waves until none remain."""
        remote: List[RemoteEntry] = []
        while self._queue:
            batch, self._queue = self._queue, []
            batch.sort(key=lambda entry: entry[0])
            groups: Dict[Tuple[str, str], List[object]] = {}
            for _key, dst, invariant, message in batch:
                groups.setdefault((dst, invariant), []).append(message)
            for dst, invariant in sorted(groups):
                messages = groups[(dst, invariant)]
                stats = self.stats[dst]
                stats["events_processed"] += 1
                stats["messages_received"] += len(messages)
                stats["bytes_received"] += sum(
                    m.wire_size() for m in messages  # type: ignore[attr-defined]
                )
                verifier = self.verifiers.get((dst, invariant))
                if verifier is None:
                    continue
                self._route(
                    dst, invariant, verifier.handle_batch(messages), remote
                )
        return remote

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------
    def burst(self, payload: Dict[str, object]) -> List[RemoteEntry]:
        """Install rule bursts, then (re)initialize every local verifier."""
        remote: List[RemoteEntry] = []
        installs = shipping.unship_rule_sets(self.ctx, payload)
        for dev in sorted(installs):
            self.planes[dev].install_many(installs[dev])
        for dev, invariant in sorted(self.verifiers):
            self.stats[dev]["events_processed"] += 1
            verifier = self.verifiers[(dev, invariant)]
            self._route(dev, invariant, verifier.initialize(), remote)
        remote.extend(self._drain())
        return remote

    def round(self, entries: List[RemoteEntry]) -> List[RemoteEntry]:
        """Deliver one round of cross-worker messages, drain, reply."""
        self.rounds += 1
        for key, dst, invariant, blob in entries:
            message = decode_message(self.ctx, blob)
            self._queue.append((key, dst, invariant, message))
        return self._drain()

    def link(
        self, changes: List[Tuple[str, str, bool]]
    ) -> List[RemoteEntry]:
        for a, b, is_up in changes:
            key = canonical_link(a, b)
            if is_up:
                self.failed.discard(key)
            else:
                self.failed.add(key)
        remote: List[RemoteEntry] = []
        for a, b, is_up in changes:
            for endpoint, other in ((a, b), (b, a)):
                for invariant, verifier in self._by_dev.get(endpoint, ()):
                    self.stats[endpoint]["events_processed"] += 1
                    self._route(
                        endpoint,
                        invariant,
                        verifier.handle_link_change(other, is_up),
                        remote,
                    )
        remote.extend(self._drain())
        return remote

    def scene(self, scene_id: Optional[int]) -> List[RemoteEntry]:
        remote: List[RemoteEntry] = []
        for dev, invariant in sorted(self.verifiers):
            self.stats[dev]["events_processed"] += 1
            verifier = self.verifiers[(dev, invariant)]
            self._route(dev, invariant, verifier.activate_scene(scene_id), remote)
        remote.extend(self._drain())
        return remote

    def update(
        self,
        dev: str,
        install_payload: Optional[Dict[str, object]],
        remove_rule_id: Optional[int],
    ) -> List[RemoteEntry]:
        plane = self.planes[dev]
        deltas = []
        if remove_rule_id is not None:
            deltas.extend(plane.remove_rule(remove_rule_id))
        if install_payload is not None:
            rule = shipping.unship_rules(self.ctx, install_payload)[0]
            deltas.extend(plane.install_rule(rule))
        remote: List[RemoteEntry] = []
        for invariant, verifier in self._by_dev.get(dev, ()):
            self.stats[dev]["events_processed"] += 1
            self._route(
                dev, invariant, verifier.handle_lec_deltas(deltas), remote
            )
        remote.extend(self._drain())
        return remote

    # ------------------------------------------------------------------
    # State export
    # ------------------------------------------------------------------
    def collect(self) -> Dict[str, object]:
        """Verdicts, memory and transport stats, all context-free."""
        verdicts: Dict[str, Dict[str, tuple]] = {}
        for (dev, invariant), verifier in sorted(self.verifiers.items()):
            for ingress, (ok, violations) in verifier.verdicts.items():
                verdicts.setdefault(invariant, {})[ingress] = (
                    ok,
                    [
                        {
                            "ingress": v.ingress,
                            "region": serialize_predicate(v.region),
                            "counts": v.counts,
                            "message": v.message,
                        }
                        for v in violations
                    ],
                )
        memory = {
            dev: sum(v.memory_proxy() for _inv, v in pairs)
            for dev, pairs in self._by_dev.items()
        }
        return {
            "verdicts": verdicts,
            "memory": memory,
            "stats": self.stats,
            "worker": {
                "wid": self.wid,
                "busy": self.busy,
                "rounds": self.rounds,
                "devices": len(self.planes),
            },
            "engine": self.ctx.mgr.profile(),  # type: ignore[attr-defined]
            "atom_index": (
                self.ctx.atom_index().profile()  # type: ignore[attr-defined]
                if self.ctx._atom_index is not None  # type: ignore[attr-defined]
                else None
            ),
        }

    def fingerprints(self):
        return canonical_source_counts(self.verifiers)


def worker_main(conn, init: Dict[str, object]) -> None:
    """Command loop: one request in, one reply out, forever until ``exit``."""
    # The fork hands us the coordinator's entire heap.  Freeze it: the
    # inherited objects are effectively immutable roots, and without the
    # freeze every cyclic-GC pass scans them (and copy-on-write-faults
    # their pages), which can multiply a worker's CPU time under a large
    # parent process such as a test runner.
    import gc

    gc.freeze()
    try:
        start = time.process_time()
        host = VerifierHost(init)
        host.busy += time.process_time() - start
        conn.send(("ready", host.wid))
    except Exception:
        conn.send(("error", traceback.format_exc()))
        return
    while True:
        try:
            command = conn.recv()
        except EOFError:
            return
        op = command[0]
        if op == "exit":
            conn.send(("bye",))
            return
        try:
            # CPU time, not wall time: with more workers than cores the OS
            # time-slices, and a wall clock would count sibling workers'
            # slices as this worker's "busy" time.
            start = time.process_time()
            if op == "collect":
                conn.send(("state", host.collect()))
                continue
            if op == "counts":
                conn.send(("counts", host.fingerprints()))
                continue
            if op == "burst":
                remote = host.burst(command[1])
            elif op == "round":
                remote = host.round(command[1])
            elif op == "link":
                remote = host.link(command[1])
            elif op == "scene":
                remote = host.scene(command[1])
            elif op == "update":
                remote = host.update(command[1], command[2], command[3])
            else:
                raise RuntimeError(f"unknown worker command {op!r}")
            host.busy += time.process_time() - start
            conn.send(("out", remote))
        except Exception:
            conn.send(("error", traceback.format_exc()))
