"""Worker process: hosts a partition's verifiers and drains local messages.

Each worker owns the devices of one partition block: their data planes, one
:class:`OnDeviceVerifier` per (device, invariant), and a private BDD context
(inherited across the coordinator's fork).  A worker executes *commands*
(burst install, inbox delivery, link change, scene switch, rule updates) and
after each one drains its local message queue to quiescence — messages
between co-located devices never leave the process.  Messages whose
destination lives on another worker accumulate in per-destination outbound
buckets and are flushed as packed :mod:`repro.parallel.atomwire` frames when
the command completes (the worker goes idle), riding the shared-memory ring
back to the coordinator.

Workers are *persistent* (:mod:`repro.parallel.pool`): a ``reset`` command
re-points the process at a new deployment — fresh planes and verifiers on
the same warm BDD context.  The atom-wire encoder/decoder dictionaries
deliberately survive resets: atom ids are never reused and extents are
stable, so definitions shipped to a peer in one deployment remain valid in
the next.

Determinism: every message carries a ``(source device, per-device sequence)``
key.  Batches are sorted by key and grouped by sorted ``(device, invariant)``
before delivery, so a fixed partition always replays identically — and the
DVM fixpoint itself is order-independent, which is what makes the result
equal to the serial simulator's byte for byte even though the non-barrier
coordinator delivers cross-worker batches in arrival order.
"""

from __future__ import annotations

import time
import traceback
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.bdd.serialize import deserialize_predicates, serialize_predicate
from repro.core.verifier import OnDeviceVerifier
from repro.dataplane.device import DevicePlane
from repro.dataplane.rule import Rule
from repro.parallel import shipping
from repro.parallel.atomwire import FrameDecoder, FrameEncoder
from repro.parallel.parity import canonical_source_counts
from repro.parallel.pool import read_payloads, write_payloads
from repro.topology.graph import canonical_link

__all__ = ["VerifierHost", "worker_main"]

# (source device, per-source sequence number): a total, partition-independent
# order over the messages any one device emits.
MessageKey = Tuple[str, int]


def _fresh_stats() -> Dict[str, int]:
    return {
        "events_processed": 0,
        "messages_sent": 0,
        "bytes_sent": 0,
        "messages_received": 0,
        "bytes_received": 0,
    }


class VerifierHost:
    """The in-process state of one worker.

    Constructed from live objects inherited across the coordinator's fork
    (context, planes, tasks — no deserialization).  After the fork these are
    private copies; every later state change arrives as an explicit command,
    with rules crossing as shipped payloads and DVM messages as atom-wire
    frames.
    """

    def __init__(self, init: Dict[str, object]) -> None:
        self.wid: int = init["wid"]  # type: ignore[assignment]
        self.ctx = init["ctx"]
        self.assignment: Dict[str, int] = dict(init["assignment"])  # type: ignore[arg-type]
        self.predicate_index: str = init.get("predicate_index", "atoms")  # type: ignore[assignment]
        self.index = (
            self.ctx.atom_index()  # type: ignore[attr-defined]
            if self.predicate_index == "atoms"
            else None
        )
        # Cross-worker wire state.  Lives beside (not inside) the deployment
        # state: reset() replaces verifiers and planes but the per-peer atom
        # dictionaries stay coherent across deployments by construction.
        self.encoder = FrameEncoder(self.wid, self.index)
        self.decoder = FrameDecoder(self.ctx, self.index)
        # Update-shipping dictionary (coordinator side assigns the ids):
        # each distinct match predicate is decoded once, then referenced.
        self._match_cache: Dict[int, object] = {}

        # Arm the per-worker BDD engine's garbage collector if requested.
        # Verifiers sweep at event boundaries; messages queued during a
        # drain hold Predicates (GC roots), so mid-drain sweeps are safe.
        gc_threshold = init.get("gc_threshold")
        if gc_threshold is not None:
            self.ctx.mgr.gc_threshold = gc_threshold  # type: ignore[attr-defined]

        self.busy = 0.0
        self.rounds = 0
        self._attach(
            dict(init["planes"]),  # type: ignore[arg-type]
            list(init["tasks"]),  # type: ignore[arg-type]
        )

    def _attach(self, planes: Dict[str, DevicePlane], tasks: list) -> None:
        """Bind this worker to one deployment's planes and tasks."""
        self.planes = planes
        if self.index is not None:
            for plane in self.planes.values():
                plane.enable_atom_algebra(self.index)
        self.verifiers: Dict[Tuple[str, str], OnDeviceVerifier] = {}
        self._by_dev: Dict[str, List[Tuple[str, OnDeviceVerifier]]] = {
            dev: [] for dev in self.planes
        }
        for task in tasks:
            verifier = OnDeviceVerifier(
                task, self.planes[task.dev],
                predicate_index=self.predicate_index,
            )
            self.verifiers[(task.dev, task.invariant_name)] = verifier
            self._by_dev[task.dev].append((task.invariant_name, verifier))
        for pairs in self._by_dev.values():
            pairs.sort(key=lambda pair: pair[0])

        self.failed: Set[Tuple[str, str]] = set()
        self._queue: List[Tuple[MessageKey, str, str, object]] = []
        self._seq: Dict[str, int] = {}
        self._outbound: Dict[int, List[tuple]] = {}
        self.stats: Dict[str, Dict[str, int]] = {
            dev: _fresh_stats() for dev in self.planes
        }
        # Delta-collect bookkeeping: everything is dirty until the first
        # collect, then only touched verifiers/devices ship.
        self._dirty_verifiers: Set[Tuple[str, str]] = set(self.verifiers)
        self._dirty_stats: Set[str] = set(self.planes)

    def reset(self, payload: Dict[str, object]) -> None:
        """Re-point this persistent worker at a new deployment.

        Planes and verifiers are rebuilt from shipped state; the BDD context
        (node table, op caches, serialize memos), the atom index and the
        cross-worker atom dictionaries all survive — which is what makes a
        redeploy on a warm pool much cheaper than a fresh fork."""
        tasks = shipping.unship_tasks(self.ctx, payload["tasks"])  # type: ignore[arg-type]
        planes = {
            dev: DevicePlane(dev, self.ctx)
            for dev in payload["devices"]  # type: ignore[union-attr]
        }
        # Match ids belong to the deployment's coordinator; a new one
        # numbers from zero again, so the old dictionary must not answer.
        self._match_cache.clear()
        self._attach(planes, tasks)

    # ------------------------------------------------------------------
    # Message routing
    # ------------------------------------------------------------------
    def _route(self, src: str, invariant: str, outgoing) -> None:
        stats = self.stats[src]
        self._dirty_stats.add(src)
        for dst, message in outgoing:
            if canonical_link(src, dst) in self.failed:
                continue  # the DVM channel is down; resync on recovery
            seq = self._seq.get(src, 0)
            self._seq[src] = seq + 1
            key = (src, seq)
            stats["messages_sent"] += 1
            stats["bytes_sent"] += message.wire_size()
            dst_wid = self.assignment[dst]
            if dst_wid == self.wid:
                self._queue.append((key, dst, invariant, message))
            else:
                self._outbound.setdefault(dst_wid, []).append(
                    (key, dst, invariant, message)
                )

    def _drain(self) -> None:
        """Deliver queued local messages in waves until none remain."""
        while self._queue:
            batch, self._queue = self._queue, []
            batch.sort(key=lambda entry: entry[0])
            groups: Dict[Tuple[str, str], List[object]] = {}
            for _key, dst, invariant, message in batch:
                groups.setdefault((dst, invariant), []).append(message)
            for dst, invariant in sorted(groups):
                messages = groups[(dst, invariant)]
                stats = self.stats[dst]
                stats["events_processed"] += 1
                stats["messages_received"] += len(messages)
                stats["bytes_received"] += sum(
                    m.wire_size() for m in messages  # type: ignore[attr-defined]
                )
                self._dirty_stats.add(dst)
                verifier = self.verifiers.get((dst, invariant))
                if verifier is None:
                    continue
                self._dirty_verifiers.add((dst, invariant))
                self._route(dst, invariant, verifier.handle_batch(messages))

    def flush(self) -> List[Tuple[int, bytes, int]]:
        """Encode the outbound buckets as one frame per destination worker;
        returns ``(dst wid, frame bytes, entry count)`` triples."""
        out: List[Tuple[int, bytes, int]] = []
        for dst_wid in sorted(self._outbound):
            entries = self._outbound[dst_wid]
            frame = self.encoder.encode(dst_wid, entries)
            out.append((dst_wid, frame, len(entries)))
        self._outbound = {}
        return out

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------
    def inbox(self, frames: Sequence[bytes]) -> None:
        """Deliver a batch of cross-worker frames, then drain."""
        self.rounds += 1
        for data in frames:
            _sender, entries = self.decoder.decode(data)
            self._queue.extend(entries)
        self._drain()

    def burst(self, payload: Dict[str, object]) -> None:
        """Install rule bursts, then (re)initialize every local verifier."""
        installs = shipping.unship_rule_sets(self.ctx, payload)
        for dev in sorted(installs):
            self.planes[dev].install_many(installs[dev])
        for dev, invariant in sorted(self.verifiers):
            self.stats[dev]["events_processed"] += 1
            self._dirty_stats.add(dev)
            self._dirty_verifiers.add((dev, invariant))
            verifier = self.verifiers[(dev, invariant)]
            self._route(dev, invariant, verifier.initialize())
        self._drain()

    def link(self, changes: List[Tuple[str, str, bool]]) -> None:
        for a, b, is_up in changes:
            key = canonical_link(a, b)
            if is_up:
                self.failed.discard(key)
            else:
                self.failed.add(key)
        for a, b, is_up in changes:
            for endpoint, other in ((a, b), (b, a)):
                for invariant, verifier in self._by_dev.get(endpoint, ()):
                    self.stats[endpoint]["events_processed"] += 1
                    self._dirty_stats.add(endpoint)
                    self._dirty_verifiers.add((endpoint, invariant))
                    self._route(
                        endpoint,
                        invariant,
                        verifier.handle_link_change(other, is_up),
                    )
        self._drain()

    def scene(self, scene_id: Optional[int]) -> None:
        for dev, invariant in sorted(self.verifiers):
            self.stats[dev]["events_processed"] += 1
            self._dirty_stats.add(dev)
            self._dirty_verifiers.add((dev, invariant))
            verifier = self.verifiers[(dev, invariant)]
            self._route(dev, invariant, verifier.activate_scene(scene_id))
        self._drain()

    def _unship_update(self, payload: Dict[str, object]) -> Rule:
        """Rebuild one shipped rule, caching its decoded match by id."""
        mid: int = payload["mid"]  # type: ignore[assignment]
        if "blob" in payload:  # first shipment carries the bytes
            match = deserialize_predicates(self.ctx, payload["blob"])[0]
            self._match_cache[mid] = match
        else:
            match = self._match_cache[mid]
        action, priority, rule_id = payload["meta"]  # type: ignore[misc]
        return Rule(match, action, priority, rule_id=rule_id)

    def update(self, updates: Sequence[tuple]) -> None:
        """Apply a batch of single-rule updates (in order), then drain once.

        The DVM fixpoint is order- and batching-independent, so draining
        once after n updates converges to the same state as n separate
        drains — which is what lets the coordinator coalesce a churn burst
        into one command.

        An update's ``only`` component (a sorted tuple of invariant names,
        or None) restricts the LEC-delta hand-off to those invariants —
        the slicing scheduler's routing verdict, shipped with the op."""
        for dev, install_payload, remove_rule_id, only in updates:
            plane = self.planes[dev]
            deltas = []
            if remove_rule_id is not None:
                deltas.extend(plane.remove_rule(remove_rule_id))
            if install_payload is not None:
                rule = self._unship_update(install_payload)
                deltas.extend(plane.install_rule(rule))
            for invariant, verifier in self._by_dev.get(dev, ()):
                if only is not None and invariant not in only:
                    continue
                self.stats[dev]["events_processed"] += 1
                self._dirty_stats.add(dev)
                self._dirty_verifiers.add((dev, invariant))
                self._route(dev, invariant, verifier.handle_lec_deltas(deltas))
        self._drain()

    # ------------------------------------------------------------------
    # State export
    # ------------------------------------------------------------------
    def collect(self) -> Dict[str, object]:
        """Delta state export: only verifiers and devices touched since the
        last collect ship their verdicts/stats (everything on the first one).

        The coordinator merges deltas into its accumulated view, so per-run
        refreshes in a churn loop cost O(touched), not O(network)."""
        verdict_parts: List[tuple] = []
        for dev, invariant in sorted(self._dirty_verifiers):
            verifier = self.verifiers.get((dev, invariant))
            if verifier is None:
                continue
            entry = {}
            for ingress, (ok, violations) in verifier.verdicts.items():
                entry[ingress] = (
                    ok,
                    [
                        {
                            "ingress": v.ingress,
                            "region": serialize_predicate(v.region),
                            "counts": v.counts,
                            "message": v.message,
                        }
                        for v in violations
                    ],
                )
            verdict_parts.append((dev, invariant, entry))
        self._dirty_verifiers.clear()
        stats = {}
        memory = {}
        for dev in sorted(self._dirty_stats):
            stats[dev] = dict(self.stats[dev])
            pairs = self._by_dev.get(dev)
            if pairs is not None:
                memory[dev] = sum(v.memory_proxy() for _inv, v in pairs)
        self._dirty_stats.clear()
        return {
            "verdicts": verdict_parts,
            "memory": memory,
            "stats": stats,
            "worker": {
                "wid": self.wid,
                "busy": self.busy,
                "rounds": self.rounds,
                "devices": len(self.planes),
            },
            "engine": self.ctx.mgr.profile(),  # type: ignore[attr-defined]
            "atom_index": (
                self.index.profile() if self.index is not None else None
            ),
            "wire": dict(self.encoder.stats),
        }

    def fingerprints(self):
        return canonical_source_counts(self.verifiers)


def worker_main(conn, init: Dict[str, object]) -> None:
    """Command loop: one request in, one reply out, forever until ``exit``."""
    # The fork hands us the coordinator's entire heap.  Freeze it: the
    # inherited objects are effectively immutable roots, and without the
    # freeze every cyclic-GC pass scans them (and copy-on-write-faults
    # their pages), which can multiply a worker's CPU time under a large
    # parent process such as a test runner.
    import gc

    gc.freeze()
    # Ring directions are named from this process's perspective; only the
    # coordinator (the creator) unlinks the shared segments.
    ring_in = init.pop("ring_in", None)
    ring_out = init.pop("ring_out", None)
    if ring_in is not None:
        ring_in.disown()
    if ring_out is not None:
        ring_out.disown()

    def reply(message: tuple, payloads: Sequence[bytes] = ()) -> None:
        conn.send((message, write_payloads(ring_out, payloads)))

    try:
        start = time.process_time()
        host = VerifierHost(init)
        host.busy += time.process_time() - start
        reply(("ready", host.wid))
    except Exception:
        reply(("error", traceback.format_exc()))
        return
    while True:
        try:
            command, descs = conn.recv()
        except EOFError:
            return
        try:
            payloads = read_payloads(ring_in, descs)
        except Exception:
            reply(("error", traceback.format_exc()))
            continue
        op = command[0]
        if op == "exit":
            reply(("bye",))
            return
        try:
            # CPU time, not wall time: with more workers than cores the OS
            # time-slices, and a wall clock would count sibling workers'
            # slices as this worker's "busy" time.
            start = time.process_time()
            if op == "collect":
                reply(("state", host.collect()))
                continue
            if op == "counts":
                reply(("counts", host.fingerprints()))
                continue
            if op == "reset":
                host.reset(command[1])
                host.busy += time.process_time() - start
                reply(("ok",))
                continue
            if op == "inbox":
                host.inbox(payloads)
            elif op == "burst":
                host.burst(command[1])
            elif op == "link":
                host.link(command[1])
            elif op == "scene":
                host.scene(command[1])
            elif op == "update":
                host.update(command[1])
            else:
                raise RuntimeError(f"unknown worker command {op!r}")
            frames = host.flush()
            host.busy += time.process_time() - start
            reply(
                ("out", [(dst, count) for dst, _frame, count in frames]),
                [frame for _dst, frame, _count in frames],
            )
        except Exception:
            reply(("error", traceback.format_exc()))
