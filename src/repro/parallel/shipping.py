"""Moving verifier state between the coordinator and worker processes.

Every worker owns a private :class:`PacketSpaceContext` (rebuilt from the
coordinator's :meth:`HeaderLayout.spec`), so nothing BDD-backed can cross a
process boundary as a Python object.  Predicates travel as the multi-root
binary streams of :mod:`repro.bdd.serialize` — one shared node table per
payload — and everything else (actions, atoms, behavior trees, DPVNet node
tables) is context-free and rides the pipe's pickle.

Payload shapes::

    tasks:  {"meta": [per-task dicts], "blob": bytes}   # packet spaces
    rules:  {"meta": [(action, priority, rule_id)], "blob": bytes}  # matches
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.bdd.fields import HeaderLayout
from repro.bdd.predicate import PacketSpaceContext
from repro.bdd.serialize import deserialize_predicates, serialize_predicates
from repro.core.tasks import DeviceTask
from repro.dataplane.rule import Rule

__all__ = [
    "build_context",
    "ship_tasks",
    "shipped_predicate_index",
    "unship_tasks",
    "ship_rules",
    "unship_rules",
    "ship_rule_sets",
    "unship_rule_sets",
]


def build_context(spec: Sequence[Tuple[str, int]]) -> PacketSpaceContext:
    """A fresh worker-side context with the coordinator's header layout."""
    return PacketSpaceContext(HeaderLayout(list(spec)))


def _as_predicate(region):
    """Boundary conversion: regions ship as canonical BDD predicates.

    Atom ids are process-local (each worker's index refines independently),
    so an AtomSet can never cross a pipe — its canonical-Predicate view can,
    and re-atomizing on the far side reproduces the same packet set.
    """
    if hasattr(region, "to_predicate"):
        return region.to_predicate()
    return region


def ship_tasks(
    tasks: Sequence[DeviceTask], predicate_index: str = "atoms"
) -> Dict[str, object]:
    """Pack device tasks for one worker into a single payload.

    ``predicate_index`` rides along so a worker rebuilt from shipped state
    (rather than a fork) constructs its verifiers in the coordinator's
    region-representation mode.
    """
    meta = []
    for task in tasks:
        meta.append(
            {
                "dev": task.dev,
                "invariant_name": task.invariant_name,
                "atoms": task.atoms,
                "behavior": task.behavior,
                "nodes": task.nodes,
                "reduction_exps": task.reduction_exps,
            }
        )
    blob = serialize_predicates(
        [_as_predicate(task.packet_space) for task in tasks]
    )
    return {"meta": meta, "blob": blob, "predicate_index": predicate_index}


def unship_tasks(
    ctx: PacketSpaceContext, payload: Dict[str, object]
) -> List[DeviceTask]:
    """Rebuild shipped tasks against the worker's context."""
    spaces = deserialize_predicates(ctx, payload["blob"])  # type: ignore[arg-type]
    tasks: List[DeviceTask] = []
    for meta, space in zip(payload["meta"], spaces):  # type: ignore[arg-type]
        tasks.append(
            DeviceTask(
                dev=meta["dev"],
                invariant_name=meta["invariant_name"],
                packet_space=space,
                atoms=meta["atoms"],
                behavior=meta["behavior"],
                nodes=meta["nodes"],
                reduction_exps=meta["reduction_exps"],
            )
        )
    return tasks


def shipped_predicate_index(payload: Dict[str, object]) -> str:
    """The region-representation mode recorded in a task payload."""
    return payload.get("predicate_index", "atoms")  # type: ignore[return-value]


def ship_rules(rules: Sequence[Rule]) -> Dict[str, object]:
    """Pack forwarding rules (one device's burst install, or one update)."""
    meta = [(rule.action, rule.priority, rule.rule_id) for rule in rules]
    blob = serialize_predicates([_as_predicate(rule.match) for rule in rules])
    return {"meta": meta, "blob": blob}


def unship_rules(
    ctx: PacketSpaceContext, payload: Dict[str, object]
) -> List[Rule]:
    """Rebuild shipped rules with their original ids preserved."""
    matches = deserialize_predicates(ctx, payload["blob"])  # type: ignore[arg-type]
    return [
        Rule(match, action, priority, rule_id=rule_id)
        for match, (action, priority, rule_id) in zip(matches, payload["meta"])  # type: ignore[arg-type]
    ]


def ship_rule_sets(
    rules_by_dev: Dict[str, Sequence[Rule]]
) -> Dict[str, object]:
    """Pack many devices' rule installs into one shared-node-table stream.

    FIBs of different devices share most of their match predicates (the same
    destination prefixes recur network-wide), so a single multi-root stream
    per worker serializes that shared structure once instead of once per
    device — this is what keeps burst shipping off the coordinator's
    critical path.
    """
    meta = []
    matches = []
    for dev in sorted(rules_by_dev):
        rules = rules_by_dev[dev]
        meta.append(
            (dev, [(r.action, r.priority, r.rule_id) for r in rules])
        )
        matches.extend(_as_predicate(rule.match) for rule in rules)
    return {"meta": meta, "blob": serialize_predicates(matches)}


def unship_rule_sets(
    ctx: PacketSpaceContext, payload: Dict[str, object]
) -> Dict[str, List[Rule]]:
    """Inverse of :func:`ship_rule_sets`: per-device rule lists."""
    matches = deserialize_predicates(ctx, payload["blob"])  # type: ignore[arg-type]
    out: Dict[str, List[Rule]] = {}
    i = 0
    for dev, rule_meta in payload["meta"]:  # type: ignore[union-attr]
        rules: List[Rule] = []
        for action, priority, rule_id in rule_meta:
            rules.append(Rule(matches[i], action, priority, rule_id=rule_id))
            i += 1
        out[dev] = rules
    return out
