"""Persistent shard-worker pool: spawn once, reuse across deployments.

The BSP backend forked a fresh pool inside every :class:`ParallelNetwork`
and tore it down with the network, so every deployment in a churn loop paid
fork + context rebuild + BDD rewarm.  A :class:`WorkerPool` decouples the
processes from any one deployment: the pool is spawned once (per
:class:`~repro.sim.runner.TulkunRunner`), the first deployment forks with
live copy-on-write state, and later deployments *reset* the existing
workers — rebuilding planes and verifiers on each worker's already-warm BDD
context (node table, op caches, atom index and the cross-worker atom
dictionaries all survive).

The pool also owns the transport plumbing:

* one command pipe per worker (control tuples, small, pickled);
* two :class:`~repro.parallel.shm.ShmRing` segments per worker (payload
  bytes: DVM frames coordinator→worker and worker→coordinator).  Payloads
  ride the ring as ``("s", position, length)`` descriptors on the pipe; if
  a ring is momentarily full the payload falls back to an inline
  ``("r", bytes)`` descriptor — same bytes, slow lane.

Crash detection: any pipe failure marks the pool ``broken`` and raises
:class:`~repro.errors.SimulationError` naming the worker and its exit
status.  A broken pool refuses further commands; the runner responds by
discarding it and spawning a fresh one on the next deployment.
"""

from __future__ import annotations

import multiprocessing
import time
from multiprocessing.connection import wait as _conn_wait
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.parallel.shm import ShmRing, shared_memory_available

__all__ = ["WorkerPool", "write_payloads", "read_payloads"]


def write_payloads(ring: Optional[ShmRing], payloads: Sequence[bytes]) -> List[tuple]:
    """Stage payload bytes for a pipe message; returns descriptors."""
    descs: List[tuple] = []
    for data in payloads:
        if ring is not None:
            pos = ring.try_write(data)
            if pos is not None:
                descs.append(("s", pos, len(data)))
                continue
        descs.append(("r", data))
    return descs


def read_payloads(ring: Optional[ShmRing], descs: Sequence[tuple]) -> List[bytes]:
    """Materialize descriptors back into payload bytes (FIFO order)."""
    out: List[bytes] = []
    for desc in descs:
        if desc[0] == "s":
            if ring is None:
                raise SimulationError("shared-memory descriptor without a ring")
            out.append(ring.read(desc[1], desc[2]))
        else:
            out.append(desc[1])
    return out


class WorkerPool:
    """A long-lived pool of forked verifier workers."""

    def __init__(
        self,
        num_workers: int,
        use_shm: bool = True,
        ring_capacity: int = 1 << 22,
    ) -> None:
        self.num_workers = num_workers
        self.use_shm = use_shm and shared_memory_available()
        self.ring_capacity = ring_capacity
        self.spawned = False
        self.broken = False
        self.closed = False
        #: Device -> wid map recorded at spawn; later deployments must match.
        self.assignment: Optional[Dict[str, int]] = None
        #: Compatibility fingerprint set by whoever manages pool reuse.
        self.profile: Optional[dict] = None
        #: Deployments served (1 fork + n-1 resets); exposed for benchmarks.
        self.generations = 0
        self._procs: List = []
        self._conns: List = []
        self._rings_out: List[Optional[ShmRing]] = []  # coordinator -> worker
        self._rings_in: List[Optional[ShmRing]] = []  # worker -> coordinator

    # ------------------------------------------------------------------
    # Spawning
    # ------------------------------------------------------------------
    def spawn(self, inits: List[dict], target, assignment: Dict[str, int]) -> None:
        """Fork one worker per init dict (live-object inheritance)."""
        if self.spawned:
            raise SimulationError("worker pool is already spawned")
        if self.closed:
            raise SimulationError("worker pool is closed")
        if len(inits) != self.num_workers:
            raise SimulationError(
                f"expected {self.num_workers} init payloads, got {len(inits)}"
            )
        mp = multiprocessing.get_context("fork")
        self.assignment = dict(assignment)
        for wid, init in enumerate(inits):
            if self.use_shm:
                ring_out: Optional[ShmRing] = ShmRing(self.ring_capacity)
                ring_in: Optional[ShmRing] = ShmRing(self.ring_capacity)
            else:
                ring_out = ring_in = None
            init = dict(init)
            init["ring_in"] = ring_out  # the worker reads what we write
            init["ring_out"] = ring_in
            parent_conn, child_conn = mp.Pipe()
            proc = mp.Process(target=target, args=(child_conn, init), daemon=True)
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
            self._rings_out.append(ring_out)
            self._rings_in.append(ring_in)
        self.spawned = True
        self.generations = 1
        for wid in range(self.num_workers):
            reply, _payloads = self.recv(wid)
            if reply[0] != "ready":
                raise SimulationError(
                    f"worker {wid} failed to initialize:\n{reply[1]}"
                )

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _fail(self, wid: int, cause: BaseException) -> SimulationError:
        self.broken = True
        proc = self._procs[wid] if wid < len(self._procs) else None
        code = None
        if proc is not None:
            proc.join(timeout=0.2)
            code = proc.exitcode
        detail = (
            f"exit code {code}" if code is not None else "no exit status yet"
        )
        return SimulationError(
            f"worker {wid} died ({detail}: {type(cause).__name__}); the pool "
            f"is broken and must be respawned"
        )

    def send(self, wid: int, command: tuple, payloads: Sequence[bytes] = ()) -> None:
        if self.broken:
            raise SimulationError("worker pool is broken (a worker died)")
        try:
            descs = write_payloads(self._rings_out[wid], payloads)
            self._conns[wid].send((command, descs))
        except (OSError, BrokenPipeError, EOFError, ValueError) as exc:
            raise self._fail(wid, exc)

    def recv(self, wid: int) -> Tuple[tuple, List[bytes]]:
        try:
            reply, descs = self._conns[wid].recv()
            return reply, read_payloads(self._rings_in[wid], descs)
        except (OSError, BrokenPipeError, EOFError) as exc:
            raise self._fail(wid, exc)

    def wait(self, wids: Sequence[int], timeout: Optional[float] = None) -> List[int]:
        """Block until at least one of ``wids`` has a reply ready."""
        by_conn = {id(self._conns[wid]): wid for wid in wids}
        try:
            ready = _conn_wait([self._conns[wid] for wid in wids], timeout)
        except (OSError, EOFError) as exc:
            raise self._fail(min(wids), exc)
        return sorted(by_conn[id(conn)] for conn in ready)

    # ------------------------------------------------------------------
    # Fault-injection and lifecycle
    # ------------------------------------------------------------------
    def kill_worker(self, wid: int) -> None:
        """Hard-kill one worker (crash-detection tests)."""
        self._procs[wid].terminate()
        self._procs[wid].join(timeout=5)

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        if not self.spawned:
            return
        for wid, conn in enumerate(self._conns):
            if not self.broken:
                try:
                    conn.send((("exit",), []))
                except (OSError, BrokenPipeError, ValueError):
                    pass
        deadline = time.monotonic() + 5
        for proc in self._procs:
            proc.join(timeout=max(0.1, deadline - time.monotonic()))
            if proc.is_alive():  # pragma: no cover - hung-worker backstop
                proc.terminate()
                proc.join(timeout=1)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - teardown race
                pass
        for ring in self._rings_out + self._rings_in:
            if ring is not None:
                ring.close()

    def __del__(self) -> None:  # pragma: no cover - GC backstop
        try:
            self.close()
        except Exception:
            pass
