"""Shared-memory byte rings: zero-copy payload shipping between processes.

Pipe-pickled payloads pay four copies (pickle buffer, pipe write, pipe read,
unpickle) plus the pickle framing itself; for the parallel backend's DVM
frames that overhead rivals the verification work being shipped.  A
:class:`ShmRing` moves the payload bytes through a ``multiprocessing.
shared_memory`` segment instead: the writer copies bytes in once, the reader
copies them out once, and the pipe carries only a tiny ``(position, length)``
descriptor.

Concurrency model — single producer, single consumer, pipe-signaled:

* Positions are *logical* (monotone ``u64`` byte counters); the physical
  offset is ``position % capacity``, and a payload that crosses the end of
  the segment wraps (two-slice copy).
* The writer alone advances ``head``; the reader alone advances ``tail``.
  Both live in a small fixed header inside the segment.
* The reader only learns about a payload from a pipe descriptor the writer
  sent *after* copying the bytes in, so payload reads are always ordered
  after their writes — no locks needed.
* The writer reads ``tail`` only to compute free space.  A stale read can
  only *under*-estimate free space, in which case the writer falls back to
  sending the payload inline over the pipe (bit-identical bytes, just the
  slow lane) — never a correctness hazard.

``create=True`` allocates the segment (the coordinator, before forking);
workers inherit the mapping across the fork and attach to the same memory.
"""

from __future__ import annotations

import struct
from typing import Optional

__all__ = ["ShmRing", "shared_memory_available"]

_HEADER = struct.Struct("<QQ")  # head, tail (logical byte positions)
_HEADER_SIZE = _HEADER.size


def shared_memory_available() -> bool:
    """True if ``multiprocessing.shared_memory`` can allocate on this host."""
    try:
        from multiprocessing import shared_memory

        probe = shared_memory.SharedMemory(create=True, size=16)
    except (ImportError, OSError):
        return False
    try:
        probe.close()
        probe.unlink()
    except OSError:  # pragma: no cover - cleanup best-effort
        pass
    return True


class ShmRing:
    """A single-producer single-consumer byte ring in shared memory."""

    def __init__(self, capacity: int = 1 << 22) -> None:
        from multiprocessing import shared_memory

        if capacity <= 0:
            raise ValueError("ring capacity must be positive")
        self.capacity = capacity
        self._shm = shared_memory.SharedMemory(
            create=True, size=_HEADER_SIZE + capacity
        )
        self._buf = self._shm.buf
        _HEADER.pack_into(self._buf, 0, 0, 0)
        self._owner = True  # the creating (pre-fork) process unlinks

    # ------------------------------------------------------------------
    # Header accessors
    # ------------------------------------------------------------------
    def _head(self) -> int:
        return _HEADER.unpack_from(self._buf, 0)[0]

    def _tail(self) -> int:
        return _HEADER.unpack_from(self._buf, 0)[1]

    def _set_head(self, value: int) -> None:
        struct.pack_into("<Q", self._buf, 0, value)

    def _set_tail(self, value: int) -> None:
        struct.pack_into("<Q", self._buf, 8, value)

    # ------------------------------------------------------------------
    # Producer / consumer
    # ------------------------------------------------------------------
    def try_write(self, data: bytes) -> Optional[int]:
        """Copy ``data`` into the ring; return its logical position, or
        ``None`` when the ring lacks space (caller falls back to the pipe)."""
        length = len(data)
        if length > self.capacity:
            return None
        head = self._head()
        free = self.capacity - (head - self._tail())
        if length > free:
            return None
        cap = self.capacity
        offset = head % cap
        first = min(length, cap - offset)
        base = _HEADER_SIZE
        self._buf[base + offset : base + offset + first] = data[:first]
        if first < length:  # wrap to the start of the segment
            self._buf[base : base + length - first] = data[first:]
        self._set_head(head + length)
        return head

    def read(self, position: int, length: int) -> bytes:
        """Copy ``length`` bytes written at logical ``position`` out of the
        ring and release the space."""
        cap = self.capacity
        offset = position % cap
        first = min(length, cap - offset)
        base = _HEADER_SIZE
        data = bytes(self._buf[base + offset : base + offset + first])
        if first < length:
            data += bytes(self._buf[base : base + length - first])
        # Descriptors arrive in write order (pipe FIFO), so the consumed
        # payload is always the oldest one: releasing through its end is
        # exact, not an approximation.
        self._set_tail(position + length)
        return data

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def disown(self) -> None:
        """Mark this process a non-owner (forked children call this so
        only the creating coordinator unlinks the segment)."""
        self._owner = False

    def close(self, unlink: Optional[bool] = None) -> None:
        """Detach; the creating process also unlinks the segment."""
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        self._buf = None
        do_unlink = self._owner if unlink is None else unlink
        try:
            shm.close()
        except (OSError, BufferError):  # pragma: no cover - teardown race
            pass
        if do_unlink:
            try:
                shm.unlink()
            except OSError:  # pragma: no cover - already gone
                pass

    def __del__(self) -> None:  # pragma: no cover - GC backstop
        try:
            self.close()
        except Exception:
            pass
