"""The process-backend coordinator: a drop-in for :class:`SimNetwork`.

:class:`ParallelNetwork` exposes the same scenario-driver surface the serial
simulator does (``install_rules`` / ``apply_rule_update`` / ``change_link`` /
``activate_scene`` / ``run`` / ``verdicts`` ...), so :class:`TulkunRunner`
drives either interchangeably.  Underneath, devices are partitioned over a
pool of worker processes (:mod:`repro.parallel.worker`); scenario calls are
buffered and executed on :meth:`run` as command batches, then cross-worker
DVM messages are routed in bulk-synchronous rounds until the network is
quiescent.

Two semantic differences from the serial simulator, both deliberate:

* **Time is real.**  ``run`` returns accumulated wall-clock seconds, not a
  simulated clock — the backend exists to measure (and deliver) actual
  parallel speedup, so ``cpu_scale`` is accepted but ignored.
* **Delivery order is round-based**, not latency-ordered.  The DVM fixpoint
  is order-independent, so verdicts and counting results are byte-identical
  to the serial backend's (``tests/test_parallel_backend.py`` pins this).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.bdd.predicate import PacketSpaceContext
from repro.bdd.serialize import deserialize_predicate
from repro.core.result import Violation
from repro.core.tasks import TaskSet
from repro.dataplane.device import DevicePlane
from repro.dataplane.rule import Rule
from repro.errors import SimulationError
from repro.parallel import shipping
from repro.parallel.partition import cut_edges, partition_devices
from repro.parallel.worker import worker_main
from repro.sim.metrics import MetricsCollector
from repro.topology.graph import Topology, canonical_link

__all__ = ["ParallelNetwork", "default_worker_count"]


def default_worker_count() -> int:
    """A sane pool size: the machine's cores, capped at 4."""
    return max(1, min(4, os.cpu_count() or 1))


class _KernelShim:
    """Quacks like ``SimKernel`` for the counters the drivers read."""

    def __init__(self) -> None:
        self.now = 0.0
        self.events_processed = 0


class _MirrorDevice:
    """Coordinator-side device view: rule bookkeeping only, no LEC work."""

    def __init__(self, name: str, plane: DevicePlane) -> None:
        self.name = name
        self.plane = plane


class ParallelNetwork:
    """A worker-pool deployment of the on-device verifiers."""

    def __init__(
        self,
        topology: Topology,
        ctx: PacketSpaceContext,
        planes: Mapping[str, DevicePlane],
        task_sets: Sequence[TaskSet],
        cpu_scale: float = 1.0,
        num_workers: Optional[int] = None,
        partition_strategy: str = "locality",
        gc_threshold: Optional[int] = None,
        predicate_index: str = "atoms",
    ) -> None:
        self.topology = topology
        self.ctx = ctx
        self.task_sets = list(task_sets)
        self.cpu_scale = cpu_scale  # interface parity; wall time is real here
        self.gc_threshold = gc_threshold  # per-worker BDD GC trigger
        self.predicate_index = predicate_index  # worker region representation
        self.kernel = _KernelShim()
        self.metrics = MetricsCollector()
        self.failed_links: Set[Tuple[str, str]] = set()
        self.last_activity: float = 0.0

        devices = sorted(topology.devices)
        workers = num_workers if num_workers else default_worker_count()
        self.num_workers = max(1, min(workers, len(devices)))
        self.assignment = partition_devices(
            topology, self.num_workers, strategy=partition_strategy
        )
        self.cut_links = cut_edges(topology, self.assignment)

        self.devices: Dict[str, _MirrorDevice] = {}
        for dev in devices:
            plane = planes.get(dev)
            if plane is None:
                plane = DevicePlane(dev, ctx)
            self.devices[dev] = _MirrorDevice(dev, plane)

        # Buffered scenario ops: (at, kind, *payload); run() executes them.
        # Workers are forked lazily, on the first run(): by then the mirror
        # planes hold every buffered install, and a fork ships that state to
        # the workers for free (copy-on-write), BDD caches warm.
        self._pending: List[tuple] = []
        self._verdicts: Dict[str, Dict[str, tuple]] = {}
        self._memory: Dict[str, int] = {}
        self._closed = False
        self._procs: Optional[List] = None
        self._conns: List = []

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------
    def _spawn(self) -> None:
        """Fork the worker pool, inheriting the coordinator's state.

        With the ``fork`` start method ``Process`` args cross into the child
        without pickling: each worker receives its partition's planes, its
        :class:`DeviceTask` objects and the (already warm) BDD context as
        live objects.  Everything *after* the fork crosses process
        boundaries as bytes — rule payloads via :mod:`.shipping`, DVM
        messages via :mod:`repro.core.wire`.
        """
        mp = multiprocessing.get_context("fork")
        self._conns = []
        self._procs = []
        for wid in range(self.num_workers):
            mine = sorted(
                dev for dev, w in self.assignment.items() if w == wid
            )
            init = {
                "wid": wid,
                "ctx": self.ctx,
                "assignment": self.assignment,
                "devices": mine,
                "planes": {dev: self.devices[dev].plane for dev in mine},
                "tasks": [
                    task_set.tasks[dev]
                    for task_set in self.task_sets
                    for dev in mine
                    if dev in task_set.tasks
                ],
                "gc_threshold": self.gc_threshold,
                "predicate_index": self.predicate_index,
            }
            parent_conn, child_conn = mp.Pipe()
            proc = mp.Process(
                target=worker_main, args=(child_conn, init), daemon=True
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
            self.metrics.worker(wid).num_devices = len(mine)
        for wid, conn in enumerate(self._conns):
            reply = conn.recv()
            if reply[0] != "ready":
                raise SimulationError(
                    f"worker {wid} failed to initialize:\n{reply[1]}"
                )

    def _dispatch(self, commands: Dict[int, tuple]) -> List[tuple]:
        """Send one command per worker (all before any recv) and merge the
        returned cross-worker messages."""
        for wid in sorted(commands):
            self._conns[wid].send(commands[wid])
        merged: List[tuple] = []
        for wid in sorted(commands):
            reply = self._conns[wid].recv()
            if reply[0] == "error":
                raise SimulationError(f"worker {wid} failed:\n{reply[1]}")
            merged.extend(reply[1])
        return merged

    def _drain(self, remote: List[tuple]) -> None:
        """Route cross-worker messages in deterministic rounds until quiet."""
        while remote:
            remote.sort(key=lambda entry: entry[0])
            inboxes: Dict[int, List[tuple]] = {}
            for entry in remote:
                wid = self.assignment[entry[1]]
                inboxes.setdefault(wid, []).append(entry)
                self.metrics.routed_messages += 1
                self.metrics.routed_bytes += len(entry[3])
            remote = self._dispatch(
                {wid: ("round", inbox) for wid, inbox in inboxes.items()}
            )

    def _broadcast(self, command: tuple) -> List[tuple]:
        return self._dispatch({wid: command for wid in range(self.num_workers)})

    # ------------------------------------------------------------------
    # Scenario drivers (SimNetwork surface)
    # ------------------------------------------------------------------
    def initialize(self, at: float = 0.0) -> None:
        self._pending.append((at, "install", None, []))

    def install_rules(self, dev: str, rules: Sequence[Rule], at: float) -> None:
        rules = list(rules)
        self.devices[dev].plane.install_many(rules)
        self._pending.append((at, "install", dev, rules))

    def apply_rule_update(
        self,
        dev: str,
        at: float,
        install: Optional[Rule] = None,
        remove_rule_id: Optional[int] = None,
    ) -> None:
        plane = self.devices[dev].plane
        if remove_rule_id is not None:
            plane.discard_rule(remove_rule_id)
        if install is not None:
            plane.install_many([install])
        self._pending.append((at, "update", dev, install, remove_rule_id))

    def change_link(self, a: str, b: str, is_up: bool, at: float) -> None:
        link = canonical_link(a, b)
        if is_up:
            self.failed_links.discard(link)
        else:
            self.failed_links.add(link)
        self._pending.append((at, "link", a, b, is_up))

    def activate_scene(self, scene_id: Optional[int], at: float) -> None:
        self._pending.append((at, "scene", scene_id))

    # ------------------------------------------------------------------
    # Run + results
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Execute buffered ops, route to quiescence, refresh caches.

        Returns accumulated wall-clock seconds (the parallel analogue of the
        serial backend's simulated last-activity time; ``until`` is accepted
        for interface parity and ignored — rounds always run to quiescence).
        """
        del until
        start = time.perf_counter()
        inherited = False
        if self._procs is None:
            # First run: every buffered install/update already sits in the
            # mirror planes, and the fork hands those planes to the workers
            # wholesale — the matching commands only need to (re)initialize.
            self._spawn()
            inherited = True
        ops = sorted(self._pending, key=lambda op: op[0])
        self._pending = []
        i = 0
        while i < len(ops):
            kind = ops[i][1]
            if kind == "install":
                batch: Dict[str, List[Rule]] = {}
                while i < len(ops) and ops[i][1] == "install":
                    _at, _kind, dev, rules = ops[i]
                    if dev is not None and rules:
                        batch.setdefault(dev, []).extend(rules)
                    i += 1
                per_worker: Dict[int, Dict[str, List[Rule]]] = {
                    wid: {} for wid in range(self.num_workers)
                }
                if not inherited:
                    for dev, rules in batch.items():
                        per_worker[self.assignment[dev]][dev] = rules
                remote = self._dispatch(
                    {
                        wid: ("burst", shipping.ship_rule_sets(dev_rules))
                        for wid, dev_rules in per_worker.items()
                    }
                )
            elif kind == "link":
                changes: List[Tuple[str, str, bool]] = []
                while i < len(ops) and ops[i][1] == "link":
                    _at, _kind, a, b, is_up = ops[i]
                    changes.append((a, b, is_up))
                    i += 1
                remote = self._broadcast(("link", changes))
            elif kind == "scene":
                _at, _kind, scene_id = ops[i]
                i += 1
                remote = self._broadcast(("scene", scene_id))
            elif kind == "update":
                _at, _kind, dev, install, remove_id = ops[i]
                i += 1
                if inherited:
                    # The fork already delivered the post-update plane; a
                    # re-initialize reaches the same fixpoint as replaying
                    # the delta would.
                    remote = self._dispatch(
                        {
                            self.assignment[dev]: (
                                "burst",
                                shipping.ship_rule_sets({}),
                            )
                        }
                    )
                else:
                    payload = (
                        shipping.ship_rules([install])
                        if install is not None
                        else None
                    )
                    remote = self._dispatch(
                        {
                            self.assignment[dev]: (
                                "update",
                                dev,
                                payload,
                                remove_id,
                            )
                        }
                    )
            else:  # pragma: no cover - guarded by the driver methods
                raise SimulationError(f"unknown buffered op {kind!r}")
            self._drain(remote)
        self.last_activity += time.perf_counter() - start
        self._refresh()
        return self.last_activity

    def _refresh(self) -> None:
        """Pull verdicts, memory and transport stats from every worker."""
        for conn in self._conns:
            conn.send(("collect",))
        self._verdicts = {}
        events = 0
        for wid, conn in enumerate(self._conns):
            reply = conn.recv()
            if reply[0] == "error":
                raise SimulationError(f"worker {wid} failed:\n{reply[1]}")
            state = reply[1]
            for invariant, verdict_map in state["verdicts"].items():
                self._verdicts.setdefault(invariant, {}).update(verdict_map)
            self._memory.update(state["memory"])
            for dev, stats in state["stats"].items():
                device_metrics = self.metrics.device(dev)
                device_metrics.events_processed = stats["events_processed"]
                device_metrics.messages_sent = stats["messages_sent"]
                device_metrics.bytes_sent = stats["bytes_sent"]
                device_metrics.messages_received = stats["messages_received"]
                device_metrics.bytes_received = stats["bytes_received"]
                events += stats["events_processed"]
            info = state["worker"]
            worker_metrics = self.metrics.worker(wid)
            worker_metrics.busy_time = info["busy"]
            worker_metrics.rounds = info["rounds"]
            worker_metrics.num_devices = info["devices"]
            engine = state.get("engine")
            if engine is not None:
                self.metrics.record_engine(f"worker{wid}", engine)
            atom_profile = state.get("atom_index")
            if atom_profile is not None:
                self.metrics.record_atom_index(f"worker{wid}", atom_profile)
        self.kernel.events_processed = events
        self.metrics.parallel_wall = self.last_activity

    def _decode_violation(self, raw: Dict[str, object]) -> Violation:
        return Violation(
            ingress=raw["ingress"],  # type: ignore[arg-type]
            region=deserialize_predicate(self.ctx, raw["region"]),  # type: ignore[arg-type]
            counts=raw["counts"],  # type: ignore[arg-type]
            message=raw["message"],  # type: ignore[arg-type]
        )

    def verdicts(self, invariant: str) -> Dict[str, Tuple[bool, list]]:
        out: Dict[str, Tuple[bool, list]] = {}
        for ingress, (ok, violations) in self._verdicts.get(
            invariant, {}
        ).items():
            out[ingress] = (
                ok,
                [self._decode_violation(raw) for raw in violations],
            )
        return out

    def all_hold(self, invariant: str) -> bool:
        verdicts = self._verdicts.get(invariant, {})
        return bool(verdicts) and all(
            ok for ok, _violations in verdicts.values()
        )

    def violations(self, invariant: str) -> list:
        out = []
        for _ingress, (_ok, violations) in self.verdicts(invariant).items():
            out.extend(violations)
        return out

    def snapshot_memory(self) -> None:
        for dev, total in self._memory.items():
            metrics = self.metrics.device(dev)
            metrics.memory_proxy_peak = max(metrics.memory_proxy_peak, total)

    def snapshot_engines(self) -> None:
        """Interface parity with ``SimNetwork``: worker engine profiles are
        already pulled into the metrics on every ``_refresh``."""
        if self._procs is not None:
            self._refresh()

    def source_fingerprints(self) -> Dict[tuple, object]:
        """Canonical source-node counting results across all workers."""
        for conn in self._conns:
            conn.send(("counts",))
        merged: Dict[tuple, object] = {}
        for wid, conn in enumerate(self._conns):
            reply = conn.recv()
            if reply[0] == "error":
                raise SimulationError(f"worker {wid} failed:\n{reply[1]}")
            merged.update(reply[1])
        return merged

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._procs is None:
            return
        for conn in self._conns:
            try:
                conn.send(("exit",))
            except (OSError, BrokenPipeError):
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - hung-worker backstop
                proc.terminate()
        for conn in self._conns:
            conn.close()

    def __enter__(self) -> "ParallelNetwork":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC backstop
        try:
            self.close()
        except Exception:
            pass
