"""The process-backend coordinator: a drop-in for :class:`SimNetwork`.

:class:`ParallelNetwork` exposes the same scenario-driver surface the serial
simulator does (``install_rules`` / ``apply_rule_update`` / ``change_link`` /
``activate_scene`` / ``run`` / ``verdicts`` ...), so :class:`TulkunRunner`
drives either interchangeably.  Underneath, devices are partitioned over a
pool of worker processes (:mod:`repro.parallel.worker`) that is *persistent*
(:mod:`repro.parallel.pool`): the first deployment forks it with live
copy-on-write state, later deployments reset the existing workers onto new
planes while their BDD contexts stay warm.

Cross-worker DVM traffic is routed **without barriers**: every command sent
to a worker produces exactly one reply carrying that worker's outbound
frames (packed atom-id runs, :mod:`repro.parallel.atomwire`, riding a
shared-memory ring).  The coordinator forwards each frame to its destination
worker as soon as that worker is idle — a fast worker keeps receiving while
a slow one is still computing.  Quiescence is credit-counted: the network is
quiet exactly when no command is outstanding and no frame is pending.

Results are pulled **lazily**: ``run`` only marks state dirty; the first
verdict/metric accessor triggers a delta collect in which workers ship just
the verifiers and devices touched since the last collect.

Two semantic differences from the serial simulator, both deliberate:

* **Time is real.**  ``run`` returns accumulated wall-clock seconds, not a
  simulated clock — the backend exists to measure (and deliver) actual
  parallel speedup, so ``cpu_scale`` is accepted but ignored.
* **Delivery order is arrival order**, not latency-ordered.  The DVM
  fixpoint is order-independent, so verdicts and counting results are
  byte-identical to the serial backend's (``tests/test_parallel_backend.py``
  pins this).
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.bdd.predicate import PacketSpaceContext
from repro.bdd.serialize import deserialize_predicate
from repro.core.result import Violation
from repro.core.tasks import TaskSet
from repro.dataplane.device import DevicePlane
from repro.dataplane.rule import Rule
from repro.errors import SimulationError
from repro.parallel import shipping
from repro.parallel.partition import cut_edges, partition_devices
from repro.parallel.pool import WorkerPool
from repro.parallel.worker import worker_main
from repro.sim.metrics import MetricsCollector
from repro.topology.graph import Topology, canonical_link

__all__ = ["ParallelNetwork", "default_worker_count"]


def default_worker_count() -> int:
    """A sane pool size: the machine's cores, capped at 4."""
    return max(1, min(4, os.cpu_count() or 1))


class _KernelShim:
    """Quacks like ``SimKernel`` for the counters the drivers read.

    ``events_processed`` is a property so that reading it forces the lazy
    refresh — drivers that only look at counters still see current state."""

    def __init__(self, network: "ParallelNetwork") -> None:
        self.now = 0.0
        self._network = network

    @property
    def events_processed(self) -> int:
        self._network._refresh_if_needed()
        return self._network._events


class _MirrorDevice:
    """Coordinator-side device view: rule bookkeeping only, no LEC work."""

    def __init__(self, name: str, plane: DevicePlane) -> None:
        self.name = name
        self.plane = plane


class ParallelNetwork:
    """A worker-pool deployment of the on-device verifiers."""

    def __init__(
        self,
        topology: Topology,
        ctx: PacketSpaceContext,
        planes: Mapping[str, DevicePlane],
        task_sets: Sequence[TaskSet],
        cpu_scale: float = 1.0,
        num_workers: Optional[int] = None,
        partition_strategy: str = "locality",
        gc_threshold: Optional[int] = None,
        predicate_index: str = "atoms",
        pool: Optional[WorkerPool] = None,
        use_shm: bool = True,
        tracer=None,
        slice_groups: Optional[Sequence[Sequence[str]]] = None,
    ) -> None:
        """``pool`` attaches an existing (possibly already spawned)
        :class:`WorkerPool` — the persistent-worker path.  Without one the
        network creates and owns a private pool, closed with the network.

        ``tracer`` optionally collects coordinator/worker IPC spans
        (``flush`` / ``drain`` / ``idle`` / ``quiescence-probe``) for
        per-worker occupancy timelines.

        ``slice_groups`` (slice-footprint components from
        :meth:`repro.slicing.SliceRegistry.device_groups`) switches the
        partition to the slice-aligned strategy: each component stays whole
        on one worker, so disjoint-footprint slices are verified by
        different shard workers with no cross-worker DVM traffic between
        them."""
        self.topology = topology
        self.ctx = ctx
        self.task_sets = list(task_sets)
        self.cpu_scale = cpu_scale  # interface parity; wall time is real here
        self.gc_threshold = gc_threshold  # per-worker BDD GC trigger
        self.predicate_index = predicate_index  # worker region representation
        self.use_shm = use_shm
        self.kernel = _KernelShim(self)
        self.metrics = MetricsCollector()
        self.failed_links: Set[Tuple[str, str]] = set()
        self.last_activity: float = 0.0
        self.tracer = tracer if (tracer is not None and tracer.enabled) else None

        devices = sorted(topology.devices)
        workers = num_workers if num_workers else default_worker_count()
        self.num_workers = max(1, min(workers, len(devices)))
        if slice_groups is not None:
            self.assignment = partition_devices(
                topology, self.num_workers, strategy="slices",
                groups=slice_groups,
            )
        else:
            self.assignment = partition_devices(
                topology, self.num_workers, strategy=partition_strategy
            )
        self.cut_links = cut_edges(topology, self.assignment)

        self.devices: Dict[str, _MirrorDevice] = {}
        for dev in devices:
            plane = planes.get(dev)
            if plane is None:
                plane = DevicePlane(dev, ctx)
            self.devices[dev] = _MirrorDevice(dev, plane)

        self.pool = pool
        self._owns_pool = pool is None
        self._spawned = False  # this *network* attached to the pool yet?
        self._idle_since: Dict[int, float] = {}

        # Update-shipping dictionary: churn overwhelmingly reinstalls match
        # predicates already on the wire (route refreshes, re-points and
        # restores reuse the installed match), so each distinct match is
        # serialized once, shipped to a given worker once, and referenced
        # by id thereafter — neither side touches the BDD codec again.
        self._match_ids: Dict[object, int] = {}
        self._match_payloads: List[bytes] = []
        self._matches_shipped: Set[Tuple[int, int]] = set()
        # Buffered scenario ops: (at, kind, *payload); run() executes them.
        # Workers attach lazily, on the first run(): by then the mirror
        # planes hold every buffered install, and (on a fresh pool) a fork
        # ships that state to the workers for free, BDD caches warm.
        self._pending: List[tuple] = []
        # Lazily-merged worker state: invariant -> dev -> {ingress: entry}.
        self._verdict_parts: Dict[str, Dict[str, dict]] = {}
        self._dev_stats: Dict[str, Dict[str, int]] = {}
        self._memory: Dict[str, int] = {}
        self._events = 0
        self._dirty = False
        self._closed = False

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------
    def _worker_devices(self, wid: int) -> List[str]:
        return sorted(dev for dev, w in self.assignment.items() if w == wid)

    def _worker_tasks(self, mine: Sequence[str]) -> list:
        return [
            task_set.tasks[dev]
            for task_set in self.task_sets
            for dev in mine
            if dev in task_set.tasks
        ]

    def _ensure_workers(self) -> bool:
        """Attach this deployment to the pool; spawn or reset as needed.

        Returns True when the workers inherited the mirror planes via fork
        (so buffered installs are already in place and the matching commands
        only need to re-initialize)."""
        if self._spawned:
            return False
        pool = self.pool
        if pool is None:
            pool = self.pool = WorkerPool(self.num_workers, use_shm=self.use_shm)
        if pool.broken or pool.closed:
            raise SimulationError(
                "cannot deploy onto a broken or closed worker pool"
            )
        if not pool.spawned:
            # Fresh pool: fork with the coordinator's live state.  With the
            # ``fork`` start method Process args cross into the child without
            # pickling — each worker receives its partition's planes, tasks
            # and the (already warm) BDD context as live objects.  Everything
            # *after* the fork crosses as bytes: rules via :mod:`.shipping`,
            # DVM messages via :mod:`.atomwire`.
            inits = []
            for wid in range(self.num_workers):
                mine = self._worker_devices(wid)
                inits.append(
                    {
                        "wid": wid,
                        "ctx": self.ctx,
                        "assignment": self.assignment,
                        "planes": {
                            dev: self.devices[dev].plane for dev in mine
                        },
                        "tasks": self._worker_tasks(mine),
                        "gc_threshold": self.gc_threshold,
                        "predicate_index": self.predicate_index,
                    }
                )
            pool.spawn(inits, worker_main, self.assignment)
            inherited = True
        else:
            # Warm pool: the processes (and their BDD contexts) survive;
            # a reset re-points each worker at this deployment's planes and
            # tasks.  Rules arrive later as explicit install bursts.
            if pool.num_workers != self.num_workers:
                raise SimulationError(
                    f"persistent pool has {pool.num_workers} workers, "
                    f"deployment needs {self.num_workers}"
                )
            if pool.assignment != self.assignment:
                raise SimulationError(
                    "persistent pool partition does not match this deployment"
                )
            pool.generations += 1
            for wid in range(self.num_workers):
                mine = self._worker_devices(wid)
                pool.send(
                    wid,
                    (
                        "reset",
                        {
                            "devices": mine,
                            "tasks": shipping.ship_tasks(
                                self._worker_tasks(mine),
                                predicate_index=self.predicate_index,
                            ),
                        },
                    ),
                )
            for wid in range(self.num_workers):
                reply, _payloads = pool.recv(wid)
                if reply[0] == "error":
                    raise SimulationError(
                        f"worker {wid} failed to reset:\n{reply[1]}"
                    )
            inherited = False
        for wid in range(self.num_workers):
            self.metrics.worker(wid).num_devices = len(
                self._worker_devices(wid)
            )
        self._spawned = True
        return inherited

    # ------------------------------------------------------------------
    # Non-barrier command execution
    # ------------------------------------------------------------------
    def _span(self, track: str, name: str, start: float, **fields) -> None:
        if self.tracer is not None:
            self.tracer.ipc_span(
                track, name, start, self.tracer.ipc_clock(), **fields
            )

    def _execute(
        self,
        commands: Dict[int, tuple],
        payloads: Optional[Dict[int, Sequence[bytes]]] = None,
    ) -> None:
        """Run one batch of commands and route the resulting cross-worker
        frames until the network is quiescent — without barriers.

        Invariants that make this correct and deadlock-free:

        * at most one command is outstanding per worker, and every command
          yields exactly one reply (so pipe writes never mutually block);
        * a reply carries all frames the command produced, each of which
          becomes a pending inbox delivery — credit counting: quiescence is
          exactly (no outstanding commands) ∧ (no pending frames);
        * frames queue per destination and are dispatched the moment the
          destination goes idle, so routing never waits for a round.
        """
        pool = self.pool
        tracer = self.tracer
        outstanding: Dict[int, Tuple[float, str]] = {}
        pending: Dict[int, List[bytes]] = {}
        blobs = payloads or {}

        def dispatch(wid: int, command: tuple, frames: Sequence[bytes], label: str) -> None:
            if tracer is not None:
                idle_from = self._idle_since.pop(wid, None)
                if idle_from is not None:
                    self._span(f"worker{wid}", "idle", idle_from)
            pool.send(wid, command, frames)
            sent_at = tracer.ipc_clock() if tracer is not None else 0.0
            outstanding[wid] = (sent_at, label)

        for wid in sorted(commands):
            dispatch(wid, commands[wid], blobs.get(wid, ()), commands[wid][0])
        while outstanding or pending:
            for wid in sorted(pending):
                if wid not in outstanding:
                    dispatch(wid, ("inbox",), pending.pop(wid), "drain")
            probe_start = tracer.ipc_clock() if tracer is not None else 0.0
            ready = pool.wait(sorted(outstanding))
            if tracer is not None:
                self._span(
                    "coordinator",
                    "quiescence-probe",
                    probe_start,
                    outstanding=len(outstanding),
                    pending=len(pending),
                )
            for wid in ready:
                sent_at, label = outstanding.pop(wid)
                reply, frames = pool.recv(wid)
                if reply[0] == "error":
                    raise SimulationError(f"worker {wid} failed:\n{reply[1]}")
                if tracer is not None:
                    self._span(f"worker{wid}", label, sent_at)
                    self._idle_since[wid] = tracer.ipc_clock()
                routed = reply[1]
                if routed:
                    flush_start = (
                        tracer.ipc_clock() if tracer is not None else 0.0
                    )
                    for (dst, count), frame in zip(routed, frames):
                        pending.setdefault(dst, []).append(frame)
                        self.metrics.routed_messages += count
                        self.metrics.routed_bytes += len(frame)
                    if tracer is not None:
                        self._span(
                            "coordinator",
                            "flush",
                            flush_start,
                            src=wid,
                            frames=len(routed),
                        )

    def _control(self, command: tuple) -> List[object]:
        """Synchronous broadcast for state queries (collect/counts)."""
        pool = self.pool
        for wid in range(self.num_workers):
            pool.send(wid, command)
        out: List[object] = []
        for wid in range(self.num_workers):
            reply, _payloads = pool.recv(wid)
            if reply[0] == "error":
                raise SimulationError(f"worker {wid} failed:\n{reply[1]}")
            out.append(reply[1])
        return out

    # ------------------------------------------------------------------
    # Scenario drivers (SimNetwork surface)
    # ------------------------------------------------------------------
    def initialize(self, at: float = 0.0) -> None:
        self._pending.append((at, "install", None, []))

    def install_rules(self, dev: str, rules: Sequence[Rule], at: float) -> None:
        rules = list(rules)
        self.devices[dev].plane.install_many(rules)
        self._pending.append((at, "install", dev, rules))

    def apply_rule_update(
        self,
        dev: str,
        at: float,
        install: Optional[Rule] = None,
        remove_rule_id: Optional[int] = None,
        only: Optional[Set[str]] = None,
    ) -> None:
        plane = self.devices[dev].plane
        if remove_rule_id is not None:
            plane.discard_rule(remove_rule_id)
        if install is not None:
            plane.install_many([install])
        only_wire = tuple(sorted(only)) if only is not None else None
        self._pending.append(
            (at, "update", dev, install, remove_rule_id, only_wire)
        )

    def apply_rule_updates(
        self, dev: str, at: float, ops, only: Optional[Set[str]] = None
    ) -> None:
        """Batched per-device rule updates (ordered remove/install ops).

        The coordinator mirrors the net plane state immediately; each op
        ships to the owning worker as an ordinary update at the same
        timestamp, so a coalesced burst and the equivalent op-at-a-time
        stream reach the same fixpoint (``sorted`` is stable, preserving
        the in-batch order).

        ``only`` restricts the workers' LEC-delta hand-off to the named
        invariants (slicing: untouched verifiers provably no-op)."""
        for kind, arg in ops:
            if kind == "remove":
                self.apply_rule_update(dev, at, remove_rule_id=arg, only=only)
            elif kind == "install":
                self.apply_rule_update(dev, at, install=arg, only=only)
            else:
                raise SimulationError(f"unknown rule op {kind!r}")

    @property
    def converged(self) -> bool:
        """Quiescence: the worker pool has no buffered scenario ops.

        The process backend has no lossy transport — ``run()`` always
        drains routing to a fixpoint — so convergence is simply "nothing
        left to execute"."""
        return not self._pending

    def pool_stats(self) -> Dict[str, int]:
        """Persistent-pool reuse counters (serving-mode telemetry)."""
        pool = self.pool
        if pool is None:
            return {"workers": self.num_workers, "generations": 0}
        return {
            "workers": pool.num_workers,
            "generations": int(getattr(pool, "generations", 0)),
        }

    def change_link(self, a: str, b: str, is_up: bool, at: float) -> None:
        link = canonical_link(a, b)
        if is_up:
            self.failed_links.discard(link)
        else:
            self.failed_links.add(link)
        self._pending.append((at, "link", a, b, is_up))

    def activate_scene(self, scene_id: Optional[int], at: float) -> None:
        self._pending.append((at, "scene", scene_id))

    # ------------------------------------------------------------------
    # Run + results
    # ------------------------------------------------------------------
    def _ship_update(self, wid: int, install: Rule) -> Dict[str, object]:
        """One update's wire payload for worker ``wid``.

        The match predicate ships as serialized BDD bytes the first time
        worker ``wid`` sees it and as a dictionary reference afterwards;
        the worker caches the decoded predicate under the same id."""
        mid = self._match_ids.get(install.match)
        if mid is None:
            mid = self._match_ids[install.match] = len(self._match_payloads)
            self._match_payloads.append(
                shipping.ship_rules([install])["blob"]
            )
        payload: Dict[str, object] = {
            "meta": (install.action, install.priority, install.rule_id),
            "mid": mid,
        }
        if (wid, mid) not in self._matches_shipped:
            self._matches_shipped.add((wid, mid))
            payload["blob"] = self._match_payloads[mid]
        return payload

    def run(self, until: Optional[float] = None) -> float:
        """Execute buffered ops and route to quiescence.

        Returns accumulated wall-clock seconds (the parallel analogue of the
        serial backend's simulated last-activity time; ``until`` is accepted
        for interface parity and ignored — routing always runs to
        quiescence).  Verdicts and metrics are *not* pulled here: the run
        only marks them dirty, and the first accessor triggers a delta
        collect."""
        del until
        start = time.perf_counter()
        inherited = self._ensure_workers()
        ops = sorted(self._pending, key=lambda op: op[0])
        self._pending = []
        i = 0
        while i < len(ops):
            kind = ops[i][1]
            if kind == "install":
                batch: Dict[str, List[Rule]] = {}
                while i < len(ops) and ops[i][1] == "install":
                    _at, _kind, dev, rules = ops[i]
                    if dev is not None and rules:
                        batch.setdefault(dev, []).extend(rules)
                    i += 1
                per_worker: Dict[int, Dict[str, List[Rule]]] = {
                    wid: {} for wid in range(self.num_workers)
                }
                if not inherited:
                    for dev, rules in batch.items():
                        per_worker[self.assignment[dev]][dev] = rules
                self._execute(
                    {
                        wid: ("burst", shipping.ship_rule_sets(dev_rules))
                        for wid, dev_rules in per_worker.items()
                    }
                )
            elif kind == "link":
                changes: List[Tuple[str, str, bool]] = []
                while i < len(ops) and ops[i][1] == "link":
                    _at, _kind, a, b, is_up = ops[i]
                    changes.append((a, b, is_up))
                    i += 1
                self._execute(
                    {
                        wid: ("link", changes)
                        for wid in range(self.num_workers)
                    }
                )
            elif kind == "scene":
                _at, _kind, scene_id = ops[i]
                i += 1
                self._execute(
                    {
                        wid: ("scene", scene_id)
                        for wid in range(self.num_workers)
                    }
                )
            elif kind == "update":
                # Consecutive updates coalesce into one batched command per
                # owning worker; the DVM fixpoint is batching-independent,
                # so one drain after n updates converges identically.
                batches: Dict[int, List[tuple]] = {}
                while i < len(ops) and ops[i][1] == "update":
                    _at, _kind, dev, install, remove_id, only = ops[i]
                    i += 1
                    wid = self.assignment[dev]
                    payload = (
                        self._ship_update(wid, install)
                        if install is not None
                        else None
                    )
                    batches.setdefault(wid, []).append(
                        (dev, payload, remove_id, only)
                    )
                if inherited:
                    # The fork already delivered the post-update planes; a
                    # re-initialize reaches the same fixpoint as replaying
                    # the deltas would.
                    self._execute(
                        {
                            wid: ("burst", shipping.ship_rule_sets({}))
                            for wid in sorted(batches)
                        }
                    )
                else:
                    self._execute(
                        {
                            wid: ("update", updates)
                            for wid, updates in batches.items()
                        }
                    )
            else:  # pragma: no cover - guarded by the driver methods
                raise SimulationError(f"unknown buffered op {kind!r}")
        self.last_activity += time.perf_counter() - start
        self.metrics.parallel_wall = self.last_activity
        self._dirty = True
        return self.last_activity

    def _refresh_if_needed(self) -> None:
        """Merge delta collects from every worker into the cached view.

        Each worker ships only the verifiers/devices touched since its last
        collect (everything on the first), so a refresh after one
        incremental update costs O(touched), not O(network)."""
        if not self._dirty or not self._spawned:
            return
        self._dirty = False
        for wid, state in enumerate(self._control(("collect",))):
            for dev, invariant, entry in state["verdicts"]:
                self._verdict_parts.setdefault(invariant, {})[dev] = entry
            self._memory.update(state["memory"])
            for dev, stats in state["stats"].items():
                self._dev_stats[dev] = stats
                device_metrics = self.metrics.device(dev)
                device_metrics.events_processed = stats["events_processed"]
                device_metrics.messages_sent = stats["messages_sent"]
                device_metrics.bytes_sent = stats["bytes_sent"]
                device_metrics.messages_received = stats["messages_received"]
                device_metrics.bytes_received = stats["bytes_received"]
            info = state["worker"]
            worker_metrics = self.metrics.worker(wid)
            worker_metrics.busy_time = info["busy"]
            worker_metrics.rounds = info["rounds"]
            worker_metrics.num_devices = info["devices"]
            engine = state.get("engine")
            if engine is not None:
                self.metrics.record_engine(f"worker{wid}", engine)
            atom_profile = state.get("atom_index")
            if atom_profile is not None:
                self.metrics.record_atom_index(f"worker{wid}", atom_profile)
        self._events = sum(
            stats["events_processed"] for stats in self._dev_stats.values()
        )

    def _decode_violation(self, raw: Dict[str, object]) -> Violation:
        return Violation(
            ingress=raw["ingress"],  # type: ignore[arg-type]
            region=deserialize_predicate(self.ctx, raw["region"]),  # type: ignore[arg-type]
            counts=raw["counts"],  # type: ignore[arg-type]
            message=raw["message"],  # type: ignore[arg-type]
        )

    def _merged_verdicts(self, invariant: str) -> Dict[str, tuple]:
        self._refresh_if_needed()
        parts = self._verdict_parts.get(invariant, {})
        merged: Dict[str, tuple] = {}
        for dev in sorted(parts):
            merged.update(parts[dev])
        return merged

    def verdicts(
        self, invariant: str, within: Optional[Sequence[str]] = None
    ) -> Dict[str, Tuple[bool, list]]:
        # ``within`` is interface parity with the serial backend; the merged
        # view is already per-invariant (delta collects touch O(footprint)).
        del within
        out: Dict[str, Tuple[bool, list]] = {}
        for ingress, (ok, violations) in self._merged_verdicts(
            invariant
        ).items():
            out[ingress] = (
                ok,
                [self._decode_violation(raw) for raw in violations],
            )
        return out

    def all_hold(
        self, invariant: str, within: Optional[Sequence[str]] = None
    ) -> bool:
        del within
        verdicts = self._merged_verdicts(invariant)
        return bool(verdicts) and all(
            ok for ok, _violations in verdicts.values()
        )

    def violations(self, invariant: str) -> list:
        out = []
        for _ingress, (_ok, violations) in self.verdicts(invariant).items():
            out.extend(violations)
        return out

    def snapshot_memory(self) -> None:
        self._refresh_if_needed()
        for dev, total in self._memory.items():
            metrics = self.metrics.device(dev)
            metrics.memory_proxy_peak = max(metrics.memory_proxy_peak, total)

    def snapshot_engines(self) -> None:
        """Pull fresh per-worker engine/atom-index profiles into metrics."""
        if self._spawned:
            self._dirty = True  # profiles ride the collect; force a fresh one
            self._refresh_if_needed()

    def source_fingerprints(self) -> Dict[tuple, object]:
        """Canonical source-node counting results across all workers."""
        if not self._spawned:
            return {}
        merged: Dict[tuple, object] = {}
        for counts in self._control(("counts",)):
            merged.update(counts)
        return merged

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Detach from the pool; private pools shut down with the network.

        An attached (runner-owned) pool stays alive — its workers keep
        their warm BDD contexts for the next deployment to reset onto."""
        if self._closed:
            return
        self._closed = True
        if self._owns_pool and self.pool is not None:
            self.pool.close()

    def __enter__(self) -> "ParallelNetwork":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC backstop
        try:
            self.close()
        except Exception:
            pass
