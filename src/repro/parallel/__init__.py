"""Process-parallel execution backend for the on-device verifiers.

The serial simulator (:mod:`repro.sim`) measures Tulkun's behaviour under a
modelled clock; this package actually *runs* the per-device verification in
parallel: devices are partitioned across a pool of worker processes, verifier
state ships as canonical BDD bytes (:mod:`repro.bdd.serialize`), and the
coordinator routes cross-worker DVM messages in deterministic rounds.
Select it with ``TulkunRunner(..., backend="process")`` or
``python -m repro simulate --backend process``.
"""

from repro.parallel.coordinator import ParallelNetwork, default_worker_count
from repro.parallel.parity import canonical_counts, canonical_source_counts
from repro.parallel.partition import cut_edges, partition_devices

__all__ = [
    "ParallelNetwork",
    "default_worker_count",
    "canonical_counts",
    "canonical_source_counts",
    "cut_edges",
    "partition_devices",
]
