"""Process-parallel execution backend for the on-device verifiers.

The serial simulator (:mod:`repro.sim`) measures Tulkun's behaviour under a
modelled clock; this package actually *runs* the per-device verification in
parallel: devices are partitioned across a *persistent* pool of worker
processes (:mod:`.pool` — spawned once, reset across deployments), rule and
task state ships as canonical BDD bytes (:mod:`repro.bdd.serialize`),
cross-worker DVM messages travel as packed atom-id frames (:mod:`.atomwire`)
over shared-memory rings (:mod:`.shm`), and the coordinator routes them
without barriers, credit-counting quiescence.  The DVM fixpoint is
order-independent, so verdicts stay byte-identical to the serial backend's.
Select it with ``TulkunRunner(..., backend="process")`` or
``python -m repro simulate --backend process``.
"""

from repro.parallel.coordinator import ParallelNetwork, default_worker_count
from repro.parallel.parity import canonical_counts, canonical_source_counts
from repro.parallel.partition import cut_edges, partition_devices
from repro.parallel.pool import WorkerPool
from repro.parallel.shm import ShmRing, shared_memory_available

__all__ = [
    "ParallelNetwork",
    "default_worker_count",
    "canonical_counts",
    "canonical_source_counts",
    "cut_edges",
    "partition_devices",
    "WorkerPool",
    "ShmRing",
    "shared_memory_available",
]
