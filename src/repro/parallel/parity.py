"""Context-independent fingerprints of verification state.

The parallel backend promises *byte-identical* results to the serial
simulator, but its verifiers live in different processes with different BDD
managers, so object identity is useless for comparison.  Canonical ROBDDs
give the portable alternative: two predicates over the same
:class:`HeaderLayout` denote the same packet set iff their serialized node
streams are equal.  A source node's counting results are canonicalized by
merging pieces with equal count sets (the split into disjoint pieces is an
evaluation-order artifact; the union is not), serializing each merged
predicate, and sorting.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.bdd.predicate import Predicate
from repro.bdd.serialize import serialize_predicate
from repro.core.counting import CountSet

__all__ = ["canonical_counts", "canonical_source_counts"]


def canonical_counts(
    pieces: Optional[Sequence[Tuple[Predicate, CountSet]]]
) -> Optional[Tuple[Tuple[bytes, CountSet], ...]]:
    """Merge-by-countset fingerprint of one ``(predicate, counts)`` list."""
    if pieces is None:
        return None
    merged: Dict[CountSet, Predicate] = {}
    for pred, countset in pieces:
        prev = merged.get(countset)
        merged[countset] = pred if prev is None else prev | pred
    canon = [
        (serialize_predicate(pred), countset)
        for countset, pred in merged.items()
    ]
    canon.sort()
    return tuple(canon)


def canonical_source_counts(verifiers) -> Dict[Tuple[str, str, str], object]:
    """Fingerprint every source node's counts across a verifier collection.

    ``verifiers`` maps ``(dev, invariant_name) -> OnDeviceVerifier`` (the
    shape both the serial :class:`SimNetwork` and the workers keep).  Keys of
    the result are ``(invariant_name, dev, ingress)``.
    """
    counts: Dict[Tuple[str, str, str], object] = {}
    for (dev, inv_name), verifier in verifiers.items():
        for node in verifier.nodes.values():
            if node.is_source_for is None:
                continue
            counts[(inv_name, dev, node.is_source_for)] = canonical_counts(
                verifier.source_counts(node.is_source_for)
            )
    return counts
