"""Packed DVM wire frames: cross-worker messages as atom-id runs.

The BSP backend shipped every cross-worker DVM message as an individually
pickled ``(key, dst, invariant, bdd-bytes)`` tuple, re-serializing the full
ROBDD of every region on every hop.  But since the atom index made AtomSets
the region representation, a region *is* a set of small integers — the BDD
bytes are pure redundancy once the peer knows what each atom id denotes.

This codec ships that knowledge exactly once.  Each (sender worker →
receiver worker) channel maintains an **atom dictionary**:

* the sender tracks which of its atom ids the receiver has seen; the first
  frame that references a new id carries the id's *extent* (canonical BDD
  bytes) as a one-time definition;
* the receiver atomizes each definition into its own index once and caches
  ``sender id -> local AtomSet``; every later reference is a dict hit.

Soundness rests on three :class:`~repro.core.atomindex.AtomIndex`
invariants: atom ids are never reused, an id's extent never changes while
it is a leaf (splits mint fresh ids; a merge revives the parent id with its
original extent), and splitting preserves denotation — so a definition
shipped once stays valid for the lifetime of the channel, across worker
resets and engine GC sweeps alike.

Regions then travel as *runs*: the sorted leaf-id set encoded as
``(start, length)`` pairs packed into a little-endian ``u32`` array (atom
ids are dense — consecutive splits mint consecutive ids — so runs compress
hard).  Decoding unions the cached local AtomSets and converts through
:meth:`AtomIndex.to_predicate`, whose canonical-ROBDD output makes the
decoded message byte-identical to one decoded from full BDD bytes — the
property the parity suites pin.

Frame layout (integers are LEB128 varints unless sized)::

    header  "<4sBBHIII": magic b"TKW1", version, flags, sender wid,
                          frame seq (per channel), entry count, def count
    strtab  varint n, repeated [varint len, utf-8 bytes]
    entries repeated:
        varint src_idx, varint msg_seq, varint dst_idx, varint inv_idx
        message:
            u8 type (1=UPDATE, 2=SUBSCRIBE)
            varint parent, varint child
            UPDATE:    region withdrawn, varint n, repeated [region, counts]
            SUBSCRIBE: region pred_from, region pred_to

    region := u8 kind
        kind 0 (BDD bytes):  varint len, canonical ROBDD stream
        kind 1 (atom runs):  varint ndefs,
                             repeated [varint atom_id, varint len, extent],
                             varint nbytes, packed u32 (start, length) pairs

Frames are sequenced per channel and must be decoded in order (definitions
reference earlier ones); the pipe/ring transport is FIFO, and the decoder
enforces the sequence.  A pure-Python ``struct`` packer mirrors the
``array``-based fast path bit for bit (:func:`set_fallback_codec` flips the
module to it; the parity tests diff both).
"""

from __future__ import annotations

import struct
import sys
from array import array
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bdd.predicate import PacketSpaceContext, Predicate
from repro.bdd.serialize import (
    decode_varint,
    deserialize_predicate,
    encode_varint,
    serialize_predicate,
)
from repro.core.dvm import SubscribeMessage, UpdateMessage
from repro.errors import SerializationError

__all__ = [
    "FrameEncoder",
    "FrameDecoder",
    "pack_id_runs",
    "unpack_id_runs",
    "pack_id_runs_py",
    "unpack_id_runs_py",
    "set_fallback_codec",
    "ids_to_runs",
    "runs_to_ids",
]

_MAGIC = b"TKW1"
_VERSION = 1
_HEADER = struct.Struct("<4sBBHIII")

_UPDATE = 1
_SUBSCRIBE = 2

_KIND_BDD = 0
_KIND_RUNS = 1

_U32_MAX = (1 << 32) - 1


# ----------------------------------------------------------------------
# Run-length packing of sorted atom-id sets
# ----------------------------------------------------------------------
def ids_to_runs(ids_sorted: Sequence[int]) -> List[int]:
    """Flatten a sorted id sequence into ``[start, length, ...]`` pairs."""
    runs: List[int] = []
    i = 0
    n = len(ids_sorted)
    while i < n:
        start = ids_sorted[i]
        j = i + 1
        while j < n and ids_sorted[j] == ids_sorted[j - 1] + 1:
            j += 1
        runs.append(start)
        runs.append(j - i)
        i = j
    return runs


def runs_to_ids(runs: Sequence[int]) -> List[int]:
    """Inverse of :func:`ids_to_runs`."""
    out: List[int] = []
    for i in range(0, len(runs), 2):
        start, length = runs[i], runs[i + 1]
        out.extend(range(start, start + length))
    return out


def pack_id_runs(ids_sorted: Sequence[int]) -> bytes:
    """Pack sorted atom ids as little-endian u32 ``(start, length)`` pairs."""
    arr = array("I", ids_to_runs(ids_sorted))
    if sys.byteorder != "little":  # pragma: no cover - big-endian hosts
        arr.byteswap()
    return arr.tobytes()


def unpack_id_runs(data: bytes) -> List[int]:
    """Inverse of :func:`pack_id_runs`."""
    if len(data) % 8:
        raise SerializationError("atom-run payload is not (start,len) pairs")
    arr = array("I")
    arr.frombytes(data)
    if sys.byteorder != "little":  # pragma: no cover - big-endian hosts
        arr.byteswap()
    return runs_to_ids(arr)


def pack_id_runs_py(ids_sorted: Sequence[int]) -> bytes:
    """Pure-``struct`` packer, bit-compatible with :func:`pack_id_runs`."""
    runs = ids_to_runs(ids_sorted)
    return struct.pack("<%dI" % len(runs), *runs)


def unpack_id_runs_py(data: bytes) -> List[int]:
    """Pure-``struct`` unpacker, bit-compatible with :func:`unpack_id_runs`."""
    if len(data) % 8:
        raise SerializationError("atom-run payload is not (start,len) pairs")
    return runs_to_ids(struct.unpack("<%dI" % (len(data) // 4), data))


# The active packer pair; set_fallback_codec swaps in the pure-Python one so
# the parity tests can prove both produce (and accept) identical bytes.
_pack = pack_id_runs
_unpack = unpack_id_runs


def set_fallback_codec(enabled: bool) -> None:
    """Switch the module to the pure-Python packer (for parity testing)."""
    global _pack, _unpack
    if enabled:
        _pack, _unpack = pack_id_runs_py, unpack_id_runs_py
    else:
        _pack, _unpack = pack_id_runs, unpack_id_runs


# ----------------------------------------------------------------------
# Encoder
# ----------------------------------------------------------------------
class FrameEncoder:
    """Per-sender frame encoder with one atom dictionary per destination."""

    def __init__(self, wid: int, index=None) -> None:
        self.wid = wid
        self.index = index  # AtomIndex, or None in bdd mode
        self._sent: Dict[int, set] = {}  # dst wid -> atom ids defined there
        self._seq: Dict[int, int] = {}  # dst wid -> next frame seq
        self.stats = {
            "frames": 0,
            "entries": 0,
            "defs_shipped": 0,
            "bytes": 0,
            "bdd_regions": 0,
            "run_regions": 0,
        }

    def _encode_region(self, region, sent: set, out: bytearray) -> None:
        pred = (
            region.to_predicate() if hasattr(region, "to_predicate") else region
        )
        index = self.index
        if index is not None:
            # Straight off the packed mask: bits -> stable atom ids, sorted.
            # No frozenset detour; same id list (and bytes) as before.
            ids = index.mask_to_sorted_ids(index.atomize_mask(pred))
            if not ids or ids[-1] <= _U32_MAX:
                out.append(_KIND_RUNS)
                new = [aid for aid in ids if aid not in sent]
                encode_varint(len(new), out)
                for aid in new:
                    encode_varint(aid, out)
                    blob = serialize_predicate(index.extent(aid))
                    encode_varint(len(blob), out)
                    out.extend(blob)
                    sent.add(aid)
                self.stats["defs_shipped"] += len(new)
                runs = _pack(ids)
                encode_varint(len(runs), out)
                out.extend(runs)
                self.stats["run_regions"] += 1
                return
        # bdd mode (or an id overflowing u32): full canonical ROBDD bytes.
        out.append(_KIND_BDD)
        blob = serialize_predicate(pred)
        encode_varint(len(blob), out)
        out.extend(blob)
        self.stats["bdd_regions"] += 1

    def _encode_message(self, message, sent: set, out: bytearray) -> None:
        if isinstance(message, UpdateMessage):
            out.append(_UPDATE)
            encode_varint(message.intended_link[0], out)
            encode_varint(message.intended_link[1], out)
            self._encode_region(message.withdrawn, sent, out)
            encode_varint(len(message.results), out)
            for pred, countset in message.results:
                self._encode_region(pred, sent, out)
                encode_varint(len(countset), out)
                for vec in countset:
                    encode_varint(len(vec), out)
                    for component in vec:
                        encode_varint(component, out)
            return
        if isinstance(message, SubscribeMessage):
            out.append(_SUBSCRIBE)
            encode_varint(message.intended_link[0], out)
            encode_varint(message.intended_link[1], out)
            self._encode_region(message.pred_from, sent, out)
            self._encode_region(message.pred_to, sent, out)
            return
        raise SerializationError(
            f"cannot encode message of type {type(message)!r}"
        )

    def encode(self, dst_wid: int, entries: Sequence[tuple]) -> bytes:
        """Encode one batch of ``((src, seq), dst, invariant, message)``
        entries bound for worker ``dst_wid`` into a frame."""
        sent = self._sent.setdefault(dst_wid, set())
        strings: List[str] = []
        str_idx: Dict[str, int] = {}

        def intern(s: str) -> int:
            idx = str_idx.get(s)
            if idx is None:
                idx = str_idx[s] = len(strings)
                strings.append(s)
            return idx

        defs_before = self.stats["defs_shipped"]
        body = bytearray()
        for (src, msg_seq), dst, invariant, message in entries:
            encode_varint(intern(src), body)
            encode_varint(msg_seq, body)
            encode_varint(intern(dst), body)
            encode_varint(intern(invariant), body)
            self._encode_message(message, sent, body)

        strtab = bytearray()
        encode_varint(len(strings), strtab)
        for s in strings:
            raw = s.encode("utf-8")
            encode_varint(len(raw), strtab)
            strtab.extend(raw)

        seq = self._seq.get(dst_wid, 0)
        self._seq[dst_wid] = seq + 1
        header = _HEADER.pack(
            _MAGIC,
            _VERSION,
            0,
            self.wid,
            seq,
            len(entries),
            self.stats["defs_shipped"] - defs_before,
        )
        frame = header + bytes(strtab) + bytes(body)
        self.stats["frames"] += 1
        self.stats["entries"] += len(entries)
        self.stats["bytes"] += len(frame)
        return frame


# ----------------------------------------------------------------------
# Decoder
# ----------------------------------------------------------------------
class _PeerState:
    """Receiver-side view of one sender's atom dictionary."""

    __slots__ = ("atoms", "region_cache", "next_seq")

    def __init__(self) -> None:
        self.atoms: Dict[int, object] = {}  # sender atom id -> local AtomSet
        self.region_cache: Dict[bytes, Predicate] = {}
        self.next_seq = 0


class FrameDecoder:
    """Per-receiver frame decoder holding one :class:`_PeerState` per
    sender; survives worker resets (the dictionaries outlive any one
    deployment, exactly like the sender's)."""

    def __init__(self, ctx: PacketSpaceContext, index=None) -> None:
        self.ctx = ctx
        self.index = index
        self._peers: Dict[int, _PeerState] = {}
        self.stats = {"frames": 0, "entries": 0, "defs_seen": 0, "bytes": 0}

    def _decode_region(
        self, peer: _PeerState, data: bytes, pos: int
    ) -> Tuple[Predicate, int]:
        kind = data[pos]
        pos += 1
        if kind == _KIND_BDD:
            length, pos = decode_varint(data, pos)
            pred = deserialize_predicate(self.ctx, data[pos : pos + length])
            return pred, pos + length
        if kind != _KIND_RUNS:
            raise SerializationError(f"unknown region kind byte {kind}")
        index = self.index
        if index is None:
            raise SerializationError(
                "atom-run region received in bdd predicate-index mode"
            )
        ndefs, pos = decode_varint(data, pos)
        for _ in range(ndefs):
            aid, pos = decode_varint(data, pos)
            length, pos = decode_varint(data, pos)
            extent = deserialize_predicate(self.ctx, data[pos : pos + length])
            pos += length
            peer.atoms[aid] = index.atomize(extent)
            self.stats["defs_seen"] += 1
        nbytes, pos = decode_varint(data, pos)
        runs = data[pos : pos + nbytes]
        pos += nbytes
        pred = peer.region_cache.get(runs)
        if pred is None:
            atoms = peer.atoms
            try:
                parts = [atoms[aid] for aid in _unpack(runs)]
            except KeyError as exc:
                raise SerializationError(
                    f"atom id {exc.args[0]} referenced before definition"
                ) from exc
            pred = index.to_predicate(index.union(parts))
            peer.region_cache[runs] = pred
        return pred, pos

    def _decode_message(self, peer: _PeerState, data: bytes, pos: int):
        mtype = data[pos]
        pos += 1
        parent, pos = decode_varint(data, pos)
        child, pos = decode_varint(data, pos)
        if mtype == _UPDATE:
            withdrawn, pos = self._decode_region(peer, data, pos)
            num_results, pos = decode_varint(data, pos)
            results = []
            for _ in range(num_results):
                pred, pos = self._decode_region(peer, data, pos)
                num_vectors, pos = decode_varint(data, pos)
                vectors = []
                for _ in range(num_vectors):
                    arity, pos = decode_varint(data, pos)
                    vec = []
                    for _ in range(arity):
                        component, pos = decode_varint(data, pos)
                        vec.append(component)
                    vectors.append(tuple(vec))
                # Same normalization as repro.core.wire.decode_message —
                # countsets must compare equal whichever codec carried them.
                results.append((pred, tuple(sorted(set(vectors)))))
            return UpdateMessage((parent, child), withdrawn, tuple(results)), pos
        if mtype == _SUBSCRIBE:
            pred_from, pos = self._decode_region(peer, data, pos)
            pred_to, pos = self._decode_region(peer, data, pos)
            return SubscribeMessage((parent, child), pred_from, pred_to), pos
        raise SerializationError(f"unknown message type byte {mtype}")

    def decode(self, data: bytes) -> Tuple[int, List[tuple]]:
        """Decode one frame; return ``(sender_wid, entries)`` with entries
        shaped like the worker queue expects:
        ``((src, seq), dst, invariant, message)``."""
        if len(data) < _HEADER.size:
            raise SerializationError("truncated frame header")
        magic, version, _flags, sender, seq, count, _ndefs = _HEADER.unpack_from(
            data, 0
        )
        if magic != _MAGIC:
            raise SerializationError("bad frame magic")
        if version != _VERSION:
            raise SerializationError(f"unsupported frame version {version}")
        peer = self._peers.get(sender)
        if peer is None:
            peer = self._peers[sender] = _PeerState()
        if seq != peer.next_seq:
            raise SerializationError(
                f"frame from worker {sender} out of order: "
                f"got seq {seq}, expected {peer.next_seq}"
            )
        peer.next_seq = seq + 1

        pos = _HEADER.size
        nstrings, pos = decode_varint(data, pos)
        strings: List[str] = []
        for _ in range(nstrings):
            length, pos = decode_varint(data, pos)
            strings.append(data[pos : pos + length].decode("utf-8"))
            pos += length

        entries: List[tuple] = []
        for _ in range(count):
            src_idx, pos = decode_varint(data, pos)
            msg_seq, pos = decode_varint(data, pos)
            dst_idx, pos = decode_varint(data, pos)
            inv_idx, pos = decode_varint(data, pos)
            message, pos = self._decode_message(peer, data, pos)
            entries.append(
                (
                    (strings[src_idx], msg_seq),
                    strings[dst_idx],
                    strings[inv_idx],
                    message,
                )
            )
        if pos != len(data):
            raise SerializationError("trailing bytes after frame")
        self.stats["frames"] += 1
        self.stats["entries"] += count
        self.stats["bytes"] += len(data)
        return sender, entries
