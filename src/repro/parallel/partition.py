"""Device-to-worker partitioning for the parallel backend.

DVM messages travel only between physical neighbors, so the cost of a
partition is the number of topology edges it cuts: messages between
co-located devices stay Python objects inside one worker, messages crossing
workers pay a BDD encode on one side and a decode on the other.  The
``locality`` strategy grows BFS clusters (pods cluster naturally on DC
fabrics); ``round_robin`` is the shared-nothing baseline the benchmark uses
to show the difference.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.errors import SimulationError
from repro.topology.graph import Topology, canonical_link

__all__ = ["partition_devices", "cut_edges"]


def _locality(
    topology: Topology,
    devices: List[str],
    num_workers: int,
    weights: Optional[Mapping[str, int]] = None,
) -> Dict[str, int]:
    """Grow ``num_workers`` BFS clusters of near-equal total weight.

    Without ``weights`` every device counts 1 (near-equal sizes); with them
    (e.g. per-device DPVNet node counts) clusters balance expected verifier
    *load*, which is what bounds the parallel critical path.

    Deterministic: seeds and traversal order are name-sorted, so the same
    topology always yields the same assignment (a prerequisite for the
    backend's reproducibility guarantee).
    """
    w = weights or {}
    total = sum(w.get(dev, 1) for dev in devices)
    target = total / num_workers
    assigned: Dict[str, int] = {}
    unassigned = sorted(devices)
    worker = 0
    while unassigned:
        seed = unassigned[0]
        frontier = [seed]
        cluster_weight = 0
        seen = {seed}
        while frontier and cluster_weight < target:
            frontier.sort()
            next_frontier: List[str] = []
            for dev in frontier:
                if cluster_weight >= target:
                    break
                if dev in assigned:
                    continue
                cluster_weight += w.get(dev, 1)
                assigned[dev] = worker
                for neighbor in sorted(topology.neighbors(dev)):
                    if neighbor not in seen and neighbor not in assigned:
                        seen.add(neighbor)
                        next_frontier.append(neighbor)
            frontier = next_frontier
        unassigned = [dev for dev in unassigned if dev not in assigned]
        worker = min(worker + 1, num_workers - 1)
    return assigned


def _round_robin(devices: List[str], num_workers: int) -> Dict[str, int]:
    return {dev: i % num_workers for i, dev in enumerate(sorted(devices))}


def _slice_aligned(
    devices: List[str],
    num_workers: int,
    groups: Sequence[Sequence[str]],
) -> Dict[str, int]:
    """Keep each slice group (connected component of slices that share
    devices) whole on one worker, spreading groups across workers by load.

    Slices with disjoint footprints land in different groups, so their DVM
    traffic never crosses a worker boundary; within a group every message
    stays process-local too.  Greedy longest-group-first onto the currently
    least-loaded worker balances device counts; devices outside every group
    (no verifier will ever run there) backfill the lightest workers.
    Deterministic: groups and devices are processed in sorted order.
    """
    universe = set(devices)
    load = [0] * num_workers
    assigned: Dict[str, int] = {}
    normalized: List[List[str]] = []
    claimed: set = set()
    for group in groups:
        members = sorted(
            dev for dev in set(group) if dev in universe and dev not in claimed
        )
        if members:
            normalized.append(members)
            claimed.update(members)
    normalized.sort(key=lambda g: (-len(g), g))

    def lightest() -> int:
        return min(range(num_workers), key=lambda w: (load[w], w))

    for members in normalized:
        wid = lightest()
        for dev in members:
            assigned[dev] = wid
        load[wid] += len(members)
    for dev in sorted(universe - claimed):
        wid = lightest()
        assigned[dev] = wid
        load[wid] += 1
    return assigned


def partition_devices(
    topology: Topology,
    num_workers: int,
    strategy: str = "locality",
    devices: Sequence[str] = (),
    weights: Optional[Mapping[str, int]] = None,
    groups: Optional[Sequence[Sequence[str]]] = None,
) -> Dict[str, int]:
    """Assign every device to a worker id in ``[0, num_workers)``.

    ``strategy="slices"`` requires ``groups`` (slice-footprint components
    from :meth:`repro.slicing.SliceRegistry.device_groups`) and keeps each
    component whole on one worker."""
    if num_workers < 1:
        raise SimulationError("need at least one worker")
    names = sorted(devices) if devices else sorted(topology.devices)
    if strategy == "locality":
        return _locality(topology, names, num_workers, weights)
    if strategy == "round_robin":
        return _round_robin(names, num_workers)
    if strategy == "slices":
        if groups is None:
            raise SimulationError(
                "partition strategy 'slices' needs slice device groups"
            )
        return _slice_aligned(names, num_workers, groups)
    raise SimulationError(f"unknown partition strategy {strategy!r}")


def cut_edges(topology: Topology, assignment: Dict[str, int]) -> int:
    """Number of topology links whose endpoints live on different workers."""
    cut = 0
    for link in topology.links():
        a, b = link.endpoints()
        if assignment.get(a) != assignment.get(b):
            cut += 1
    return cut
