"""Centralized DPV baselines: AP, APKeep, Delta-net, VeriFlow and Flash.

Each is a from-scratch reimplementation of the tool's core data structure
and verification loop (the originals are Java/C++ systems we cannot run
here); all share the management-network collection model and the EC-graph
invariant checker in :mod:`repro.baselines.base`.
"""

from repro.baselines.ap import ApVerifier, compute_atomic_predicates
from repro.baselines.apkeep import ApKeepVerifier
from repro.baselines.base import (
    BaselineReport,
    CentralizedVerifier,
    CollectionModel,
    ReachabilityQuery,
    build_ec_graph,
    check_query_on_graph,
)
from repro.baselines.deltanet import DeltaNetVerifier
from repro.baselines.flash import FlashVerifier
from repro.baselines.veriflow import VeriFlowVerifier

ALL_BASELINES = (
    ApVerifier,
    ApKeepVerifier,
    DeltaNetVerifier,
    VeriFlowVerifier,
    FlashVerifier,
)

__all__ = [
    "ALL_BASELINES",
    "ApKeepVerifier",
    "ApVerifier",
    "BaselineReport",
    "CentralizedVerifier",
    "CollectionModel",
    "DeltaNetVerifier",
    "FlashVerifier",
    "ReachabilityQuery",
    "VeriFlowVerifier",
    "build_ec_graph",
    "check_query_on_graph",
    "compute_atomic_predicates",
]
