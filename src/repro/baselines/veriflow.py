"""VeriFlow: real-time invariant checking with a prefix trie (NSDI'13).

VeriFlow organizes rules in a multi-way trie keyed by destination prefix;
an update's *equivalence classes* are found by walking the trie for rules
overlapping the update and slicing the address space at their boundaries.
Only those classes get their forwarding graphs rebuilt and re-verified.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.baselines.base import (
    CentralizedVerifier,
    EcGraph,
    check_query_on_graph,
)
from repro.baselines.deltanet import _rule_interval
from repro.bdd.fields import ip_to_int
from repro.dataplane.action import Action

__all__ = ["VeriFlowVerifier"]


class _TrieNode:
    __slots__ = ("children", "rules")

    def __init__(self) -> None:
        self.children: Dict[int, "_TrieNode"] = {}
        self.rules: List[Tuple[str, object]] = []  # (device, rule)


class VeriFlowVerifier(CentralizedVerifier):
    name = "VeriFlow"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._root: Optional[_TrieNode] = None

    # ------------------------------------------------------------------
    # Trie maintenance
    # ------------------------------------------------------------------
    def _insert(self, dev: str, rule, base: int, length: int) -> None:
        node = self._root
        assert node is not None
        for i in range(length):
            bit = (base >> (31 - i)) & 1
            child = node.children.get(bit)
            if child is None:
                child = _TrieNode()
                node.children[bit] = child
            node = child
        node.rules.append((dev, rule))

    def _build_trie(self) -> None:
        self._root = _TrieNode()
        for dev, plane in self.planes.items():
            for rule in plane.rules:
                interval = _rule_interval(rule)
                if interval is None:
                    continue
                base = interval[0]
                length = 32 - (interval[1] - interval[0]).bit_length() + 1
                self._insert(dev, rule, base, length)

    def _overlapping_rules(self, base: int, length: int) -> List[Tuple[str, object]]:
        """Rules whose prefixes overlap [base, base + 2^(32-length))
        (ancestors on the trie path + the full subtree below)."""
        found: List[Tuple[str, object]] = []
        node = self._root
        assert node is not None
        found.extend(node.rules)
        for i in range(length):
            bit = (base >> (31 - i)) & 1
            node = node.children.get(bit)
            if node is None:
                return found
            found.extend(node.rules)
        # Full subtree below the update's prefix.
        stack = list(node.children.values())
        while stack:
            sub = stack.pop()
            found.extend(sub.rules)
            stack.extend(sub.children.values())
        return found

    # ------------------------------------------------------------------
    # Equivalence classes from rule boundaries
    # ------------------------------------------------------------------
    @staticmethod
    def _slice_classes(
        rules: List[Tuple[str, object]], window: Tuple[int, int]
    ) -> List[Tuple[int, int]]:
        marks: Set[int] = {window[0], window[1]}
        for _dev, rule in rules:
            interval = _rule_interval(rule)
            if interval is None:
                continue
            marks.add(max(window[0], min(window[1], interval[0])))
            marks.add(max(window[0], min(window[1], interval[1])))
        ordered = sorted(marks)
        return list(zip(ordered, ordered[1:]))

    def _paint_classes(
        self, classes: List[Tuple[int, int]]
    ) -> Dict[str, List[Action]]:
        """Per-device actions for each class via one low-to-high priority
        sweep (linear in rules, instead of a scan per class)."""
        import bisect

        boundaries = [lo for lo, _hi in classes] + [classes[-1][1]]
        painted: Dict[str, List[Action]] = {}
        drop = Action.drop()
        for dev, plane in self.planes.items():
            actions = [drop] * len(classes)
            for rule in sorted(plane.rules, key=lambda r: (r.priority, r.rule_id)):
                interval = _rule_interval(rule)
                if interval is None:
                    continue
                start = bisect.bisect_left(boundaries, interval[0])
                end = bisect.bisect_left(boundaries, interval[1])
                for i in range(start, min(end, len(classes))):
                    if classes[i][0] >= interval[0] and classes[i][1] <= interval[1]:
                        actions[i] = rule.action
            painted[dev] = actions
        return painted

    def _verify_classes(self, classes: List[Tuple[int, int]]) -> List[str]:
        if not classes:
            return []
        errors: List[str] = []
        query_ranges = []
        for query in self.queries:
            base, _, length = query.prefix.partition("/")
            lo = ip_to_int(base)
            hi = lo + (1 << (32 - int(length)))
            query_ranges.append((query, lo, hi))
        painted = self._paint_classes(classes)
        for index, (lo, hi) in enumerate(classes):
            graph: Optional[EcGraph] = None
            for query, qlo, qhi in query_ranges:
                if hi <= qlo or qhi <= lo:
                    continue
                if graph is None:
                    graph = {
                        dev: (
                            actions[index].internal_next_hops(),
                            actions[index].delivers,
                            actions[index].is_drop,
                        )
                        for dev, actions in painted.items()
                    }
                error = check_query_on_graph(graph, query, self.topology)
                if error is not None:
                    errors.append(f"[{self.name}] EC [{lo},{hi}): {error}")
        return errors

    # ------------------------------------------------------------------
    def _snapshot_compute(self) -> List[str]:
        self._build_trie()
        all_rules = [
            (dev, rule)
            for dev, plane in self.planes.items()
            for rule in plane.rules
        ]
        classes = self._slice_classes(all_rules, (0, 1 << 32))
        return self._verify_classes(classes)

    def _locate(self, base: int, length: int) -> Optional[_TrieNode]:
        node = self._root
        assert node is not None
        for i in range(length):
            bit = (base >> (31 - i)) & 1
            node = node.children.get(bit)
            if node is None:
                return None
        return node

    def _incremental_compute(
        self, dev: str, deltas, install=None, removed=None
    ) -> List[str]:
        if self._root is None:
            return self._snapshot_compute()
        # Keep the trie in sync with the single-rule change.
        for rule, removing in ((removed, True), (install, False)):
            if rule is None:
                continue
            interval = _rule_interval(rule)
            if interval is None:
                continue
            base = interval[0]
            length = 32 - (interval[1] - interval[0]).bit_length() + 1
            if removing:
                node = self._locate(base, length)
                if node is not None:
                    node.rules = [
                        (d, r)
                        for d, r in node.rules
                        if not (d == dev and r.rule_id == rule.rule_id)
                    ]
            else:
                self._insert(dev, rule, base, length)
        if not deltas:
            return []
        # The update's footprint in prefix form, from the delta predicates.
        errors: List[str] = []
        for delta in deltas:
            ctx = delta.predicate.ctx
            for cube in delta.predicate.cubes():
                value, mask = ctx.layout.decode(cube, "dst_ip")
                length = 0
                for i in range(32):
                    if mask & (1 << (31 - i)):
                        length += 1
                    else:
                        break
                base = value & (((1 << length) - 1) << (32 - length) if length else 0)
                window = (base, base + (1 << (32 - length)))
                overlapping = self._overlapping_rules(base, length)
                classes = self._slice_classes(overlapping, window)
                errors.extend(self._verify_classes(classes))
        return errors
