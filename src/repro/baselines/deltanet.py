"""Delta-net: real-time verification with interval atoms (NSDI'17).

Delta-net's *atom* data structure only works for destination-IP-prefix data
planes (§9.3.4 discusses exactly this trade-off): the destination space is a
line of integers, rules are intervals on it, and the elementary intervals
between consecutive rule boundaries form the atoms.  Updates move O(few)
boundaries, making incremental maintenance extremely cheap — but the whole
line must fit in memory at once, which is how the original hits memory-out
on the biggest DC dataset in Figure 11a (we reproduce the design, not the
crash).
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Tuple

from repro.baselines.base import (
    CentralizedVerifier,
    EcGraph,
    check_query_on_graph,
)
from repro.bdd.fields import ip_to_int
from repro.dataplane.action import Action

__all__ = ["DeltaNetVerifier"]


def _rule_interval(rule) -> Optional[Tuple[int, int]]:
    """Recover the [lo, hi) dst_ip interval of a prefix rule, or ``None`` for
    matches the atom representation cannot express."""
    ctx = rule.match.ctx
    assignment = ctx.mgr.pick_one(rule.match.node)
    if assignment is None:
        return None
    value, mask = ctx.layout.decode(assignment, "dst_ip")
    length = 0
    for i in range(32):
        if mask & (1 << (31 - i)):
            length += 1
        else:
            break
    base = value & (((1 << length) - 1) << (32 - length) if length else 0)
    candidate = ctx.prefix("dst_ip", base, length)
    if candidate != rule.match:
        return None
    return base, base + (1 << (32 - length))


class DeltaNetVerifier(CentralizedVerifier):
    name = "Delta-net"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._boundaries: List[int] = [0, 1 << 32]
        self._built = False

    # ------------------------------------------------------------------
    def _rebuild_boundaries(self) -> None:
        marks = {0, 1 << 32}
        for plane in self.planes.values():
            for rule in plane.rules:
                interval = _rule_interval(rule)
                if interval is None:
                    continue
                marks.add(interval[0])
                marks.add(interval[1])
        self._boundaries = sorted(marks)
        self._built = True

    def _paint(self) -> None:
        """Per-device per-atom actions by a single priority sweep.

        Rules are painted lowest-priority first onto the atom array so each
        atom ends with its highest-priority match — the linear-time pass the
        original's atom maintenance amounts to.
        """
        atoms = list(zip(self._boundaries, self._boundaries[1:]))
        self._atom_actions: Dict[str, List[Action]] = {}
        drop = Action.drop()
        for dev, plane in self.planes.items():
            painted = [drop] * len(atoms)
            for rule in sorted(plane.rules, key=lambda r: (r.priority, r.rule_id)):
                interval = _rule_interval(rule)
                if interval is None:
                    continue
                start = bisect.bisect_left(self._boundaries, interval[0])
                end = bisect.bisect_left(self._boundaries, interval[1])
                for i in range(start, end):
                    painted[i] = rule.action
            self._atom_actions[dev] = painted

    def _atom_graph(self, lo: int, hi: int) -> EcGraph:
        """Forwarding behaviour of the elementary interval [lo, hi)."""
        index = bisect.bisect_left(self._boundaries, lo)
        graph: EcGraph = {}
        for dev in self.planes:
            actions = self._atom_actions.get(dev)
            action = (
                actions[index]
                if actions is not None and index < len(actions)
                else self._action_for(self.planes[dev], lo)
            )
            graph[dev] = (
                action.internal_next_hops(),
                action.delivers,
                action.is_drop,
            )
        return graph

    @staticmethod
    def _action_for(plane, point: int) -> Action:
        """Highest-priority rule whose interval contains ``point``."""
        for rule in plane.rules:  # already sorted by priority
            interval = _rule_interval(rule)
            if interval is None:
                continue
            if interval[0] <= point < interval[1]:
                return rule.action
        return Action.drop()

    # ------------------------------------------------------------------
    def _verify_atoms(self, atoms: List[Tuple[int, int]]) -> List[str]:
        errors: List[str] = []
        query_ranges = []
        for query in self.queries:
            base, _, length = query.prefix.partition("/")
            lo = ip_to_int(base)
            hi = lo + (1 << (32 - int(length)))
            query_ranges.append((query, lo, hi))
        for lo, hi in atoms:
            graph: Optional[EcGraph] = None
            for query, qlo, qhi in query_ranges:
                if hi <= qlo or qhi <= lo:
                    continue
                if graph is None:
                    graph = self._atom_graph(lo, hi)
                error = check_query_on_graph(graph, query, self.topology)
                if error is not None:
                    errors.append(f"[{self.name}] atom [{lo},{hi}): {error}")
        return errors

    def _snapshot_compute(self) -> List[str]:
        self._rebuild_boundaries()
        self._paint()
        atoms = list(zip(self._boundaries, self._boundaries[1:]))
        return self._verify_atoms(atoms)

    def _incremental_compute(self, dev: str, deltas, install=None, removed=None) -> List[str]:
        if not self._built:
            return self._snapshot_compute()
        if not deltas:
            return []
        # The update's footprint: insert its boundaries, re-verify only the
        # elementary intervals inside the changed region.
        changed_ranges: List[Tuple[int, int]] = []
        for delta in deltas:
            ctx = delta.predicate.ctx
            # Extract the changed region's dst_ip span(s) from its cubes.
            for cube in delta.predicate.cubes():
                value, mask = ctx.layout.decode(cube, "dst_ip")
                length = 0
                for i in range(32):
                    if mask & (1 << (31 - i)):
                        length += 1
                    else:
                        break
                base = value & (((1 << length) - 1) << (32 - length) if length else 0)
                changed_ranges.append((base, base + (1 << (32 - length))))
        for lo, hi in changed_ranges:
            for mark in (lo, hi):
                index = bisect.bisect_left(self._boundaries, mark)
                if index >= len(self._boundaries) or self._boundaries[index] != mark:
                    self._boundaries.insert(index, mark)
                    # Splitting an atom duplicates its painted action on
                    # every device (values unchanged, only finer-grained).
                    for painted in self._atom_actions.values():
                        if 0 < index <= len(painted):
                            painted.insert(index - 1, painted[index - 1])
        # Only the updated device's actions can have changed: repaint its
        # affected atoms from its (already-updated) rule table.
        affected: List[Tuple[int, int]] = []
        painted = self._atom_actions.get(dev)
        plane = self.planes[dev]
        rules_low_to_high = sorted(
            plane.rules, key=lambda r: (r.priority, r.rule_id)
        )
        for lo, hi in changed_ranges:
            start = bisect.bisect_left(self._boundaries, lo)
            end = bisect.bisect_left(self._boundaries, hi)
            if painted is not None:
                drop = Action.drop()
                for i in range(start, end):
                    painted[i] = drop
                for rule in rules_low_to_high:
                    interval = _rule_interval(rule)
                    if interval is None or interval[1] <= lo or hi <= interval[0]:
                        continue
                    r_start = max(start, bisect.bisect_left(self._boundaries, interval[0]))
                    r_end = min(end, bisect.bisect_left(self._boundaries, interval[1]))
                    for i in range(r_start, r_end):
                        painted[i] = rule.action
            for i in range(start, end):
                affected.append((self._boundaries[i], self._boundaries[i + 1]))
        return self._verify_atoms(affected)
