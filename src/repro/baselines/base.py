"""Shared infrastructure for the centralized DPV baselines (§9.3.1).

Every baseline follows the same centralized architecture the paper compares
against: devices ship their data planes to one verifier over the management
network; the verifier partitions packet space into equivalence classes (each
tool with its own data structure — that is where they differ) and checks the
invariants by traversing each class's forwarding graph.

The common pieces here:

* :class:`ReachabilityQuery` — the baseline-facing invariant form (all-pair
  loop-free blackhole-free reachability with a hop bound, §9.2/§9.3.1).
* :func:`check_query_on_graph` — BFS over one EC's forwarding graph,
  detecting unreachability, loops and blackholes.
* :class:`CollectionModel` — management-network latency accounting: each
  device sends its rules to the verifier along lowest-latency paths.
* :class:`CentralizedVerifier` — the abstract tool interface; concrete tools
  implement snapshot EC computation and (where the original supports it)
  incremental maintenance.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.bdd.predicate import PacketSpaceContext, Predicate
from repro.dataplane.action import EXTERNAL, Action
from repro.dataplane.device import DevicePlane
from repro.dataplane.rule import Rule
from repro.topology.graph import Topology

__all__ = [
    "ReachabilityQuery",
    "EcGraph",
    "check_query_on_graph",
    "CollectionModel",
    "CentralizedVerifier",
    "BaselineReport",
]


@dataclass(frozen=True)
class ReachabilityQuery:
    """One (ingress, destination) reachability requirement.

    The packet space is the destination prefix; the requirement is delivery
    at ``dest`` within ``shortest + max_extra_hops`` hops on a loop-free,
    blackhole-free path — the §9.2 invariant."""

    ingress: str
    dest: str
    prefix: str
    max_extra_hops: int = 2


# One EC's forwarding behaviour: device -> (next hop devices, delivers, drops)
EcGraph = Dict[str, Tuple[Tuple[str, ...], bool, bool]]


def build_ec_graph(
    planes: Mapping[str, DevicePlane], pred: Predicate
) -> EcGraph:
    """Forwarding graph of one equivalence class.

    Assumes ``pred`` lies within a single LEC on every device (that is what
    being an EC means); uses the first overlapping LEC action.
    """
    graph: EcGraph = {}
    for dev, plane in planes.items():
        pieces = plane.fwd(pred)
        action = pieces[0][1] if pieces else Action.drop()
        hops = action.internal_next_hops()
        graph[dev] = (hops, action.delivers, action.is_drop)
    return graph


def check_query_on_graph(
    graph: EcGraph,
    query: ReachabilityQuery,
    topology: Topology,
) -> Optional[str]:
    """Check one query against one EC graph; return an error string or
    ``None``.

    BFS from the ingress following the EC's forwarding edges; flags
    unreachability within the hop bound, forwarding loops and blackholes.
    """
    shortest = topology.shortest_hops(query.ingress, query.dest)
    if shortest is None:
        return None  # disconnected pair: nothing to require
    bound = shortest + query.max_extra_hops
    frontier = {query.ingress}
    visited: Set[str] = set()
    delivered = False
    hops = 0
    while frontier and hops <= bound:
        next_frontier: Set[str] = set()
        for dev in frontier:
            entry = graph.get(dev)
            if entry is None:
                continue
            next_hops, delivers, drops = entry
            if delivers and dev == query.dest:
                delivered = True
            if drops:
                return f"blackhole at {dev}"
            for hop in next_hops:
                if hop in visited:
                    # Revisiting a device on this EC's graph means a cycle is
                    # reachable: report a loop.
                    return f"loop via {hop}"
                next_frontier.add(hop)
        visited |= frontier
        frontier = next_frontier - visited
        hops += 1
        if delivered:
            return None
    if delivered:
        return None
    return f"{query.ingress} cannot reach {query.dest} within {bound} hops"


@dataclass
class CollectionModel:
    """Management-network accounting for centralized tools (§9.3.1: "we
    randomly assign a device as the location of the verifier, and let all
    devices send it their data planes along lowest-latency paths")."""

    topology: Topology
    verifier_location: str
    per_rule_seconds: float = 2e-7  # serialization/transmission per rule

    def __post_init__(self) -> None:
        self._latency = self.topology.latency_distances_from(self.verifier_location)

    def burst_collection_time(self, planes: Mapping[str, DevicePlane]) -> float:
        """Time until the last device's data plane fully arrives."""
        worst = 0.0
        for dev, plane in planes.items():
            latency = self._latency.get(dev, 0.0)
            worst = max(worst, latency + plane.num_rules * self.per_rule_seconds)
        return worst

    def update_latency(self, dev: str) -> float:
        """One rule update travelling device → verifier."""
        return self._latency.get(dev, 0.0) + self.per_rule_seconds


@dataclass
class BaselineReport:
    """Outcome + timing of one baseline verification run."""

    tool: str
    verification_time: float  # simulated: collection + scaled compute
    compute_time: float       # raw wall-clock compute on the verifier
    errors: List[str] = field(default_factory=list)

    @property
    def holds(self) -> bool:
        return not self.errors


class CentralizedVerifier:
    """Abstract centralized DPV tool."""

    name = "abstract"
    #: whether the tool has a native incremental mode (Flash and AP recompute)
    incremental_native = True

    def __init__(
        self,
        topology: Topology,
        ctx: PacketSpaceContext,
        queries: Sequence[ReachabilityQuery],
        verifier_location: Optional[str] = None,
        cpu_scale: float = 1.0,
    ) -> None:
        self.topology = topology
        self.ctx = ctx
        self.queries = list(queries)
        location = verifier_location or topology.devices[0]
        self.collection = CollectionModel(topology, location)
        self.cpu_scale = cpu_scale
        self.planes: Dict[str, DevicePlane] = {}

    # ------------------------------------------------------------------
    # Tool-specific hooks
    # ------------------------------------------------------------------
    def _snapshot_compute(self) -> List[str]:
        """Build ECs from scratch and verify all queries."""
        raise NotImplementedError

    def _incremental_compute(
        self, dev: str, deltas, install=None, removed=None
    ) -> List[str]:
        """Update ECs for one device's LEC deltas and re-verify affected
        queries.  ``install``/``removed`` are the Rule objects involved (for
        tools that index rules, e.g. VeriFlow's trie).  Tools without native
        incremental mode fall back to :meth:`_snapshot_compute`."""
        return self._snapshot_compute()

    # ------------------------------------------------------------------
    # Driver API (mirrors the Tulkun runner's scenarios)
    # ------------------------------------------------------------------
    def burst_verify(self, planes: Mapping[str, DevicePlane]) -> BaselineReport:
        self.planes = dict(planes)
        collection = self.collection.burst_collection_time(planes)
        t0 = _time.perf_counter()
        errors = self._snapshot_compute()
        compute = _time.perf_counter() - t0
        return BaselineReport(
            tool=self.name,
            verification_time=collection + compute * self.cpu_scale,
            compute_time=compute,
            errors=errors,
        )

    def incremental_verify(
        self,
        dev: str,
        install: Optional[Rule] = None,
        remove_rule_id: Optional[int] = None,
    ) -> BaselineReport:
        """Apply one rule update and verify it."""
        plane = self.planes[dev]
        deltas = []
        removed = None
        if remove_rule_id is not None:
            removed = plane.get_rule(remove_rule_id)
            deltas.extend(plane.remove_rule(remove_rule_id))
        if install is not None:
            deltas.extend(plane.install_rule(install))
        latency = self.collection.update_latency(dev)
        t0 = _time.perf_counter()
        errors = self._incremental_compute(dev, deltas, install=install, removed=removed)
        compute = _time.perf_counter() - t0
        return BaselineReport(
            tool=self.name,
            verification_time=latency + compute * self.cpu_scale,
            compute_time=compute,
            errors=errors,
        )

    # ------------------------------------------------------------------
    # Shared helpers for the concrete tools
    # ------------------------------------------------------------------
    def _verify_predicate_classes(
        self, classes: Iterable[Predicate]
    ) -> List[str]:
        """Check every query against every EC overlapping its prefix."""
        errors: List[str] = []
        query_preds = [
            (query, self.ctx.ip_prefix(query.prefix)) for query in self.queries
        ]
        for ec in classes:
            graph: Optional[EcGraph] = None
            for query, pred in query_preds:
                if not ec.overlaps(pred):
                    continue
                if graph is None:
                    graph = build_ec_graph(self.planes, ec)
                error = check_query_on_graph(graph, query, self.topology)
                if error is not None:
                    errors.append(f"[{self.name}] EC {ec.node}: {error}")
        return errors
