"""Flash: fast, consistent DPV for large-scale networks (SIGCOMM'22).

Flash's core idea is *batching*: massive rule arrivals are consolidated into
one equivalence-class computation over the whole batch (its "fast inverse
model"), which amortizes the per-rule cost and makes it the fastest
centralized tool on burst updates — but single-rule updates still pay a
batch-sized bookkeeping overhead, which is why its incremental times trail
APKeep/Delta-net in Figure 11c.

Our rendition keeps both behaviours: snapshot verification groups rules by
overlap before refining (cheaper than AP's rule-at-a-time refinement), and
incremental verification re-consolidates the subtree the update touches.
"""

from __future__ import annotations

from typing import List, Optional

from repro.baselines.base import CentralizedVerifier, build_ec_graph, check_query_on_graph
from repro.bdd.predicate import Predicate

__all__ = ["FlashVerifier"]


class FlashVerifier(CentralizedVerifier):
    name = "Flash"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._classes: Optional[List[Predicate]] = None

    # ------------------------------------------------------------------
    def _consolidated_classes(self) -> List[Predicate]:
        """Batch EC computation: refine by the *union per action group*
        rather than rule-by-rule.  Grouping first is the batching win — far
        fewer refinement steps than AP for rule-heavy data planes."""
        classes: List[Predicate] = [self.ctx.universe]
        for _dev, plane in sorted(self.planes.items()):
            # One refinement per distinct action on the device (the LEC table
            # is already the consolidated per-device partition).
            for pred, _action in plane.lec_table().entries():
                classes = self.ctx.refine(classes, pred)
        return classes

    def _snapshot_compute(self) -> List[str]:
        self._classes = self._consolidated_classes()
        return self._verify_predicate_classes(self._classes)

    def _incremental_compute(
        self, dev: str, deltas, install=None, removed=None
    ) -> List[str]:
        if self._classes is None:
            return self._snapshot_compute()
        if not deltas:
            return []
        changed = self.ctx.union(delta.predicate for delta in deltas)
        # Flash consolidates per batch: a single update still re-runs the
        # subtree consolidation — refine every class against the changed
        # region *and* rebuild the device's contribution (the modeled batch
        # overhead that makes Flash slower than APKeep per update).
        classes = self.ctx.refine(self._classes, changed)
        for pred, _action in self.planes[dev].lec_table().entries():
            classes = self.ctx.refine(classes, pred)
        self._classes = classes
        affected = [ec for ec in classes if ec.overlaps(changed)]
        errors: List[str] = []
        query_preds = [
            (query, self.ctx.ip_prefix(query.prefix)) for query in self.queries
        ]
        for ec in affected:
            graph = None
            for query, pred in query_preds:
                if not ec.overlaps(pred):
                    continue
                if graph is None:
                    graph = build_ec_graph(self.planes, ec)
                error = check_query_on_graph(graph, query, self.topology)
                if error is not None:
                    errors.append(f"[{self.name}] EC {ec.node}: {error}")
        return errors
