"""APKeep: real-time incremental atomic-predicate maintenance (NSDI'20).

APKeep keeps the atomic-predicate partition alive across updates: a rule
update only splits/merges the atoms its changed packet space touches, and
only those atoms are re-verified.  That makes per-update work proportional
to the update's footprint instead of the network size — the behaviour that
makes APKeep the strongest centralized incremental baseline in Figure 11c.
"""

from __future__ import annotations

from typing import List, Optional

from repro.baselines.ap import compute_atomic_predicates
from repro.baselines.base import CentralizedVerifier, build_ec_graph, check_query_on_graph
from repro.bdd.predicate import Predicate

__all__ = ["ApKeepVerifier"]


class ApKeepVerifier(CentralizedVerifier):
    name = "APKeep"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._atoms: Optional[List[Predicate]] = None

    def _snapshot_compute(self) -> List[str]:
        self._atoms = compute_atomic_predicates(self.ctx, self.planes)
        return self._verify_predicate_classes(self._atoms)

    def _incremental_compute(self, dev: str, deltas, install=None, removed=None) -> List[str]:
        if self._atoms is None:
            return self._snapshot_compute()
        if not deltas:
            return []
        changed = self.ctx.union(delta.predicate for delta in deltas)
        # Split atoms along the changed region (the PPM "port predicate map"
        # update in the original, expressed as partition refinement).
        self._atoms = self.ctx.refine(self._atoms, changed)
        affected = [atom for atom in self._atoms if atom.overlaps(changed)]
        # Re-verify only the affected atoms against overlapping queries.
        errors: List[str] = []
        query_preds = [
            (query, self.ctx.ip_prefix(query.prefix)) for query in self.queries
        ]
        for atom in affected:
            graph = None
            for query, pred in query_preds:
                if not atom.overlaps(pred):
                    continue
                if graph is None:
                    graph = build_ec_graph(self.planes, atom)
                error = check_query_on_graph(graph, query, self.topology)
                if error is not None:
                    errors.append(f"[{self.name}] atom {atom.node}: {error}")
        return errors
