"""Setup shim for environments whose pip/setuptools cannot do PEP 660
editable installs (no `wheel` package available offline)."""

from setuptools import setup

setup()
