"""Parallel-backend speedup — serial simulator vs the process worker pool.

Burst-verifies fattree(8) ("FT-8") both ways and reports wall-clock times,
per-worker CPU times, and two speedup figures:

* **measured** — serial wall / parallel wall, the number you get on *this*
  machine.  Only meaningful as a parallelism claim when the host has at
  least as many cores as workers.
* **modelled** — serial wall / (max per-worker CPU + coordinator overhead),
  the wall-clock the pool would deliver with one core per worker.  On a
  single-core CI box the workers time-slice, so this is the honest
  scalability figure there.

Every run appends a record to ``BENCH_parallel_speedup.json`` in the repo
root — a trajectory of results across commits, with the host's core count
stored alongside so figures are never compared out of context.
"""

import json
import os
import time
from pathlib import Path

import pytest

from benchmarks._common import SCALE, fresh_rules, print_header, print_row
from repro.datasets import build_dataset
from repro.sim import TulkunRunner

WORKERS = 4
SPEEDUP_FLOOR = 1.5

# (pair_limit, rule_multiplier) for the FT-8 burst at each scale.
SIZES = {"small": (24, 2), "large": (32, 4)}

TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_parallel_speedup.json"


def _append_trajectory(record):
    history = []
    if TRAJECTORY.exists():
        try:
            history = json.loads(TRAJECTORY.read_text(encoding="utf-8"))
        except (ValueError, OSError):
            history = []
    history.append(record)
    TRAJECTORY.write_text(
        json.dumps(history, indent=2) + "\n", encoding="utf-8"
    )


@pytest.mark.benchmark(group="parallel_speedup")
def test_parallel_speedup_ft8(benchmark):
    pair_limit, multiplier = SIZES[SCALE]
    cores = os.cpu_count() or 1

    def measure():
        ds = build_dataset(
            "FT-8", pair_limit=pair_limit, seed=1, rule_multiplier=multiplier
        )
        serial = TulkunRunner(ds.topology, ds.ctx, ds.invariants)
        start = time.perf_counter()
        serial_result = serial.burst_update(fresh_rules(ds))
        serial_wall = time.perf_counter() - start

        ds2 = build_dataset(
            "FT-8", pair_limit=pair_limit, seed=1, rule_multiplier=multiplier
        )
        parallel = TulkunRunner(
            ds2.topology, ds2.ctx, ds2.invariants,
            backend="process", workers=WORKERS,
        )
        try:
            start = time.perf_counter()
            parallel_result = parallel.burst_update(fresh_rules(ds2))
            parallel_wall = time.perf_counter() - start
            metrics = parallel.network.metrics
            busy = [
                metrics.workers[wid].busy_time
                for wid in sorted(metrics.workers)
            ]
            stats = {
                "serial_wall_s": serial_wall,
                "parallel_wall_s": parallel_wall,
                "worker_cpu_s": busy,
                "coordinator_overhead_s": parallel_wall - sum(busy),
                "routed_messages": metrics.routed_messages,
                "routed_bytes": metrics.routed_bytes,
                "cut_links": parallel.network.cut_links,
                "verdict_parity": (
                    parallel_result.holds == serial_result.holds
                ),
            }
        finally:
            parallel.close()
        return stats

    stats = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert stats["verdict_parity"], "serial and process verdicts diverged"

    serial_wall = stats["serial_wall_s"]
    parallel_wall = stats["parallel_wall_s"]
    busy = stats["worker_cpu_s"]
    overhead = max(stats["coordinator_overhead_s"], 0.0)
    measured = serial_wall / parallel_wall
    # With one core per worker the pool's wall-clock is the slowest
    # worker's CPU time plus whatever the coordinator adds on top.
    modelled = serial_wall / (max(busy) + overhead)

    print_header(
        f"Parallel speedup [FT-8, {WORKERS} workers, {cores} core(s)]"
    )
    print_row("series", "time (ms)", "speedup")
    print_row("serial", f"{serial_wall * 1e3:.1f}", "1.00x")
    print_row("process", f"{parallel_wall * 1e3:.1f}", f"{measured:.2f}x")
    print_row(
        "modelled",
        f"{(max(busy) + overhead) * 1e3:.1f}",
        f"{modelled:.2f}x",
    )
    print_row(
        "worker CPU (s)",
        " ".join(f"{b:.3f}" for b in busy),
        f"+{overhead * 1e3:.0f}ms coord",
    )

    record = {
        "bench": "parallel_speedup",
        "dataset": "FT-8",
        "workers": WORKERS,
        "cpu_count": cores,
        "scale": SCALE,
        "pair_limit": pair_limit,
        "rule_multiplier": multiplier,
        "measured_speedup": round(measured, 3),
        "modelled_speedup": round(modelled, 3),
        **{
            k: (round(v, 4) if isinstance(v, float) else v)
            for k, v in stats.items()
            if k != "worker_cpu_s"
        },
        "worker_cpu_s": [round(b, 4) for b in busy],
    }
    _append_trajectory(record)
    benchmark.extra_info.update(record)

    # The ≥1.5x acceptance bar applies to the figure that is physically
    # meaningful on this host: measured wall-clock when there is a core per
    # worker, the modelled critical path otherwise.
    effective = measured if cores >= WORKERS else modelled
    assert effective >= SPEEDUP_FLOOR, (
        f"parallel speedup {effective:.2f}x below {SPEEDUP_FLOOR}x "
        f"(measured {measured:.2f}x, modelled {modelled:.2f}x, "
        f"{cores} core(s))"
    )
