"""Parallel-backend speedup — serial simulator vs the process worker pool.

Burst-verifies fattree(8) ("FT-8") both ways and reports wall-clock times,
per-worker CPU times, and two speedup figures:

* **measured** — serial wall / parallel wall, the number you get on *this*
  machine.  Only meaningful as a parallelism claim when the host has at
  least as many cores as workers.
* **modelled** — serial wall / (max per-worker CPU + coordinator overhead),
  the wall-clock the pool would deliver with one core per worker.  On a
  single-core CI box the workers time-slice, so this is the honest
  scalability figure there.

A second benchmark runs the sharded-churn workload: a long single-rule
update stream on FT-8 under the atoms predicate index, process pool vs the
serial simulator, applied in small device-disjoint bursts (churn arrives in
bursts in practice; the DVM fixpoint is batching-independent, so verdicts
are unchanged).  The pool's persistent workers, coalesced update commands
and lazy verdict refresh are exactly what this stream exercises — each
update touches one shard and ships only that shard's delta back.  It too
reports measured and modelled rates: the stream splits across shards, so
the per-worker critical path is genuinely shorter than the serial pass.

Every run updates its row in ``BENCH_parallel_speedup.json`` in the repo
root (keyed on benchmark + workload, so re-runs replace rather than stack).
Both ``os.cpu_count()`` and the scheduler affinity are stored alongside;
on hosts without at least two schedulable cores the speedup assertion is
skipped and the row flagged ``speedup_asserted: false`` — a time-sliced
"loss" is not a parallelism result and must not read as one.
"""

import time
from pathlib import Path

import pytest

from benchmarks._common import (
    SCALE,
    fresh_rules,
    host_cores,
    print_header,
    print_row,
    record_trajectory,
)
from repro.dataplane.action import Action
from repro.dataplane.rule import Rule
from repro.datasets import build_dataset
from repro.sim import TulkunRunner, random_update_intents
from repro.sim.runner import _schedule_start

WORKERS = 4
# Smoke is a bitrot check on a workload too small to time; no floor there.
SPEEDUP_FLOORS = {"smoke": None, "small": 1.5, "large": 1.5}

# (pair_limit, rule_multiplier) for the FT-8 burst at each scale.
SIZES = {"smoke": (8, 1), "small": (24, 2), "large": (32, 4)}

# (pair_limit, rule_multiplier, num_intents) for the sharded-churn stream.
CHURN_SIZES = {"smoke": (6, 2, 8), "small": (32, 4, 40), "large": (32, 8, 80)}
CHURN_WORKERS = 2
CHURN_BATCH = 8  # updates per burst before converging
# Timed passes per backend (median-free: rates come from the totals).
CHURN_REPEATS = {"smoke": 1, "small": 3, "large": 3}
# Smoke is a bitrot check on a workload too small to time; no floor there.
CHURN_FLOORS = {"smoke": None, "small": 1.0, "large": 1.0}

TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_parallel_speedup.json"
TRAJECTORY_KEY = ("bench", "scale", "dataset", "workers")


@pytest.mark.benchmark(group="parallel_speedup")
def test_parallel_speedup_ft8(benchmark):
    pair_limit, multiplier = SIZES[SCALE]
    host = host_cores()
    cores = min(host["cpu_count"], host["affinity_cores"])

    def measure():
        ds = build_dataset(
            "FT-8", pair_limit=pair_limit, seed=1, rule_multiplier=multiplier
        )
        serial = TulkunRunner(ds.topology, ds.ctx, ds.invariants)
        start = time.perf_counter()
        serial_result = serial.burst_update(fresh_rules(ds))
        serial_wall = time.perf_counter() - start

        ds2 = build_dataset(
            "FT-8", pair_limit=pair_limit, seed=1, rule_multiplier=multiplier
        )
        parallel = TulkunRunner(
            ds2.topology, ds2.ctx, ds2.invariants,
            backend="process", workers=WORKERS,
        )
        try:
            start = time.perf_counter()
            parallel_result = parallel.burst_update(fresh_rules(ds2))
            parallel_wall = time.perf_counter() - start
            metrics = parallel.network.metrics
            busy = [
                metrics.workers[wid].busy_time
                for wid in sorted(metrics.workers)
            ]
            stats = {
                "serial_wall_s": serial_wall,
                "parallel_wall_s": parallel_wall,
                "worker_cpu_s": busy,
                "coordinator_overhead_s": parallel_wall - sum(busy),
                "routed_messages": metrics.routed_messages,
                "routed_bytes": metrics.routed_bytes,
                "cut_links": parallel.network.cut_links,
                "shared_memory": parallel.network.pool.use_shm,
                "verdict_parity": (
                    parallel_result.holds == serial_result.holds
                ),
            }
        finally:
            parallel.close()
        return stats

    stats = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert stats["verdict_parity"], "serial and process verdicts diverged"

    serial_wall = stats["serial_wall_s"]
    parallel_wall = stats["parallel_wall_s"]
    busy = stats["worker_cpu_s"]
    overhead = max(stats["coordinator_overhead_s"], 0.0)
    measured = serial_wall / parallel_wall
    # With one core per worker the pool's wall-clock is the slowest
    # worker's CPU time plus whatever the coordinator adds on top.
    modelled = serial_wall / (max(busy) + overhead)

    print_header(
        f"Parallel speedup [FT-8, {WORKERS} workers, "
        f"{host['cpu_count']} cpu / {host['affinity_cores']} schedulable]"
    )
    print_row("series", "time (ms)", "speedup")
    print_row("serial", f"{serial_wall * 1e3:.1f}", "1.00x")
    print_row("process", f"{parallel_wall * 1e3:.1f}", f"{measured:.2f}x")
    print_row(
        "modelled",
        f"{(max(busy) + overhead) * 1e3:.1f}",
        f"{modelled:.2f}x",
    )
    print_row(
        "worker CPU (s)",
        " ".join(f"{b:.3f}" for b in busy),
        f"+{overhead * 1e3:.0f}ms coord",
    )

    record = {
        "bench": "parallel_speedup",
        "dataset": "FT-8",
        "workers": WORKERS,
        **host,
        "scale": SCALE,
        "pair_limit": pair_limit,
        "rule_multiplier": multiplier,
        "measured_speedup": round(measured, 3),
        "modelled_speedup": round(modelled, 3),
        "speedup_asserted": SPEEDUP_FLOORS[SCALE] is not None and cores >= 2,
        **{
            k: (round(v, 4) if isinstance(v, float) else v)
            for k, v in stats.items()
            if k != "worker_cpu_s"
        },
        "worker_cpu_s": [round(b, 4) for b in busy],
    }
    record_trajectory(TRAJECTORY, record, TRAJECTORY_KEY)
    benchmark.extra_info.update(record)

    floor = SPEEDUP_FLOORS[SCALE]
    if floor is None:
        return
    if cores < 2:
        pytest.skip(
            f"single schedulable core ({host['cpu_count']} cpu, "
            f"{host['affinity_cores']} affinity): {WORKERS} workers "
            f"time-slice one core, so neither figure is a parallelism "
            f"result — recorded measured {measured:.2f}x / modelled "
            f"{modelled:.2f}x with speedup_asserted=false"
        )
    # The acceptance bar applies to the figure that is physically
    # meaningful on this host: measured wall-clock when there is a core per
    # worker, the modelled critical path otherwise.
    effective = measured if cores >= WORKERS else modelled
    assert effective >= floor, (
        f"parallel speedup {effective:.2f}x below {floor}x "
        f"(measured {measured:.2f}x, modelled {modelled:.2f}x, "
        f"{cores} core(s))"
    )
    if cores >= WORKERS:
        assert measured > 1.0, (
            f"process backend slower than serial ({measured:.2f}x) on a "
            f"{cores}-core host — the pool must win outright with a core "
            "per worker"
        )


def _batched_churn(network, intents, batch_size=CHURN_BATCH):
    """Apply an intent stream in device-disjoint bursts; return the number
    of updates applied.

    Intents resolve against the live plane, so a burst never touches the
    same device twice (its second resolution would race the first update's
    id churn); a change and its restore travel together — both are built
    from objects in hand.  Identical loop for both backends: batching is
    the workload model, not a backend-specific trick."""
    applied = 0
    touched = set()
    pending = 0

    def flush():
        nonlocal pending, touched
        if pending:
            network.run()
            pending = 0
            touched = set()

    for intent in intents:
        if intent.dev in touched or pending >= batch_size:
            flush()
        rules = network.devices[intent.dev].plane.rules
        if not rules:
            continue
        rule = rules[intent.rule_index % len(rules)]
        start = _schedule_start(network)
        touched.add(intent.dev)
        if intent.neutral:
            clone = Rule(rule.match, rule.action, rule.priority)
            network.apply_rule_update(
                intent.dev, at=start, install=clone,
                remove_rule_id=rule.rule_id,
            )
            pending += 1
            applied += 1
            continue
        if intent.new_next_hops:
            new_action = Action.forward_all(intent.new_next_hops)
        else:
            new_action = Action.drop()
        if new_action == rule.action:
            continue
        changed = Rule(rule.match, new_action, rule.priority)
        network.apply_rule_update(
            intent.dev, at=start, install=changed,
            remove_rule_id=rule.rule_id,
        )
        restored = Rule(rule.match, rule.action, rule.priority)
        network.apply_rule_update(
            intent.dev, at=start, install=restored,
            remove_rule_id=changed.rule_id,
        )
        pending += 2
        applied += 2
    flush()
    return applied


def _worker_busy(network):
    """Cumulative per-worker CPU seconds (forces a delta collect first)."""
    _ = network.kernel.events_processed
    return {wid: w.busy_time for wid, w in network.metrics.workers.items()}


def _churn_rates(pair_limit, multiplier, intents_count, backend):
    """(measured, modelled) updates/sec for the FT-8 churn stream.

    Fresh dataset per cell (no inherited BDD caches), atoms predicate
    index on both sides: the comparison isolates the execution backend.
    For the serial backend measured == modelled; for the process backend
    the modelled rate replaces total wall with the one-core-per-worker
    critical path (slowest worker's CPU + coordinator overhead)."""
    ds = build_dataset(
        "FT-8", pair_limit=pair_limit, seed=7, rule_multiplier=multiplier
    )
    kwargs = {"predicate_index": "atoms", "backend": backend}
    if backend == "process":
        kwargs["workers"] = CHURN_WORKERS
    runner = TulkunRunner(ds.topology, ds.ctx, ds.invariants, **kwargs)
    try:
        runner.burst_update(fresh_rules(ds))
        network = runner.network
        planes = {
            dev: network.devices[dev].plane for dev in ds.topology.devices
        }

        def stream():
            # Re-resolved each pass: rule ids churn, the shape does not.
            return random_update_intents(
                ds.topology, planes, intents_count, seed=9
            )

        _batched_churn(network, stream())  # warmup; restores the FIB
        busy_before = _worker_busy(network) if backend == "process" else {}
        applied = 0
        wall = 0.0
        for _ in range(CHURN_REPEATS[SCALE]):
            start = time.perf_counter()
            applied += _batched_churn(network, stream())
            wall += time.perf_counter() - start
        measured = applied / wall
        if backend == "process":
            busy = _worker_busy(network)
            deltas = [busy[w] - busy_before.get(w, 0.0) for w in busy]
            overhead = max(wall - sum(deltas), 0.0)
            modelled = applied / (max(deltas) + overhead)
        else:
            modelled = measured
        flags = {
            inv.name: {
                ingress: ok
                for ingress, (ok, _v) in network.verdicts(inv.name).items()
            }
            for inv in ds.invariants
        }
        return measured, modelled, flags
    finally:
        runner.close()


@pytest.mark.benchmark(group="parallel_speedup")
def test_sharded_churn_ft8(benchmark):
    """Process-atoms vs serial-atoms updates/s on the FT-8 churn stream.

    The asserted figure follows the host: measured wall when there is a
    core per worker, the critical-path model otherwise (the stream splits
    across shards, so the slowest worker's pass is genuinely shorter than
    the serial one — on one core the processes merely time-slice)."""
    pair_limit, multiplier, intents_count = CHURN_SIZES[SCALE]
    host = host_cores()
    cores = min(host["cpu_count"], host["affinity_cores"])

    rates = {}

    def measure():
        flags = {}
        for backend in ("serial", "process"):
            measured, modelled, flags[backend] = _churn_rates(
                pair_limit, multiplier, intents_count, backend
            )
            rates[backend] = measured
            rates[backend + "_modelled"] = modelled
        assert flags["serial"] == flags["process"], (
            "sharded churn verdicts diverged between backends"
        )

    benchmark.pedantic(measure, rounds=1, iterations=1)
    measured_ratio = rates["process"] / rates["serial"]
    modelled_ratio = rates["process_modelled"] / rates["serial"]
    use_measured = cores >= CHURN_WORKERS
    effective = measured_ratio if use_measured else modelled_ratio

    print_header(
        f"Sharded churn [FT-8, atoms index, {CHURN_WORKERS} workers, "
        f"{intents_count} intents, scale={SCALE}]"
    )
    print_row("backend", "updates/s", "vs serial")
    print_row("serial", f"{rates['serial']:.1f}", "1.00x")
    print_row("process", f"{rates['process']:.1f}", f"{measured_ratio:.2f}x")
    print_row(
        "modelled",
        f"{rates['process_modelled']:.1f}",
        f"{modelled_ratio:.2f}x",
    )

    record = {
        "bench": "sharded_churn_ft8",
        "dataset": "FT-8",
        "workers": CHURN_WORKERS,
        **host,
        "scale": SCALE,
        "pair_limit": pair_limit,
        "rule_multiplier": multiplier,
        "intents": intents_count,
        "batch_size": CHURN_BATCH,
        "predicate_index": "atoms",
        "serial_updates_per_sec": round(rates["serial"], 2),
        "process_updates_per_sec": round(rates["process"], 2),
        "process_modelled_updates_per_sec": round(
            rates["process_modelled"], 2
        ),
        "measured_ratio": round(measured_ratio, 3),
        "modelled_ratio": round(modelled_ratio, 3),
        # The headline figure, from whichever comparison is physically
        # meaningful on this host.
        "process_over_serial": round(effective, 3),
        "effective_figure": "measured" if use_measured else "modelled",
        "speedup_asserted": CHURN_FLOORS[SCALE] is not None,
    }
    record_trajectory(TRAJECTORY, record, TRAJECTORY_KEY)
    benchmark.extra_info.update(record)

    floor = CHURN_FLOORS[SCALE]
    if floor is not None:
        assert effective >= floor, (
            f"process-atoms churn below serial-atoms: effective "
            f"{effective:.2f}x (measured {measured_ratio:.2f}x, modelled "
            f"{modelled_ratio:.2f}x, {cores} core(s)) — the persistent "
            "pool must not lose the sharded stream"
        )
