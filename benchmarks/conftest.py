"""Benchmark collection switches.

The steady-state serving benchmarks (``@pytest.mark.streaming``) drive the
``tulkun-serve-v1`` pipeline and are a separate acceptance gate from the
figure-reproduction benches, so they are opt-in:

* ``pytest benchmarks/ ...``              — figure benches only (default);
* ``pytest benchmarks/ --streaming ...``  — streaming benches only;
* ``pytest benchmarks/ -m streaming ...`` — marker selection, untouched.
"""


def pytest_addoption(parser):
    parser.addoption(
        "--streaming",
        action="store_true",
        default=False,
        help="run only the steady-state streaming serving benchmarks",
    )


def pytest_collection_modifyitems(config, items):
    if "streaming" in (config.getoption("-m") or ""):
        return  # explicit marker expression wins
    streaming_only = config.getoption("--streaming")
    selected, deselected = [], []
    for item in items:
        is_streaming = item.get_closest_marker("streaming") is not None
        (selected if is_streaming == streaming_only else deselected).append(item)
    if deselected:
        config.hook.pytest_deselected(items=deselected)
        items[:] = selected
