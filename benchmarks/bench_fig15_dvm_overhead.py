"""Figure 15 — DVM UPDATE message processing overhead.

Drives a burst + incremental workload, collecting every device's per-message
processing cost and the message/byte counters, then reports the CDF points
the paper plots: per-message processing time, per-device totals, CPU load.
Paper's numbers: 90% of messages processed in ≤3.52 ms, 90% of devices under
0.29 s total — ours are host-relative; the shape (sub-millisecond mode with
a short tail) is the target.
"""

import pytest

from benchmarks._common import (
    NUM_UPDATES,
    SCALE,
    dataset_for,
    print_header,
    print_row,
    run_tulkun_burst,
)
from repro.sim import apply_intents, percentile, random_update_intents

DATASETS = {
    "small": [("INet2", 12, 8)],
    "large": [("INet2", None, 16), ("B4-13", 16, 8), ("FT-4", 24, 4)],
}


@pytest.mark.benchmark(group="fig15")
@pytest.mark.parametrize(
    "name,pair_limit,multiplier",
    DATASETS[SCALE],
    ids=[entry[0] for entry in DATASETS[SCALE]],
)
def test_fig15_dvm_processing_overhead(benchmark, name, pair_limit, multiplier):
    outcome = {}

    def run():
        ds = dataset_for(name, pair_limit, multiplier)
        runner, _burst = run_tulkun_burst(ds)
        planes = {
            d: runner.network.devices[d].plane for d in ds.topology.devices
        }
        intents = random_update_intents(
            ds.topology, planes, NUM_UPDATES[SCALE], seed=21
        )
        apply_intents(runner, intents)
        outcome["metrics"] = runner.network.metrics
        outcome["wall"] = runner.network.last_activity
        return outcome

    benchmark.pedantic(run, rounds=1, iterations=1)
    metrics = outcome["metrics"]

    message_costs = metrics.all_message_costs()
    device_totals = [sum(m.message_costs) for m in metrics.devices.values()]
    loads = [m.cpu_load(outcome["wall"]) for m in metrics.devices.values()]
    bytes_sent = [m.bytes_sent for m in metrics.devices.values()]

    print_header(f"Figure 15 [{name}]: DVM UPDATE processing overhead")
    print_row("metric", "p50", "p90", "max")
    print_row(
        "per-message (ms)",
        f"{percentile(message_costs, 0.5) * 1e3:.4f}",
        f"{percentile(message_costs, 0.9) * 1e3:.4f}",
        f"{max(message_costs) * 1e3:.4f}",
    )
    print_row(
        "per-device total (ms)",
        f"{percentile(device_totals, 0.5) * 1e3:.3f}",
        f"{percentile(device_totals, 0.9) * 1e3:.3f}",
        f"{max(device_totals) * 1e3:.3f}",
    )
    print_row(
        "CPU load",
        f"{percentile(loads, 0.5):.4f}",
        f"{percentile(loads, 0.9):.4f}",
        f"{max(loads):.4f}",
    )
    total_messages = metrics.total_messages()
    total_bytes = metrics.total_bytes()
    print_row("messages", total_messages, "", "")
    print_row("bytes sent", total_bytes, "", "")

    benchmark.extra_info["p90_per_message_ms"] = percentile(message_costs, 0.9) * 1e3
    benchmark.extra_info["total_messages"] = total_messages
    benchmark.extra_info["total_bytes"] = total_bytes
    assert message_costs
    assert max(loads) <= 1.0
