"""Table 1 / §9.1 — functionality demonstrations.

Verifies every Table 1 invariant on the Figure 2a network, once with a
correct data plane and once with an erroneous one, timing the end-to-end
verification (plan + DPVNet + counting).  The network must always compute
the right verdict — the §9.1 claim.
"""

import pytest

from benchmarks._common import print_header, print_row
from repro.bdd import PacketSpaceContext
from repro.core.invariant import PathExpr
from repro.core.library import (
    anycast,
    blackhole_freeness,
    bounded_length_reachability,
    different_ingress_reachability,
    isolation,
    loop_freeness,
    multicast,
    non_redundant_reachability,
    reachability,
    waypoint_reachability,
)
from repro.core.planner import Planner
from repro.dataplane import Action, DevicePlane, Rule
from repro.topology import fig2a_example


def _planes(ctx, actions):
    space = ctx.ip_prefix("10.0.0.0/23")
    planes = {}
    for dev, action in actions.items():
        plane = DevicePlane(dev, ctx)
        if action is not None:
            plane.install_many([Rule(space, action, 10)])
        planes[dev] = plane
    return planes


def _cases(ctx):
    """(invariant, good planes, bad planes) triples covering Table 1."""
    space = ctx.ip_prefix("10.0.0.0/23")
    good = {
        "S": Action.forward_all(["A"]),
        "A": Action.forward_all(["W"]),
        "B": Action.drop(),
        "W": Action.forward_all(["D"]),
        "D": Action.deliver(),
    }
    blackhole = dict(good, W=Action.drop())
    bypass = dict(
        good, A=Action.forward_all(["B"]), B=Action.forward_all(["D"])
    )
    redundant = dict(
        good,
        A=Action.forward_all(["B", "W"]),
        B=Action.forward_all(["D"]),
    )
    return [
        ("reachability", reachability(space, "S", "D"), good, blackhole),
        ("isolation", isolation(space, "S", "B"), good,
         dict(good, A=Action.forward_all(["B"]), B=Action.deliver())),
        ("loop-freeness", loop_freeness(space, "S", 4), good,
         dict(good, W=Action.forward_all(["A"]))),
        ("blackhole-freeness", blackhole_freeness(space, "S", 4), good, blackhole),
        ("waypoint", waypoint_reachability(space, "S", "W", "D"), good, bypass),
        ("bounded-length", bounded_length_reachability(space, "S", "D", 3),
         good, dict(good, A=Action.forward_all(["B"]),
                    B=Action.forward_all(["W"]))),
        ("multi-ingress", different_ingress_reachability(space, ["S", "B"], "D"),
         dict(good, B=Action.forward_all(["D"])), good),
        ("non-redundant", non_redundant_reachability(space, "S", "D"),
         good, redundant),
        ("multicast", multicast(space, "S", ["B", "D"]),
         dict(good, A=Action.forward_all(["B", "W"]), B=Action.deliver()),
         good),
        ("anycast", anycast(space, "S", ["B", "D"]),
         dict(good, A=Action.forward_any(["B", "W"]), B=Action.deliver()),
         dict(good, A=Action.forward_all(["B", "W"]), B=Action.deliver())),
    ]


@pytest.mark.benchmark(group="table1")
def test_table1_functionality(benchmark):
    rows = []

    def run():
        rows.clear()
        ctx = PacketSpaceContext()
        topo = fig2a_example()
        planner = Planner(topo, ctx)
        for name, invariant, good_actions, bad_actions in _cases(ctx):
            good_result = planner.verify(invariant, _planes(ctx, good_actions))
            bad_result = planner.verify(invariant, _planes(ctx, bad_actions))
            rows.append((name, good_result.holds, bad_result.holds))
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)

    print_header("Table 1 / §9.1: functionality demonstrations")
    print_row("invariant", "correct DP", "erroneous DP")
    for name, good_holds, bad_holds in rows:
        print_row(name, "HOLDS" if good_holds else "violated",
                  "HOLDS" if bad_holds else "violated")
        assert good_holds, f"{name}: correct data plane rejected"
        assert not bad_holds, f"{name}: erroneous data plane accepted"
    benchmark.extra_info["invariants_checked"] = len(rows)
