"""Figure 12 — verification under fault scenes.

12a: for sampled fault scenes (≤3 link failures, Microsoft-WAN-shaped size
distribution), the time for the network to re-verify after the failure
(link-state flood + recount), Tulkun vs. centralized re-verification.

12b/12c: incremental rule updates applied *while a fault scene is active* —
percentage under 10 ms and the 80% quantile.
"""

import pytest

from benchmarks._common import (
    NUM_SCENES,
    NUM_UPDATES,
    SCALE,
    dataset_for,
    fresh_planes,
    print_header,
    print_row,
    run_tulkun_burst,
)
from repro.baselines import ApKeepVerifier, DeltaNetVerifier
from repro.datasets import sample_fault_scenes
from repro.sim import apply_intents, percentile, random_update_intents

FAULT_DATASETS = {
    "small": [("INet2", 8, 4), ("B4-13", 8, 2)],
    "large": [("INet2", 16, 8), ("B4-13", 16, 4), ("STFD", 12, 4), ("NTT", 8, 2)],
}


@pytest.mark.benchmark(group="fig12a")
@pytest.mark.parametrize(
    "name,pair_limit,multiplier",
    FAULT_DATASETS[SCALE],
    ids=[entry[0] for entry in FAULT_DATASETS[SCALE]],
)
def test_fig12a_fault_scene_verification(benchmark, name, pair_limit, multiplier):
    scenes_count = NUM_SCENES[SCALE]
    outcome = {}

    def run():
        ds = dataset_for(name, pair_limit, multiplier)
        runner, _burst = run_tulkun_burst(ds)
        scenes = sample_fault_scenes(ds.topology, scenes_count, seed=3)
        times = []
        for scene in scenes:
            times.append(runner.fail_links(list(scene)))
            runner.recover_links(list(scene))
        outcome["times"] = times
        outcome["ds"] = ds
        return times

    benchmark.pedantic(run, rounds=1, iterations=1)
    times = outcome["times"]
    ds = outcome["ds"]
    average = sum(times) / len(times)

    print_header(
        f"Figure 12a [{name}]: recount after fault scenes "
        f"({len(times)} scenes of ≤3 failures)"
    )
    print_row("tool", "avg time (ms)", "vs Tulkun")
    print_row("Tulkun", f"{average * 1e3:.2f}", "1.00x")
    benchmark.extra_info["tulkun_avg_ms"] = average * 1e3

    # Centralized comparison: re-verify the whole network per scene (their
    # ECs need no update when only topology changed — Delta-net's edge,
    # which the paper observes beats Tulkun in this one setting).
    for tool_cls in (ApKeepVerifier, DeltaNetVerifier):
        fresh_ds = dataset_for(name, pair_limit, multiplier)
        tool = tool_cls(fresh_ds.topology, fresh_ds.ctx, fresh_ds.queries)
        report = tool.burst_verify(fresh_planes(fresh_ds))
        # Per-scene centralized cost ≈ one full re-check (no EC rebuild).
        per_scene = report.compute_time + tool.collection.update_latency(
            fresh_ds.topology.devices[-1]
        )
        print_row(
            tool.name, f"{per_scene * 1e3:.2f}",
            f"{per_scene / max(average, 1e-9):.2f}x",
        )
        benchmark.extra_info[f"{tool.name}_avg_ms"] = per_scene * 1e3
    assert times


@pytest.mark.benchmark(group="fig12bc")
@pytest.mark.parametrize(
    "name,pair_limit,multiplier",
    FAULT_DATASETS[SCALE][:1],
    ids=[FAULT_DATASETS[SCALE][0][0]],
)
def test_fig12bc_incremental_under_faults(benchmark, name, pair_limit, multiplier):
    updates = NUM_UPDATES[SCALE]
    outcome = {}

    def run():
        ds = dataset_for(name, pair_limit, multiplier)
        runner, _burst = run_tulkun_burst(ds)
        scenes = sample_fault_scenes(ds.topology, 3, seed=9)
        times = []
        for scene in scenes:
            runner.fail_links(list(scene))
            planes = {
                d: runner.network.devices[d].plane
                for d in ds.topology.devices
            }
            intents = random_update_intents(
                ds.topology, planes, max(2, updates // 3), seed=11
            )
            result = apply_intents(runner, intents)
            times.extend(result.times)
            runner.recover_links(list(scene))
        outcome["times"] = times
        return times

    benchmark.pedantic(run, rounds=1, iterations=1)
    times = outcome["times"]
    below = sum(1 for t in times if t < 0.010) / len(times)
    q80 = percentile(times, 0.8)

    print_header(
        f"Figures 12b/12c [{name}]: incremental verification during fault scenes"
    )
    print_row("tool", "<10ms (12b)", "80% qtile ms (12c)")
    print_row("Tulkun", f"{below * 100:.1f}%", f"{q80 * 1e3:.3f}")
    benchmark.extra_info["tulkun_below10ms"] = below
    benchmark.extra_info["tulkun_q80_ms"] = q80 * 1e3
    assert times
