"""Figure 12 — verification under fault scenes.

12a: for sampled fault scenes (≤3 link failures, Microsoft-WAN-shaped size
distribution), the time for the network to re-verify after the failure
(link-state flood + recount), Tulkun vs. centralized re-verification.

12b/12c: incremental rule updates applied *while a fault scene is active* —
percentage under 10 ms and the 80% quantile.

Exploration mode: instead of sampling scenes, *model-check* a fault family
with ``repro.explore`` — every interleaving of the family's link failures
runs to a verified quiescence — and report scenarios/sec plus the
partial-order-reduction prune ratio (the share of the exhaustive space the
commutativity results discharge without execution).
"""

import time

import pytest

from benchmarks._common import (
    NUM_SCENES,
    NUM_UPDATES,
    SCALE,
    dataset_for,
    fresh_rules,
    fresh_planes,
    print_header,
    print_row,
    run_tulkun_burst,
)
from repro.baselines import ApKeepVerifier, DeltaNetVerifier
from repro.datasets import sample_fault_scenes
from repro.explore import FaultElement, ScenarioFamily, explore_family
from repro.sim import (
    TulkunRunner,
    apply_intents,
    percentile,
    random_update_intents,
)

FAULT_DATASETS = {
    "smoke": [("FT-4", 4, 1)],
    "small": [("INet2", 8, 4), ("B4-13", 8, 2)],
    "large": [("INet2", 16, 8), ("B4-13", 16, 4), ("STFD", 12, 4), ("NTT", 8, 2)],
}

# Exploration mode: (dataset, pair_limit, multiplier, #link elements,
# max concurrently active).  Elements are spread across the sorted link
# list; how much actually commutes is decided by the planner's task
# placement, which is the point of benchmarking the prune ratio.
EXPLORE_FAMILIES = {
    "smoke": [("FT-4", 2, 1, 2, 2)],
    "small": [("INet2", 6, 2, 3, 2)],
    "large": [("INet2", 8, 4, 4, 2), ("B4-13", 8, 2, 4, 2)],
}


@pytest.mark.benchmark(group="fig12a")
@pytest.mark.parametrize(
    "name,pair_limit,multiplier",
    FAULT_DATASETS[SCALE],
    ids=[entry[0] for entry in FAULT_DATASETS[SCALE]],
)
def test_fig12a_fault_scene_verification(benchmark, name, pair_limit, multiplier):
    scenes_count = NUM_SCENES[SCALE]
    outcome = {}

    def run():
        ds = dataset_for(name, pair_limit, multiplier)
        runner, _burst = run_tulkun_burst(ds)
        scenes = sample_fault_scenes(ds.topology, scenes_count, seed=3)
        times = []
        for scene in scenes:
            times.append(runner.fail_links(list(scene)))
            runner.recover_links(list(scene))
        outcome["times"] = times
        outcome["ds"] = ds
        return times

    benchmark.pedantic(run, rounds=1, iterations=1)
    times = outcome["times"]
    ds = outcome["ds"]
    average = sum(times) / len(times)

    print_header(
        f"Figure 12a [{name}]: recount after fault scenes "
        f"({len(times)} scenes of ≤3 failures)"
    )
    print_row("tool", "avg time (ms)", "vs Tulkun")
    print_row("Tulkun", f"{average * 1e3:.2f}", "1.00x")
    benchmark.extra_info["tulkun_avg_ms"] = average * 1e3

    # Centralized comparison: re-verify the whole network per scene (their
    # ECs need no update when only topology changed — Delta-net's edge,
    # which the paper observes beats Tulkun in this one setting).
    for tool_cls in (ApKeepVerifier, DeltaNetVerifier):
        fresh_ds = dataset_for(name, pair_limit, multiplier)
        tool = tool_cls(fresh_ds.topology, fresh_ds.ctx, fresh_ds.queries)
        report = tool.burst_verify(fresh_planes(fresh_ds))
        # Per-scene centralized cost ≈ one full re-check (no EC rebuild).
        per_scene = report.compute_time + tool.collection.update_latency(
            fresh_ds.topology.devices[-1]
        )
        print_row(
            tool.name, f"{per_scene * 1e3:.2f}",
            f"{per_scene / max(average, 1e-9):.2f}x",
        )
        benchmark.extra_info[f"{tool.name}_avg_ms"] = per_scene * 1e3
    assert times


@pytest.mark.benchmark(group="fig12bc")
@pytest.mark.parametrize(
    "name,pair_limit,multiplier",
    FAULT_DATASETS[SCALE][:1],
    ids=[FAULT_DATASETS[SCALE][0][0]],
)
def test_fig12bc_incremental_under_faults(benchmark, name, pair_limit, multiplier):
    updates = NUM_UPDATES[SCALE]
    outcome = {}

    def run():
        ds = dataset_for(name, pair_limit, multiplier)
        runner, _burst = run_tulkun_burst(ds)
        scenes = sample_fault_scenes(ds.topology, 3, seed=9)
        times = []
        for scene in scenes:
            runner.fail_links(list(scene))
            planes = {
                d: runner.network.devices[d].plane
                for d in ds.topology.devices
            }
            intents = random_update_intents(
                ds.topology, planes, max(2, updates // 3), seed=11
            )
            result = apply_intents(runner, intents)
            times.extend(result.times)
            runner.recover_links(list(scene))
        outcome["times"] = times
        return times

    benchmark.pedantic(run, rounds=1, iterations=1)
    times = outcome["times"]
    below = sum(1 for t in times if t < 0.010) / len(times)
    q80 = percentile(times, 0.8)

    print_header(
        f"Figures 12b/12c [{name}]: incremental verification during fault scenes"
    )
    print_row("tool", "<10ms (12b)", "80% qtile ms (12c)")
    print_row("Tulkun", f"{below * 100:.1f}%", f"{q80 * 1e3:.3f}")
    benchmark.extra_info["tulkun_below10ms"] = below
    benchmark.extra_info["tulkun_q80_ms"] = q80 * 1e3
    assert times


@pytest.mark.benchmark(group="fig12_explore")
@pytest.mark.parametrize(
    "name,pair_limit,multiplier,num_elements,max_faults",
    EXPLORE_FAMILIES[SCALE],
    ids=[entry[0] for entry in EXPLORE_FAMILIES[SCALE]],
)
def test_fig12_scenario_exploration(
    benchmark, name, pair_limit, multiplier, num_elements, max_faults
):
    """Model-checking throughput over a link-failure family (POR on)."""

    def harness(tracer=None, channel=None):
        ds = dataset_for(name, pair_limit, multiplier)
        runner = TulkunRunner(
            ds.topology, ds.ctx, ds.invariants, cpu_scale=0.0,
            tracer=tracer, channel=channel,
        )
        return runner, fresh_rules(ds)

    probe, _rules = harness()
    links = sorted((link.a, link.b) for link in probe.topology.links())
    probe.close()
    stride = max(1, len(links) // num_elements)
    family = ScenarioFamily(
        elements=tuple(
            FaultElement("link", links[i * stride])
            for i in range(num_elements)
        ),
        max_faults=max_faults,
    )

    outcome = {}

    def run():
        start = time.perf_counter()
        report = explore_family(
            family, harness, por=True, minimize=False,
            max_counterexamples=0,
        )
        outcome["report"] = report
        outcome["wall"] = time.perf_counter() - start
        return report

    benchmark.pedantic(run, rounds=1, iterations=1)
    report = outcome["report"]
    rate = report.explored / max(outcome["wall"], 1e-9)

    print_header(
        f"Figure 12 exploration mode [{name}]: model-checking a "
        f"{num_elements}-link family (≤{max_faults} concurrent, POR)"
    )
    print_row("scenarios", "explored", "pruned", "prune ratio", "scen/s")
    print_row(
        report.exhaustive_scenarios,
        report.explored,
        report.pruned,
        f"{report.prune_ratio:.1%}",
        f"{rate:.2f}",
    )
    benchmark.extra_info["exhaustive_scenarios"] = report.exhaustive_scenarios
    benchmark.extra_info["explored"] = report.explored
    benchmark.extra_info["pruned"] = report.pruned
    benchmark.extra_info["prune_ratio"] = report.prune_ratio
    benchmark.extra_info["scenarios_per_sec"] = rate
    assert report.explored + report.pruned == report.exhaustive_scenarios
    # Coverage guarantee, not just throughput: POR never drops an outcome.
    assert report.explored >= 1
    assert report.skipped == 0
