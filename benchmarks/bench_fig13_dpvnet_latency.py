"""Figure 13 — planner latency to compute k-link-failure-tolerant DPVNets.

For each topology and k ∈ {0, 1, 2}: the wall-clock time the planner needs
to precompute the fault-tolerant DPVNet for a (≤ shortest+1) reachability
invariant (symbolic filter → the full §6 per-scene labeling algorithm).
The paper's shape: steep growth in k (scene count is C(links, k)).

``any_3`` on the larger WANs is capped by ``max_scenes`` at small scale —
uncapped it is exactly the paper's up-to-1440-second regime.
"""

import time

import pytest

from benchmarks._common import SCALE, print_header, print_row
from repro.bdd import HeaderLayout, PacketSpaceContext
from repro.core.counting import CountExp
from repro.core.fault import compute_fault_plan
from repro.core.invariant import (
    Atom,
    FaultSpec,
    Invariant,
    LengthFilter,
    MatchKind,
    PathExpr,
)
from repro.core.planner import Planner
from repro.datasets import build_dataset

TOPOLOGIES = {
    "small": ["INet2", "B4-13", "FT-4"],
    "large": ["INet2", "B4-13", "STFD", "AT1-1", "BTNA", "FT-4", "NGDC"],
}
MAX_K = {"small": 2, "large": 3}
MAX_SCENES = {"small": 60, "large": None}


def _invariant(ds, k):
    src, dst = ds.pairs[0]
    space = ds.ctx.ip_prefix(ds.topology.external_prefixes[dst][0])
    return Invariant(
        space,
        (src,),
        Atom(
            PathExpr.parse(
                f"{src} .* {dst}", (LengthFilter("<=", "shortest", 1),), True
            ),
            MatchKind.EXIST,
            CountExp(">=", 1),
        ),
        FaultSpec.up_to(k) if k else None,
        name=f"ft{k}_{src}_{dst}",
    )


@pytest.mark.benchmark(group="fig13")
@pytest.mark.parametrize("name", TOPOLOGIES[SCALE])
def test_fig13_dpvnet_computation_latency(benchmark, name):
    ds = build_dataset(name, pair_limit=4, seed=1)
    planner = Planner(ds.topology, ds.ctx)
    timings = {}

    def run_all():
        for k in range(0, MAX_K[SCALE] + 1):
            start = time.perf_counter()
            if k == 0:
                planner.build_dpvnet(_invariant(ds, 0))
            else:
                compute_fault_plan(
                    planner, _invariant(ds, k), max_scenes=MAX_SCENES[SCALE]
                )
            timings[k] = time.perf_counter() - start
        return timings

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    print_header(f"Figure 13 [{name}]: fault-tolerant DPVNet computation latency")
    print_row("k", "time (s)")
    previous = None
    for k, seconds in sorted(timings.items()):
        print_row(k, f"{seconds:.4f}")
        benchmark.extra_info[f"k{k}_s"] = seconds
        previous = seconds
    # Latency must grow with k (the paper's monotone trend).
    assert timings[MAX_K[SCALE]] >= timings[0]
