"""Packet-transformation verification (the APT/Katra comparison point).

The paper compares Tulkun against APT and Katra — the DPV tools that support
packet transformations — in its technical report, and §5.2 describes how
DVM's SUBSCRIBE messages carry counting across rewrites.  This benchmark
verifies a service-chain workload whose every hop rewrites headers and
measures Tulkun end-to-end; the per-hop SUBSCRIBE counts validate that the
transformation machinery (not a shortcut) did the work.
"""

import pytest

from benchmarks._common import print_header, print_row
from repro.bdd import PacketSpaceContext
from repro.core.counting import CountExp
from repro.core.invariant import Atom, Invariant, MatchKind, PathExpr
from repro.dataplane import Action, Rule, Transform
from repro.sim import TulkunRunner
from repro.topology import line


def _chain_workload(ctx, hops: int):
    """A chain d0..d(n-1) where every device rewrites dst_port +1."""
    topo = line(hops)
    space = ctx.ip_prefix("10.0.0.0/24") & ctx.value("dst_port", 5000)
    rules = {}
    for i in range(hops - 1):
        dev = f"d{i}"
        match = ctx.ip_prefix("10.0.0.0/24") & ctx.value("dst_port", 5000 + i)
        rules[dev] = [
            Rule(
                match,
                Action.forward_all(
                    [f"d{i + 1}"],
                    transform=Transform.set_fields(dst_port=5000 + i + 1),
                ),
                10,
            )
        ]
    final_match = ctx.ip_prefix("10.0.0.0/24") & ctx.value(
        "dst_port", 5000 + hops - 1
    )
    rules[f"d{hops - 1}"] = [Rule(final_match, Action.deliver(), 10)]
    invariant = Invariant(
        space, ("d0",),
        Atom(
            PathExpr.parse(" ".join(f"d{i}" for i in range(hops))),
            MatchKind.EXIST, CountExp(">=", 1),
        ),
        name=f"chain_{hops}",
    )
    return topo, space, rules, invariant


@pytest.mark.benchmark(group="transforms")
@pytest.mark.parametrize("hops", [4, 8, 12])
def test_transform_chain_verification(benchmark, hops):
    outcome = {}

    def run():
        ctx = PacketSpaceContext()
        topo, _space, rules, invariant = _chain_workload(ctx, hops)
        runner = TulkunRunner(topo, ctx, [invariant])
        result = runner.burst_update(rules)
        subscribes = sum(
            v.stats.subscribes_sent
            for device in runner.network.devices.values()
            for v in device.verifiers.values()
        )
        outcome["holds"] = result.holds[invariant.name]
        outcome["time"] = result.verification_time
        outcome["subscribes"] = subscribes
        return result

    benchmark.pedantic(run, rounds=1, iterations=1)

    print_header(f"Transform chain ({hops} hops, per-hop rewrite)")
    print_row("metric", "value")
    print_row("holds", outcome["holds"])
    print_row("sim time (ms)", f"{outcome['time'] * 1e3:.3f}")
    print_row("SUBSCRIBE messages", outcome["subscribes"])
    benchmark.extra_info["sim_ms"] = outcome["time"] * 1e3
    benchmark.extra_info["subscribes"] = outcome["subscribes"]
    assert outcome["holds"]
    # One SUBSCRIBE per transforming device (all but the delivering tail).
    assert outcome["subscribes"] == hops - 1
