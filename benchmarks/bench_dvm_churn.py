"""DVM incremental rule-churn throughput — atom index vs raw BDD algebra.

The §9.3.3-shaped workload: deploy a dataset, converge a burst install,
then apply a long stream of single-rule updates (half behaviour-preserving
route refreshes, the rest re-points with occasional drops, each followed by
a measured restore) and report sustained updates/sec.

Two runs per backend, identical except for the verifiers' region algebra:

* **bdd** — the seed representation: every CIB/LEC split is a linear scan
  with one BDD conjunction per entry and per lower-priority rule.
* **atoms** — the dynamic atomic-predicate index: the same splits collapse
  to frozenset operations over atom ids; BDDs only run at refinement and
  wire boundaries.

Both runs must produce identical verdicts (asserted here; the byte-level
parity is pinned by ``tests/test_predicate_index_parity.py``).  A warmup
pass (change + restore returns the FIB to its initial state) precedes the
timed pass so one-time costs — per-device atom bookkeeping builds, BDD
operation caches — are excluded from the steady-state rate on both sides.

Every run updates its row (keyed on the workload parameters — re-runs
replace, not stack) with all four baselines (serial/process × bdd/atoms)
in ``BENCH_dvm_churn.json`` in the repo root.

Scales: ``REPRO_BENCH_SCALE=smoke`` is the CI bitrot check (tiny workload,
no speedup assertion); ``small`` (default) and ``large`` assert the ≥3×
serial-backend acceptance bar.
"""

import json
import time
from pathlib import Path

import pytest

from benchmarks._common import SCALE, print_header, print_row, record_trajectory
from repro.core.language import parse_packet_space
from repro.dataplane import Action, Rule
from repro.datasets import build_dataset
from repro.serve import StreamSession
from repro.sim import TulkunRunner, apply_intents, random_update_intents

# Serial-backend atoms/bdd acceptance floor, per scale.  Smoke is a bitrot
# check on a workload too small to time meaningfully: no floor applies, and
# its trajectory rows must not carry one (a 3.0x bar on a smoke row reads
# as a standing failure in the history).
SPEEDUP_FLOORS = {"smoke": None, "small": 3.0, "large": 3.0}

# (dataset, pair_limit, rule_multiplier, num_intents)
SERIAL_WORKLOADS = {
    "smoke": [("FT-4", 4, 2, 6)],
    "small": [("FT-4", 16, 32, 60)],
    "large": [("FT-4", 24, 32, 120), ("INet2", 12, 32, 120)],
}
# The process backend pays a pipe round trip per update round; a shorter
# stream keeps the wall time sane and the rate is reported, not asserted
# (IPC dominates, so the algebra speedup is structurally damped there).
PROCESS_INTENTS = {"smoke": 4, "small": 12, "large": 24}
PROCESS_WORKERS = 2

TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_dvm_churn.json"
TRAJECTORY_KEY = (
    "scale", "dataset", "pair_limit", "rule_multiplier", "intents", "mode",
)

# Steady-state serving workloads: (dataset, pair_limit, rule_multiplier,
# update_count, coalesce_chunk).  The serving pipeline (protocol decode →
# validation → coalescer → epoch → delta) must sustain ≥ RATIO_FLOOR × the
# raw apply_updates batch rate on the same op stream — i.e. staying resident
# behind the daemon costs at most ~10% over driving the runner directly.
STREAM_WORKLOADS = {
    "smoke": [("FT-4", 4, 2, 24, 4)],
    "small": [("FT-4", 16, 32, 96, 8)],
    "large": [("FT-4", 24, 32, 192, 8), ("INet2", 12, 32, 192, 8)],
}
STREAM_RATIO_FLOORS = {"smoke": None, "small": 0.9, "large": 0.9}


def _fresh_rules(ds):
    return {
        dev: [Rule(r.match, r.action, r.priority) for r in rules]
        for dev, rules in ds.rules_by_device.items()
    }


def _verdict_flags(runner, invariants):
    return {
        inv.name: {
            ingress: ok
            for ingress, (ok, _v) in runner.network.verdicts(inv.name).items()
        }
        for inv in invariants
    }


def _churn_rate(name, pair_limit, multiplier, intents_count,
                predicate_index, backend):
    """Sustained updates/sec for one (dataset, mode, backend) cell.

    A fresh dataset per cell keeps the comparison fair: neither mode
    inherits the other's warm BDD caches or atom boundaries."""
    ds = build_dataset(
        name, pair_limit=pair_limit, seed=3, rule_multiplier=multiplier
    )
    kwargs = {"predicate_index": predicate_index, "backend": backend}
    if backend == "process":
        kwargs["workers"] = PROCESS_WORKERS
    runner = TulkunRunner(ds.topology, ds.ctx, ds.invariants, **kwargs)
    try:
        runner.burst_update(_fresh_rules(ds))
        planes = {
            dev: runner.network.devices[dev].plane
            for dev in ds.topology.devices
        }
        intents = random_update_intents(
            ds.topology, planes, intents_count, seed=5
        )
        apply_intents(runner, intents)  # warmup; restores the FIB
        start = time.perf_counter()
        outcome = apply_intents(runner, intents)
        wall = time.perf_counter() - start
        flags = _verdict_flags(runner, ds.invariants)
        return len(outcome.times) / wall, flags
    finally:
        runner.close()


@pytest.mark.benchmark(group="dvm_churn")
@pytest.mark.parametrize(
    "name,pair_limit,multiplier,intents",
    SERIAL_WORKLOADS[SCALE],
    ids=[entry[0] for entry in SERIAL_WORKLOADS[SCALE]],
)
def test_dvm_churn(benchmark, name, pair_limit, multiplier, intents):
    results = {}

    def measure():
        for backend, count in (
            ("serial", intents),
            ("process", PROCESS_INTENTS[SCALE]),
        ):
            flags = {}
            for mode in ("bdd", "atoms"):
                rate, flags[mode] = _churn_rate(
                    name, pair_limit, multiplier, count, mode, backend
                )
                results[(backend, mode)] = rate
            # Same workload, same verdicts — the speedup is representation
            # only.  (Byte-level parity is pinned in the test suite.)
            assert flags["bdd"] == flags["atoms"], (
                f"verdict mismatch between predicate-index modes ({backend})"
            )

    benchmark.pedantic(measure, rounds=1, iterations=1)

    speedups = {
        backend: results[(backend, "atoms")] / results[(backend, "bdd")]
        for backend in ("serial", "process")
    }
    print_header(
        f"DVM incremental churn — {name} ×{multiplier} "
        f"({intents} intents, scale={SCALE})"
    )
    print_row("backend", "bdd up/s", "atoms up/s", "speedup")
    for backend in ("serial", "process"):
        print_row(
            backend,
            f"{results[(backend, 'bdd')]:.1f}",
            f"{results[(backend, 'atoms')]:.1f}",
            f"{speedups[backend]:.2f}x",
        )

    record_trajectory(
        TRAJECTORY,
        {
            "scale": SCALE,
            "dataset": name,
            "pair_limit": pair_limit,
            "rule_multiplier": multiplier,
            "intents": intents,
            "mode": "batch",
            "updates_per_sec": {
                f"{backend}_{mode}": results[(backend, mode)]
                for backend, mode in results
            },
            "speedup": {
                backend: speedups[backend] for backend in speedups
            },
            "speedup_floor": SPEEDUP_FLOORS[SCALE],
            # Smoke rows are bitrot checks: no floor was enforced, so a
            # sub-floor ratio there must not read as a standing loss.
            "speedup_asserted": SPEEDUP_FLOORS[SCALE] is not None,
        },
        TRAJECTORY_KEY,
    )

    floor = SPEEDUP_FLOORS[SCALE]
    if floor is not None:
        assert speedups["serial"] >= floor, (
            f"atoms predicate index {speedups['serial']:.2f}x over bdd on "
            f"{name} (serial churn); acceptance floor {floor}x"
        )


# ----------------------------------------------------------------------
# Steady-state streaming mode (`pytest benchmarks/bench_dvm_churn.py
# --streaming`): the serving pipeline vs raw apply_updates on the same
# op stream.
# ----------------------------------------------------------------------
def _shadow_chunks(ds, count, chunk):
    """A deterministic shadow-rule churn plan over the dataset's query
    prefixes: step ``i`` installs shadow key ``i`` at its query's ingress
    and (once the window is full) withdraws the key installed ``chunk``
    steps earlier.  Installs and removals inside one chunk therefore touch
    disjoint keys — the coalescer cannot squash anything away, so both
    legs apply the identical op multiset per epoch."""
    devs = [q.ingress for q in ds.queries]
    prefixes = [q.prefix for q in ds.queries]
    steps = []
    for i in range(count):
        step = {
            "key": f"shadow:{i}",
            "device": devs[i % len(devs)],
            "prefix": prefixes[i % len(prefixes)],
        }
        if i >= chunk:
            step["remove_key"] = f"shadow:{i - chunk}"
            step["remove_device"] = devs[(i - chunk) % len(devs)]
        steps.append(step)
    return [steps[i:i + chunk] for i in range(0, len(steps), chunk)]


def _stream_batch_rate(name, pair_limit, multiplier, count, chunk):
    """Reference leg: the same chunked op stream driven straight into
    ``TulkunRunner.apply_updates`` (one quiescence epoch per chunk), rule
    objects prepared outside the timed window."""
    ds = build_dataset(
        name, pair_limit=pair_limit, seed=3, rule_multiplier=multiplier
    )
    runner = TulkunRunner(
        ds.topology, ds.ctx, ds.invariants, predicate_index="atoms"
    )
    try:
        runner.burst_update(_fresh_rules(ds))
        live, prepared, total_ops = {}, [], 0
        for steps in _shadow_chunks(ds, count, chunk):
            updates = []
            for step in steps:
                if "remove_key" in step:
                    gone = live.pop(step["remove_key"])
                    updates.append((step["remove_device"], None, gone.rule_id))
                rule = Rule(
                    parse_packet_space(ds.ctx, f"dst_ip = {step['prefix']}"),
                    Action.drop(),
                    0,
                )
                live[step["key"]] = rule
                updates.append((step["device"], rule, None))
            prepared.append(updates)
            total_ops += len(updates)
        start = time.perf_counter()
        for updates in prepared:
            runner.apply_updates(updates)
        wall = time.perf_counter() - start
        return total_ops / wall, runner.statuses()
    finally:
        runner.close()


def _stream_serve_rate(name, pair_limit, multiplier, count, chunk):
    """Serving leg: the identical op stream as ``tulkun-serve-v1`` lines
    through a resident :class:`StreamSession` — protocol decode, validation,
    coalescing and delta emission all inside the timed window, one flushed
    epoch per chunk."""
    ds = build_dataset(
        name, pair_limit=pair_limit, seed=3, rule_multiplier=multiplier
    )
    runner = TulkunRunner(
        ds.topology, ds.ctx, ds.invariants, predicate_index="atoms"
    )
    session = StreamSession(runner, _fresh_rules(ds))
    try:
        session.start()
        line_chunks, total_ops = [], 0
        for steps in _shadow_chunks(ds, count, chunk):
            lines = []
            for step in steps:
                if "remove_key" in step:
                    lines.append(json.dumps({
                        "op": "update",
                        "device": step["remove_device"],
                        "remove": step["remove_key"],
                    }))
                lines.append(json.dumps({
                    "op": "update",
                    "device": step["device"],
                    "install": {
                        "key": step["key"],
                        "match": f"dst_ip = {step['prefix']}",
                        "action": "drop",
                        "priority": 0,
                    },
                }))
            line_chunks.append(lines)
            total_ops += len(lines)
        start = time.perf_counter()
        for lines in line_chunks:
            for line in lines:
                reply = session.handle_line(line)
                assert not any(
                    frame["frame"] == "error" for frame in reply.frames
                ), reply.frames
            session.run_epoch("flush")
        wall = time.perf_counter() - start
        return total_ops / wall, runner.statuses(), session.histogram.summary()
    finally:
        session.close()


@pytest.mark.streaming
@pytest.mark.benchmark(group="dvm_streaming")
@pytest.mark.parametrize(
    "name,pair_limit,multiplier,updates,chunk",
    STREAM_WORKLOADS[SCALE],
    ids=[entry[0] for entry in STREAM_WORKLOADS[SCALE]],
)
def test_dvm_streaming(benchmark, name, pair_limit, multiplier, updates, chunk):
    results = {}

    def measure():
        batch_rate, batch_statuses = _stream_batch_rate(
            name, pair_limit, multiplier, updates, chunk
        )
        serve_rate, serve_statuses, latency = _stream_serve_rate(
            name, pair_limit, multiplier, updates, chunk
        )
        # Same op stream, same epochs — the serving pipeline must land on
        # the same verdicts as driving the runner directly.
        assert serve_statuses == batch_statuses, "serving verdicts diverged"
        results.update(
            batch=batch_rate, streaming=serve_rate, latency=latency
        )

    benchmark.pedantic(measure, rounds=1, iterations=1)

    ratio = results["streaming"] / results["batch"]
    latency = results["latency"]
    print_header(
        f"DVM steady-state serving — {name} ×{multiplier} "
        f"({updates} updates, chunk={chunk}, scale={SCALE})"
    )
    print_row("leg", "ops/s", "p50 ms", "p99 ms")
    print_row("batch", f"{results['batch']:.1f}", "-", "-")
    print_row(
        "streaming",
        f"{results['streaming']:.1f}",
        f"{latency['p50'] * 1e3:.2f}",
        f"{latency['p99'] * 1e3:.2f}",
    )
    print_row("ratio", f"{ratio:.3f}", "", "")

    record_trajectory(
        TRAJECTORY,
        {
            "scale": SCALE,
            "dataset": name,
            "pair_limit": pair_limit,
            "rule_multiplier": multiplier,
            "intents": updates,
            "mode": "streaming",
            "chunk": chunk,
            "updates_per_sec": {
                "batch_serial_atoms": results["batch"],
                "streaming_serial_atoms": results["streaming"],
            },
            "verdict_latency": latency,
            "ratio": ratio,
            "ratio_floor": STREAM_RATIO_FLOORS[SCALE],
            "speedup_asserted": STREAM_RATIO_FLOORS[SCALE] is not None,
        },
        TRAJECTORY_KEY,
    )

    floor = STREAM_RATIO_FLOORS[SCALE]
    if floor is not None:
        assert ratio >= floor, (
            f"streaming serving sustained only {ratio:.3f}x of the batch "
            f"apply_updates rate on {name}; acceptance floor {floor}x"
        )
