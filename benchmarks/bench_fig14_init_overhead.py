"""Figure 14 — on-device initialization overhead CDFs.

Per-device cost of the initialization phase in a burst update (initial LEC
table + CIB computation): total time, memory proxy, and CPU load.  The
paper's numbers: ≤1.75 s, ≤19.6 MB, CPU load ≤0.48 across 420 devices on
four switch models; ours are host-CPU-relative but the distribution shape
(heavily concentrated at tiny values, a small tail at aggregation points)
is the reproduction target.
"""

import pytest

from benchmarks._common import SCALE, dataset_for, print_header, print_row, run_tulkun_burst
from repro.sim import percentile

DATASETS = {
    "small": [("INet2", 12, 8), ("FT-4", 16, 4)],
    "large": [("INet2", None, 16), ("STFD", 24, 8), ("FT-4", 32, 8), ("NGDC", 24, 4)],
}


@pytest.mark.benchmark(group="fig14")
@pytest.mark.parametrize(
    "name,pair_limit,multiplier",
    DATASETS[SCALE],
    ids=[entry[0] for entry in DATASETS[SCALE]],
)
def test_fig14_initialization_overhead(benchmark, name, pair_limit, multiplier):
    outcome = {}

    def run():
        ds = dataset_for(name, pair_limit, multiplier)
        runner, result = run_tulkun_burst(ds)
        runner.network.snapshot_memory()
        outcome["metrics"] = runner.network.metrics
        outcome["wall"] = result.verification_time
        return result

    benchmark.pedantic(run, rounds=1, iterations=1)
    metrics = outcome["metrics"]

    init_times = [m.init_cost for m in metrics.devices.values()]
    memory = [m.memory_proxy_peak for m in metrics.devices.values()]
    loads = [m.cpu_load(outcome["wall"]) for m in metrics.devices.values()]

    print_header(f"Figure 14 [{name}]: initialization overhead per device")
    print_row("metric", "p50", "p90", "max")
    for label, values, fmt in (
        ("init time (ms)", [t * 1e3 for t in init_times], "{:.3f}"),
        ("memory (BDD nodes)", memory, "{:.0f}"),
        ("CPU load", loads, "{:.4f}"),
    ):
        print_row(
            label,
            fmt.format(percentile(values, 0.5)),
            fmt.format(percentile(values, 0.9)),
            fmt.format(max(values)),
        )
    benchmark.extra_info["init_p90_ms"] = percentile(init_times, 0.9) * 1e3
    benchmark.extra_info["memory_p90_nodes"] = percentile(memory, 0.9)
    benchmark.extra_info["cpu_load_max"] = max(loads)
    # The paper's qualitative claim: initialization is lightweight — every
    # device's CPU load stays well below saturation.
    assert max(loads) <= 1.0
