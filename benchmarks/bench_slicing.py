"""Slice-aware routing — update cost vs tenant-slice count.

The multi-tenant scaling claim behind ``src/repro/slicing``: with K tenant
intents resident, the cost of one FIB update must scale with the number of
slices the update *touches* (here: exactly one), not with K.  The unsliced
runner pays O(K) per update — every verifier on the updated device inspects
the LEC delta, and every invariant is re-gathered for the verdict sweep —
while the sliced runner routes the update through the registry's inverted
footprint index to the single intersecting slice and answers every other
tenant from its cached verdict.

Workload: a WAN-zoo topology (NTT, 47 PoPs) with synthesized shortest-path
FIBs; K overlapping tenant intents, each a reachability invariant over its
own sub-prefix of a PoP's address block (device footprints overlap heavily
across tenants, packet spaces are disjoint).  The update stream cycles over
tenants: withdraw one tenant's traffic at its ingress (a winning drop rule),
re-verify, restore, re-verify — each op flips exactly one slice.  Median
per-op verdict latency (apply + status sweep) and sustained ops/sec are
reported for the sliced and unsliced runner on the identical stream, with
verdict parity asserted between the two.

Acceptance (scales ``small``/``large``): at ≥100 resident slices the sliced
median latency must be ≤0.5× the unsliced median.  ``smoke`` records the
same rows without asserting — flagged ``speedup_asserted: false`` so a
too-small-to-time run never reads as a standing loss in the trajectory
(``BENCH_slicing.json``, rows keyed on scale/topology/slice count).
"""

import dataclasses
import statistics
import time
from pathlib import Path

import pytest

from benchmarks._common import (
    SCALE,
    fresh_rules,
    host_cores,
    print_header,
    print_row,
    record_trajectory,
)
from repro.core.language import parse_packet_space
from repro.core.library import reachability
from repro.dataplane import Action, Rule
from repro.datasets import build_dataset
from repro.datasets.routing import split_prefix
from repro.sim import TulkunRunner

TOPOLOGY = "NTT"  # WAN-zoo style: 47 PoPs, rocketfuel-like mesh

# Resident tenant-slice counts per scale; the acceptance bar applies from
# ASSERT_MIN_SLICES up (below that the O(K) term is too small to dominate).
SLICE_COUNTS = {"smoke": [1, 8, 32], "small": [1, 32, 128], "large": [1, 100, 1000]}
UPDATES = {"smoke": 12, "small": 48, "large": 96}
LATENCY_CEILINGS = {"smoke": None, "small": 0.5, "large": 0.5}
ASSERT_MIN_SLICES = 100

TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_slicing.json"
TRAJECTORY_KEY = ("scale", "topology", "slices", "updates")


def tenant_invariants(ds, count):
    """``count`` overlapping tenant intents: tenant k wants reachability to
    its own sub-prefix of PoP ``k % D``'s block from a pseudo-random far
    ingress.  Footprints overlap (paths share the WAN core); packet spaces
    are pairwise disjoint (distinct sub-prefixes)."""
    devices = list(ds.topology.devices)
    ways = 1
    while ways * len(devices) < count:
        ways *= 2
    invariants, spaces = [], []
    for k in range(count):
        dest = devices[k % len(devices)]
        ingress = devices[(k * 13 + 5) % len(devices)]
        if ingress == dest:
            ingress = devices[(k * 13 + 6) % len(devices)]
        block = ds.topology.external_prefixes[dest][0]
        sub = split_prefix(block, ways)[k // len(devices)]
        space = parse_packet_space(ds.ctx, f"dst_ip = {sub}")
        # shortest+2 length bound (§9.2's practical filter): keeps the
        # DPVNet unroll shallow so K-invariant deployments stay tractable.
        inv = dataclasses.replace(
            reachability(space, ingress, dest, max_extra_hops=2),
            name=f"t{k:04d}/reach",
        )
        invariants.append(inv)
        spaces.append((ingress, sub))
    return invariants, spaces


def _bench_leg(slices_mode, count, num_updates):
    """One runner (sliced or not) under the identical tenant set + update
    stream.  Returns (per-op latencies, final statuses, resident count)."""
    ds = build_dataset(TOPOLOGY, pair_limit=2, seed=5)
    invariants, spaces = tenant_invariants(ds, count)
    runner = TulkunRunner(
        ds.topology, ds.ctx, invariants, cpu_scale=0.0, slices=slices_mode
    )
    try:
        runner.burst_update(fresh_rules(ds))
        runner.statuses()
        steps = []
        for i in range(num_updates):
            ingress, sub = spaces[i % count]
            rule = Rule(
                parse_packet_space(ds.ctx, f"dst_ip = {sub}"),
                Action.drop(),
                500,  # outranks the synthesized LPM rules: the drop wins
            )
            steps.append((ingress, rule))
        # Warmup pass: populates split tables, BDD memos and (sliced) the
        # registry's per-(match, slice) overlap cache; restores the FIB.
        for dev, rule in steps:
            runner.apply_updates([(dev, rule, None)])
            runner.statuses()
            runner.apply_updates([(dev, None, rule.rule_id)])
            runner.statuses()
        latencies = []
        for dev, rule in steps:
            start = time.perf_counter()
            runner.apply_updates([(dev, rule, None)])
            runner.statuses()
            latencies.append(time.perf_counter() - start)
            start = time.perf_counter()
            runner.apply_updates([(dev, None, rule.rule_id)])
            statuses = runner.statuses()
            latencies.append(time.perf_counter() - start)
        return latencies, statuses
    finally:
        runner.close()


def _percentile(latencies, q):
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


@pytest.mark.slicing
@pytest.mark.benchmark(group="slicing")
@pytest.mark.parametrize("count", SLICE_COUNTS[SCALE])
def test_slicing_scaling(benchmark, count):
    num_updates = UPDATES[SCALE]
    results = {}

    def measure():
        unsliced, base_statuses = _bench_leg(None, count, num_updates)
        sliced, slice_statuses = _bench_leg("auto", count, num_updates)
        # Routing is a scheduling optimization only: identical verdicts.
        assert slice_statuses == base_statuses, (
            "sliced and unsliced verdicts diverged"
        )
        results["unsliced"] = unsliced
        results["sliced"] = sliced

    benchmark.pedantic(measure, rounds=1, iterations=1)

    stats = {}
    for leg, latencies in results.items():
        stats[leg] = {
            "median_ms": statistics.median(latencies) * 1e3,
            "p99_ms": _percentile(latencies, 0.99) * 1e3,
            "ops_per_sec": len(latencies) / sum(latencies),
        }
    ratio = stats["sliced"]["median_ms"] / stats["unsliced"]["median_ms"]

    ceiling = LATENCY_CEILINGS[SCALE]
    asserted = ceiling is not None and count >= ASSERT_MIN_SLICES

    print_header(
        f"Slice routing — {TOPOLOGY}, {count} tenant slices, "
        f"{len(results['sliced'])} timed ops (scale={SCALE})"
    )
    print_row("leg", "median ms", "p99 ms", "ops/s")
    for leg in ("unsliced", "sliced"):
        print_row(
            leg,
            f"{stats[leg]['median_ms']:.3f}",
            f"{stats[leg]['p99_ms']:.3f}",
            f"{stats[leg]['ops_per_sec']:.1f}",
        )
    print_row("ratio", f"{ratio:.3f}x", "", f"(asserted: {asserted})")

    record = {
        "scale": SCALE,
        "topology": TOPOLOGY,
        "slices": count,
        "updates": len(results["sliced"]),
        **host_cores(),
        "unsliced": {k: round(v, 4) for k, v in stats["unsliced"].items()},
        "sliced": {k: round(v, 4) for k, v in stats["sliced"].items()},
        "sliced_over_unsliced_median": round(ratio, 4),
        "latency_ceiling": ceiling if asserted else None,
        # PR 7 convention: rows where no bar was enforced say so explicitly,
        # so a smoke-scale (or low-K) "loss" never reads as a regression.
        "speedup_asserted": asserted,
    }
    record_trajectory(TRAJECTORY, record, TRAJECTORY_KEY)
    benchmark.extra_info.update(record)

    if asserted:
        assert ratio <= ceiling, (
            f"sliced median latency {ratio:.3f}x of unsliced with {count} "
            f"resident slices; acceptance ceiling {ceiling}x — update cost "
            "must track touched slices, not tenant count"
        )
